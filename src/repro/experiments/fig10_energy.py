"""Figure 10: per-layer energy of DCNN-opt and SCNN relative to DCNN.

This driver is a thin view over the cross-architecture comparison sweep
(:func:`repro.arch.compare.compare_network`): it selects the DCNN-opt and
SCNN energy-ratio columns of the default DCNN-baselined comparison, whose
trio metrics are bitwise-identical to the canonical network simulation.

Paper landmarks: DCNN-opt improves energy by ~2.0x over DCNN and SCNN by
~2.3x on average; dense input layers (AlexNet conv1, VGG conv1_1) are the
worst case for SCNN because the crossbar and banked-accumulator overheads are
not amortised by skipped work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.arch.compare import compare_network
from repro.experiments.common import (
    EVALUATED_NETWORKS,
    PAPER_AVERAGE_ENERGY_REDUCTION,
    PAPER_DCNN_OPT_ENERGY_REDUCTION,
)


@dataclass
class EnergyRow:
    """One bar group of Figure 10 (energies relative to DCNN, lower is better)."""

    label: str
    dcnn: float
    dcnn_opt: float
    scnn: float


@dataclass
class EnergyReport:
    """Figure 10 data of one network."""

    network: str
    rows: List[EnergyRow]
    network_dcnn_opt: float
    network_scnn: float


def run(
    networks: tuple = EVALUATED_NETWORKS, seed: int = 0, engine=None
) -> Dict[str, EnergyReport]:
    """Per-module and network energy ratios for every evaluated network.

    ``engine`` (optional :class:`repro.engine.SimulationEngine`) overrides
    the shared default — the service's ``fig10`` scenario passes its own.
    """
    reports: Dict[str, EnergyReport] = {}
    for name in networks:
        comparison = compare_network(name, seed=seed, engine=engine)
        rows = []
        for module in comparison.modules():
            rows.append(
                EnergyRow(
                    label=module,
                    dcnn=1.0,
                    dcnn_opt=comparison.module_energy_ratio(module, "DCNN-opt"),
                    scnn=comparison.module_energy_ratio(module, "SCNN"),
                )
            )
        rows.append(
            EnergyRow(
                label="all",
                dcnn=1.0,
                dcnn_opt=comparison.energy_ratio("DCNN-opt"),
                scnn=comparison.energy_ratio("SCNN"),
            )
        )
        reports[comparison.network] = EnergyReport(
            network=comparison.network,
            rows=rows,
            network_dcnn_opt=comparison.energy_ratio("DCNN-opt"),
            network_scnn=comparison.energy_ratio("SCNN"),
        )
    return reports


def average_improvements(reports: Dict[str, EnergyReport]) -> Dict[str, float]:
    """Average energy-efficiency improvement factors over DCNN."""
    dcnn_opt = [1.0 / report.network_dcnn_opt for report in reports.values()]
    scnn = [1.0 / report.network_scnn for report in reports.values()]
    return {
        "DCNN-opt": sum(dcnn_opt) / len(dcnn_opt),
        "SCNN": sum(scnn) / len(scnn),
    }


def main() -> str:
    """Print (and return) the Figure 10 tables for every evaluated network."""
    reports = run()
    sections = []
    for report in reports.values():
        table_rows = [
            (row.label, "1.00", f"{row.dcnn_opt:.2f}", f"{row.scnn:.2f}")
            for row in report.rows
        ]
        table = format_table(
            ["Layer", "DCNN", "DCNN-opt", "SCNN"],
            table_rows,
            title=f"Figure 10: {report.network} energy (relative to DCNN)",
        )
        sections.append(table)
    improvements = average_improvements(reports)
    sections.append(
        f"Average improvement over DCNN — DCNN-opt: {improvements['DCNN-opt']:.2f}x "
        f"(paper {PAPER_DCNN_OPT_ENERGY_REDUCTION:.1f}x), "
        f"SCNN: {improvements['SCNN']:.2f}x (paper {PAPER_AVERAGE_ENERGY_REDUCTION:.1f}x)"
    )
    output = "\n\n".join(sections)
    print(output)
    return output


if __name__ == "__main__":
    main()
