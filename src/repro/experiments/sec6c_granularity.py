"""Section VI-C: PE granularity study.

At a fixed chip-wide throughput of 1,024 multipliers, sweep the number of PEs
(64 = 8x8 PEs with 4x4 multipliers each, down to 4 = 2x2 PEs with 256
multipliers each).  Fewer, larger PEs suffer less from the inter-PE barrier
but much more from intra-PE multiplier-array fragmentation.

Paper landmarks (GoogLeNet): the 64-PE configuration is ~11% faster than the
4-PE one and reaches ~59% average multiplier utilization versus ~35%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.experiments.common import cached_simulation
from repro.scnn.config import scnn_with_pe_count
from repro.scnn.cycles import simulate_layer_cycles

DEFAULT_PE_COUNTS = (64, 16, 4)


@dataclass
class GranularityPoint:
    """Results of one PE-count configuration."""

    num_pes: int
    multipliers_per_pe: int
    total_cycles: int
    average_utilization: float
    average_idle: float


def run(
    pe_counts: Sequence[int] = DEFAULT_PE_COUNTS,
    network_name: str = "googlenet",
    seed: int = 0,
) -> List[GranularityPoint]:
    """Simulate the network at each PE count, reusing one set of workloads."""
    simulation = cached_simulation(network_name, seed)
    workloads = [layer.workload for layer in simulation.layers]
    points = []
    for num_pes in pe_counts:
        config = scnn_with_pe_count(num_pes)
        total_cycles = 0
        weighted_util = 0.0
        weighted_idle = 0.0
        for workload in workloads:
            result = simulate_layer_cycles(
                workload.spec, workload.weights, workload.activations, config
            )
            total_cycles += result.cycles
            weighted_util += result.multiplier_utilization * result.cycles
            weighted_idle += result.idle_fraction * result.cycles
        points.append(
            GranularityPoint(
                num_pes=num_pes,
                multipliers_per_pe=config.multipliers_per_pe,
                total_cycles=total_cycles,
                average_utilization=weighted_util / total_cycles if total_cycles else 0.0,
                average_idle=weighted_idle / total_cycles if total_cycles else 0.0,
            )
        )
    return points


def speedup_64_vs_4(points: Sequence[GranularityPoint]) -> float:
    """Speedup of the 64-PE configuration over the 4-PE one (paper: ~1.11)."""
    by_count: Dict[int, GranularityPoint] = {point.num_pes: point for point in points}
    if 64 not in by_count or 4 not in by_count:
        raise KeyError("the sweep must include both 64 and 4 PEs")
    return by_count[4].total_cycles / by_count[64].total_cycles


def main() -> str:
    points = run()
    rows = [
        (
            f"{point.num_pes} PEs x {point.multipliers_per_pe} muls",
            point.total_cycles,
            f"{point.average_utilization:.2f}",
            f"{point.average_idle:.2f}",
        )
        for point in points
    ]
    table = format_table(
        ["Configuration", "GoogLeNet cycles", "Avg mult. util.", "Avg idle"],
        rows,
        title="Section VI-C: PE granularity (1,024 multipliers total)",
    )
    summary = f"\n64-PE speedup over 4-PE: {speedup_64_vs_4(points):.2f}x (paper ~1.11x)"
    output = table + summary
    print(output)
    return output


if __name__ == "__main__":
    main()
