"""Table II: SCNN design parameters.

Checks that the default :data:`repro.scnn.config.SCNN_CONFIG` instance
matches the design point of the paper's Table II (per-PE parameters and
chip-level totals).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.reporting import format_table
from repro.scnn.config import SCNN_CONFIG, AcceleratorConfig


def run(config: AcceleratorConfig = SCNN_CONFIG) -> Dict[str, Tuple[object, object]]:
    """Return ``parameter -> (modelled value, paper value)`` for Table II."""
    return {
        "Multiplier width (bits)": (config.multiplier_bits, 16),
        "Accumulator width (bits)": (config.accumulator_bits, 24),
        "IARAM/OARAM (each, KB)": (config.iaram_bytes // 1024, 10),
        "Weight FIFO (entries)": (config.weight_fifo_entries, 50),
        "Weight FIFO (bytes)": (config.weight_fifo_bytes, 500),
        "Multiply array (FxI)": (
            f"{config.multipliers_f}x{config.multipliers_i}",
            "4x4",
        ),
        "Accumulator banks": (config.accumulator_banks, 32),
        "Accumulator bank entries": (config.accumulator_bank_entries, 32),
        "# PEs": (config.num_pes, 64),
        "# Multipliers": (config.total_multipliers, 1024),
        "IARAM + OARAM data (MB)": (
            round(config.activation_sram_bytes / (1024 * 1024), 2),
            1.25,
        ),
        "IARAM + OARAM indices (MB)": (
            round(config.activation_index_bytes / (1024 * 1024), 2),
            0.2,
        ),
    }


def payload(config: AcceleratorConfig = SCNN_CONFIG) -> Dict[str, object]:
    """Table II as a JSON-serializable payload (the service's ``table2``).

    ``rows`` maps each parameter to ``{"modelled": ..., "paper": ...}``;
    ``matches`` is true when every modelled value equals the paper's.
    """
    rows = {
        name: {"modelled": modelled, "paper": paper}
        for name, (modelled, paper) in run(config).items()
    }
    return {
        "config": config.name,
        "rows": rows,
        "matches": all(cell["modelled"] == cell["paper"] for cell in rows.values()),
    }


def main() -> str:
    rows: List[Tuple[object, object, object]] = [
        (name, modelled, paper) for name, (modelled, paper) in run().items()
    ]
    table = format_table(
        ["Parameter", "Modelled", "Paper"],
        rows,
        title="Table II: SCNN design parameters",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
