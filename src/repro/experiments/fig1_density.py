"""Figure 1: per-layer weight/activation density and achievable work reduction.

The paper instruments pruned Caffe models to measure per-layer weight and
input-activation density, and plots the ideal remaining work (product of the
two densities).  Here the densities are *measured back* from the synthetic
workloads (pruned weights, ReLU-sparse activations) generated at the
calibrated targets, which doubles as a check that the generators hit their
targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import DensityRow, average_work_reduction, density_table
from repro.analysis.reporting import format_table
from repro.experiments.common import EVALUATED_NETWORKS, cached_network, cached_simulation


@dataclass
class DensityReport:
    """Figure 1 data of one network."""

    network: str
    rows: List[DensityRow]
    average_work_reduction: float


def run(networks: tuple = EVALUATED_NETWORKS, *, measured: bool = True) -> Dict[str, DensityReport]:
    """Per-layer density rows for every evaluated network.

    With ``measured=True`` (default) the densities are measured from the
    generated workload tensors; with ``measured=False`` the calibration table
    itself is reported.
    """
    reports: Dict[str, DensityReport] = {}
    for name in networks:
        network = cached_network(name)
        if measured:
            simulation = cached_simulation(name)
            workloads = [layer.workload for layer in simulation.layers]
            rows = density_table(network, workloads)
        else:
            rows = density_table(network)
        reports[network.name] = DensityReport(
            network=network.name,
            rows=rows,
            average_work_reduction=average_work_reduction(rows, network),
        )
    return reports


def main() -> str:
    sections = []
    for report in run().values():
        table_rows = [
            (
                row.layer,
                f"{row.weight_density:.2f}",
                f"{row.activation_density:.2f}",
                f"{row.work_fraction:.3f}",
                f"{row.work_reduction:.1f}x",
            )
            for row in report.rows
        ]
        table = format_table(
            ["Layer", "Density (W)", "Density (IA)", "Work fraction", "Work reduction"],
            table_rows,
            title=f"Figure 1: {report.network} density",
        )
        sections.append(
            table
            + f"\nNetwork average work reduction: {report.average_work_reduction:.1f}x"
        )
    output = "\n\n".join(sections)
    print(output)
    return output


if __name__ == "__main__":
    main()
