"""``repro compare`` — cross-architecture comparison sweeps from the CLI.

Evaluates any set of registered architectures (see
:mod:`repro.arch.registry`) on the catalogue networks and prints one
per-architecture table per network: cycles, speedup over the baseline, and
energy relative to the baseline — the generalisation of Figures 8 and 10 to
every architecture the registry knows::

    repro compare                                   # trio on all networks
    repro compare --networks alexnet \\
        --architectures SCNN,SCNN-SparseW,SCNN-SparseA
    repro compare --per-module --parallel -1        # module breakdown, sharded

The sweep routes through the shared simulation engine (cached, parallel);
the SCNN/DCNN/DCNN-opt columns are bitwise-identical to the ``fig8`` /
``fig10`` drivers, which are thin views over the same comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.arch.compare import DEFAULT_COMPARISON, NetworkComparison, compare_networks
from repro.arch.registry import available_architectures
from repro.experiments.common import EVALUATED_NETWORKS


def run(
    networks: Tuple[str, ...] = EVALUATED_NETWORKS,
    architectures: Optional[Sequence[str]] = None,
    seed: int = 0,
    engine=None,
    density_profile: Optional[str] = None,
) -> Dict[str, NetworkComparison]:
    """Comparison sweep over ``networks`` x ``architectures``.

    ``networks`` accepts any registered workload name (``repro workloads
    --list``); ``density_profile`` overrides each workload's own densities
    with a registered profile.  ``engine`` (optional
    :class:`repro.engine.SimulationEngine`) overrides the shared default —
    the service's ``compare`` scenario passes its own.
    """
    return compare_networks(
        networks,
        architectures,
        seed=seed,
        density_profile=density_profile,
        engine=engine,
    )


def _network_section(comparison: NetworkComparison, per_module: bool) -> str:
    rows = []
    for name in comparison.architectures:
        rows.append(
            (
                name,
                f"{comparison.total_cycles(name):,}",
                f"{comparison.speedup(name):.2f}x",
                f"{comparison.energy_ratio(name):.2f}",
            )
        )
    rows.append(
        (
            "SCNN (oracle)",
            f"{comparison.oracle_total_cycles:,}",
            f"{comparison.oracle_speedup:.2f}x",
            "-",
        )
    )
    section = format_table(
        ["Architecture", "Cycles", f"Speedup vs {comparison.baseline}",
         f"Energy vs {comparison.baseline}"],
        rows,
        title=f"{comparison.network}: cross-architecture comparison "
        f"(baseline {comparison.baseline})",
    )
    if per_module:
        module_rows = []
        for module in comparison.modules():
            module_rows.append(
                (
                    module,
                    *(
                        f"{comparison.module_speedup(module, name):.2f}x"
                        for name in comparison.architectures
                    ),
                )
            )
        section += "\n\n" + format_table(
            ["Module", *comparison.architectures],
            module_rows,
            title=f"{comparison.network}: per-module speedup over "
            f"{comparison.baseline}",
        )
    return section


def main() -> str:
    """Print (and return) the default trio comparison for every network."""
    comparisons = run()
    output = "\n\n".join(
        _network_section(comparison, per_module=False)
        for comparison in comparisons.values()
    )
    print(output)
    return output


def build_compare_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro compare`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro compare",
        description="Compare registered accelerator architectures on the "
        "catalogue networks (speedup and energy vs the DCNN baseline).",
        epilog=f"Registered architectures: {', '.join(available_architectures())}",
    )
    parser.add_argument(
        "--networks",
        default=None,
        metavar="NAMES",
        help="comma-separated registered workloads "
        f"(default: {','.join(EVALUATED_NETWORKS)}; "
        "see `repro workloads --list`)",
    )
    parser.add_argument(
        "--network",
        action="append",
        default=[],
        metavar="NAME",
        help="add one registered workload (repeatable); on its own it "
        "replaces the default network set",
    )
    parser.add_argument(
        "--density-profile",
        default=None,
        metavar="NAME",
        help="generate operands at a registered density profile instead of "
        "each workload's own (see `repro workloads --profiles`)",
    )
    parser.add_argument(
        "--architectures",
        default=",".join(DEFAULT_COMPARISON),
        metavar="NAMES",
        help="comma-separated registered architectures "
        f"(default: {','.join(DEFAULT_COMPARISON)}); use --list to see them",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload generation seed (default: 0)"
    )
    parser.add_argument(
        "--per-module", action="store_true",
        help="also print the per-module speedup breakdown",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered architectures and exit",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="shard simulations across N worker processes (-1 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist simulation results to a content-addressed cache at PATH",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache even if $REPRO_CACHE_DIR is set",
    )
    return parser


def list_architectures() -> str:
    """Human-readable registry catalogue (what ``--list`` prints)."""
    from repro.arch.registry import default_registry

    lines = ["Registered architectures:"]
    for spec in default_registry():
        lines.append(f"  {spec.name:14s} {spec.description}")
        if spec.paper_reference:
            lines.append(f"  {'':14s} [{spec.paper_reference}]")
    return "\n".join(lines)


def compare_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro compare``; returns the process exit code."""
    from repro.engine import configure_default_engine

    args = build_compare_parser().parse_args(argv)
    if args.list:
        print(list_architectures())
        return 0
    cache_dir = False if args.no_cache else args.cache_dir
    if cache_dir is not None or args.parallel is not None:
        configure_default_engine(cache_dir=cache_dir, parallel=args.parallel)
    networks: Tuple[str, ...]
    if args.networks:
        networks = tuple(
            part.strip() for part in args.networks.split(",") if part.strip()
        )
        networks += tuple(args.network)
    elif args.network:
        networks = tuple(args.network)
    else:
        networks = EVALUATED_NETWORKS
    architectures = [
        part.strip() for part in args.architectures.split(",") if part.strip()
    ]
    try:
        comparisons = run(
            networks,
            architectures,
            seed=args.seed,
            density_profile=args.density_profile,
        )
    except (KeyError, ValueError) as error:
        # Unknown workload, architecture or density profile (the registry
        # error already lists the catalogue), or a display-name collision
        # between distinct workloads.
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    print(
        "\n\n".join(
            _network_section(comparison, per_module=args.per_module)
            for comparison in comparisons.values()
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(compare_main())
