"""Experiment drivers: one module per paper table or figure.

Each module exposes a ``run()`` function that returns structured results and
a ``main()`` entry point that prints the same rows/series the paper reports.
``docs/paper_mapping.md`` maps every paper artifact to its driver, CLI
command and pinning test.

The comparative drivers are thin views over the architecture registry's
comparison sweep (:mod:`repro.arch.compare`): ``fig8_performance`` and
``fig10_energy`` select columns of the DCNN-baselined comparison,
``table4_configs`` reports the registry's Table IV specs, and ``compare``
(the ``repro compare`` subcommand) exposes the sweep over any registered
architectures directly.
"""
