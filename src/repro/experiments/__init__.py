"""Experiment drivers: one module per paper table or figure.

Each module exposes a ``run()`` function that returns structured results and
a ``main()`` entry point that prints the same rows/series the paper reports.
See DESIGN.md section 4 for the experiment index.
"""
