"""Command-line entry point: ``python -m repro.experiments.cli <experiment>``.

Lists and runs the experiment drivers (one per paper table/figure) so the
evaluation can be regenerated without writing any Python.  ``python -m repro``
forwards here as well.

The simulation engine behind the drivers is configured here: ``--parallel N``
shards independent layer simulations across N worker processes, and
``--cache-dir PATH`` persists finished metrics to a content-addressed
on-disk cache so re-running an experiment with unchanged inputs is instant
(``REPRO_CACHE_DIR`` sets the same root environment-wide; ``--no-cache``
overrides both).

Six subcommands are dispatched before experiment parsing: ``repro
compare`` runs cross-architecture comparison sweeps over the architecture
registry (:mod:`repro.experiments.compare`), ``repro workloads`` lists the
workload registry and its density profiles
(:mod:`repro.experiments.workloads`), ``repro serve`` boots the HTTP
service (:mod:`repro.service`) on one warm engine, ``repro submit
SCENARIO`` sends a scenario to a running service and prints the result
JSON, ``repro stats`` prints (or ``--watch``-es) a running service's
counters or raw ``/metrics`` exposition, and ``repro lint`` runs the
project's static-analysis rule catalogue (:mod:`repro.devtools.lint`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Sequence

from repro.engine import configure_default_engine

from repro.experiments import (
    fig1_density,
    fig7_sensitivity,
    fig8_performance,
    fig9_utilization,
    fig10_energy,
    sec6c_granularity,
    sec6d_tiling,
    table1_networks,
    table2_design_params,
    table3_area,
    table4_configs,
)

EXPERIMENTS: Dict[str, tuple] = {
    "table1": (table1_networks, "Table I: network characteristics"),
    "table2": (table2_design_params, "Table II: SCNN design parameters"),
    "table3": (table3_area, "Table III: SCNN PE area breakdown"),
    "table4": (table4_configs, "Table IV: accelerator configurations"),
    "fig1": (fig1_density, "Figure 1: per-layer density and work reduction"),
    "fig7": (fig7_sensitivity, "Figure 7: sensitivity to density"),
    "fig8": (fig8_performance, "Figure 8: performance vs DCNN"),
    "fig9": (fig9_utilization, "Figure 9: utilization and idle time"),
    "fig10": (fig10_energy, "Figure 10: energy vs DCNN"),
    "sec6c": (sec6c_granularity, "Section VI-C: PE granularity"),
    "sec6d": (sec6d_tiling, "Section VI-D: DRAM tiling"),
}


# Subcommands dispatched before experiment parsing, so `repro serve --port
# 8001` or `repro compare --list` never collide with experiment ids.
SERVICE_COMMANDS = ("serve", "submit", "stats")
COMPARE_COMMAND = "compare"
WORKLOADS_COMMAND = "workloads"
LINT_COMMAND = "lint"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the SCNN paper's tables and figures.",
        epilog="Subcommands: 'repro compare' sweeps registered accelerator "
        "architectures against each other; 'repro workloads' lists the "
        "workload zoo and its density profiles; 'repro serve' boots the "
        "HTTP simulation service, 'repro submit SCENARIO' sends it work, "
        "'repro stats' watches a running service's counters, and "
        "'repro lint' checks the codebase invariants "
        "(each accepts --help).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to run (default: all); use --list to see them",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="shard layer simulations across N worker processes "
        "(-1 = one per CPU; default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist simulation results to a content-addressed cache at PATH "
        "(default: $REPRO_CACHE_DIR if set, else no on-disk cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache even if $REPRO_CACHE_DIR is set",
    )
    return parser


def list_experiments() -> str:
    lines = ["Available experiments:"]
    for key, (_, description) in EXPERIMENTS.items():
        lines.append(f"  {key:8s} {description}")
    lines.append("  all      run every experiment in order")
    return "\n".join(lines)


def run_experiments(names: Sequence[str]) -> List[str]:
    """Run the named experiments (or all of them) and return their ids."""
    if not names or "all" in names:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(EXPERIMENTS)}"
        )
    executed = []
    for name in names:
        module, description = EXPERIMENTS[name]
        banner = f"== {description} =="
        print("\n" + banner)
        started = time.monotonic()
        module.main()
        print(f"[{name} completed in {time.monotonic() - started:.1f} s]")
        executed.append(name)
    return executed


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SERVICE_COMMANDS:
        from repro.service.cli import serve_main, stats_main, submit_main

        handler = {
            "serve": serve_main,
            "submit": submit_main,
            "stats": stats_main,
        }[argv[0]]
        return handler(argv[1:])
    if argv and argv[0] == COMPARE_COMMAND:
        from repro.experiments.compare import compare_main

        return compare_main(argv[1:])
    if argv and argv[0] == WORKLOADS_COMMAND:
        from repro.experiments.workloads import workloads_main

        return workloads_main(argv[1:])
    if argv and argv[0] == LINT_COMMAND:
        from repro.devtools.lint.cli import lint_main

        return lint_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(list_experiments())
        return 0
    cache_dir = False if args.no_cache else args.cache_dir
    if cache_dir is not None or args.parallel is not None:
        configure_default_engine(cache_dir=cache_dir, parallel=args.parallel)
    try:
        run_experiments(args.experiments)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
