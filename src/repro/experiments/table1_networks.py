"""Table I: network characteristics of AlexNet, GoogLeNet and VGGNet.

Reproduces the paper's Table I — number of convolutional layers, maximum
per-layer weight and (input) activation footprints at two bytes per value,
and the total multiplies of one inference pass through the convolutional
layers.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import NetworkCharacteristics, network_characteristics
from repro.analysis.reporting import format_table
from repro.experiments.common import EVALUATED_NETWORKS, cached_network

# Paper-reported values for side-by-side comparison.
PAPER_TABLE_I = {
    "AlexNet": (5, 1.73, 0.31, 0.69),
    "GoogLeNet": (54, 1.32, 1.52, 1.1),
    "VGGNet": (13, 4.49, 6.12, 15.3),
}


def run() -> List[NetworkCharacteristics]:
    """Compute the Table I row of every evaluated network."""
    return [network_characteristics(cached_network(name)) for name in EVALUATED_NETWORKS]


def main() -> str:
    rows = []
    for row in run():
        paper = PAPER_TABLE_I.get(row.name, ("-", "-", "-", "-"))
        rows.append(
            (
                row.name,
                row.conv_layers,
                f"{row.max_layer_weight_mb:.2f}",
                f"{row.max_layer_activation_mb:.2f}",
                f"{row.total_multiplies_billions:.2f}",
                f"{paper[0]} / {paper[1]} / {paper[2]} / {paper[3]}",
            )
        )
    table = format_table(
        [
            "Network",
            "# Conv layers",
            "Max wt (MB)",
            "Max act (MB)",
            "Multiplies (B)",
            "Paper (layers/wt/act/mult)",
        ],
        rows,
        title="Table I: network characteristics",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
