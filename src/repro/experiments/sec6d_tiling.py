"""Section VI-D: larger networks — DRAM tiling of layers that overflow the RAMs.

SCNN holds compressed activations in its IARAM/OARAM whenever possible.  For
layers whose compressed input + output activations exceed that capacity, the
activations must be tiled through DRAM, which costs energy (the paper's
pipelining hides the latency).

Paper landmarks: 9 of the 72 evaluated layers require DRAM tiling, all in
VGGNet, with an energy penalty of 5-62% (mean ~18%) on those layers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.experiments.common import EVALUATED_NETWORKS, cached_simulation
from repro.scnn.config import SCNN_CONFIG
from repro.timeloop.energy import DEFAULT_ENERGY_TABLE, layer_energy_from_densities

# Compressed storage overhead: one 4-bit index per 16-bit value plus run-length
# padding, matching the provisioning ratio of Table II.
_INDEX_OVERHEAD = 1.0 + SCNN_CONFIG.index_bits / 16.0


@dataclass
class TilingRow:
    """DRAM-tiling assessment of one layer."""

    network: str
    layer: str
    compressed_activation_bytes: int
    fits_on_chip: bool
    energy_penalty: float


def run(networks: tuple = EVALUATED_NETWORKS, seed: int = 0) -> List[TilingRow]:
    rows: List[TilingRow] = []
    capacity = SCNN_CONFIG.activation_sram_bytes
    # A configuration with effectively unlimited activation RAM gives the
    # no-spill baseline energy for the penalty computation.
    roomy_config = replace(
        SCNN_CONFIG, iaram_bytes=64 * 1024 * 1024, oaram_bytes=64 * 1024 * 1024
    )
    for name in networks:
        simulation = cached_simulation(name, seed)
        for layer in simulation.layers:
            workload = layer.workload
            spec = workload.spec
            nnz_in = int(round(spec.input_activation_count * workload.activation_density))
            nnz_out = int(round(spec.output_activation_count * layer.output_density))
            compressed_bytes = int((nnz_in + nnz_out) * 2 * _INDEX_OVERHEAD)
            fits = compressed_bytes <= capacity
            penalty = 0.0
            if not fits:
                with_dram = layer_energy_from_densities(
                    spec,
                    SCNN_CONFIG,
                    weight_density=workload.weight_density,
                    activation_density=workload.activation_density,
                    output_density=layer.output_density,
                    cycles=layer.scnn.cycles,
                    products=layer.scnn.products,
                    table=DEFAULT_ENERGY_TABLE,
                ).total
                without_dram = layer_energy_from_densities(
                    spec,
                    roomy_config,
                    weight_density=workload.weight_density,
                    activation_density=workload.activation_density,
                    output_density=layer.output_density,
                    cycles=layer.scnn.cycles,
                    products=layer.scnn.products,
                    table=DEFAULT_ENERGY_TABLE,
                ).total
                penalty = with_dram / without_dram - 1.0
            rows.append(
                TilingRow(
                    network=simulation.network.name,
                    layer=spec.name,
                    compressed_activation_bytes=compressed_bytes,
                    fits_on_chip=fits,
                    energy_penalty=penalty,
                )
            )
    return rows


def summary(rows: List[TilingRow]) -> Dict[str, float]:
    spilled = [row for row in rows if not row.fits_on_chip]
    penalties = [row.energy_penalty for row in spilled]
    return {
        "evaluated_layers": float(len(rows)),
        "spilled_layers": float(len(spilled)),
        "min_penalty": min(penalties) if penalties else 0.0,
        "max_penalty": max(penalties) if penalties else 0.0,
        "mean_penalty": sum(penalties) / len(penalties) if penalties else 0.0,
    }


def main() -> str:
    rows = run()
    spilled = [row for row in rows if not row.fits_on_chip]
    table_rows = [
        (
            row.network,
            row.layer,
            f"{row.compressed_activation_bytes / (1024 * 1024):.2f}",
            f"{row.energy_penalty * 100:.0f}%",
        )
        for row in spilled
    ]
    table = format_table(
        ["Network", "Layer", "Compressed acts (MB)", "Energy penalty"],
        table_rows,
        title="Section VI-D: layers requiring DRAM tiling",
    )
    stats = summary(rows)
    extra = (
        f"\n{int(stats['spilled_layers'])} of {int(stats['evaluated_layers'])} evaluated "
        f"layers require DRAM tiling (paper: 9 of 72); penalty "
        f"{stats['min_penalty'] * 100:.0f}%-{stats['max_penalty'] * 100:.0f}% "
        f"(mean {stats['mean_penalty'] * 100:.0f}%), paper: 5-62% (mean 18%)"
    )
    output = table + extra
    print(output)
    return output


if __name__ == "__main__":
    main()
