"""``repro workloads`` — the workload zoo from the command line.

Lists the registered workloads (the paper's Table I trio, the builder
variants, the synthetic zoo, anything registered at runtime) and the density
profiles their operands can be generated at::

    repro workloads --list              # the catalogue (default action)
    repro workloads --profiles          # the density-profile library
    repro workloads --describe vggnet   # per-layer shape table of one entry

Pair it with the other subcommands: ``repro compare --network plain-cnn-8``
sweeps a synthetic workload across registered architectures, and ``repro
submit network --network plain-cnn-8 --density-profile uniform-25`` runs one
through the service.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.workloads.profiles import available_profiles, get_profile
from repro.workloads.registry import default_registry, get_workload


def list_workloads() -> str:
    """Human-readable workload catalogue (what ``--list`` prints)."""
    lines = ["Registered workloads:"]
    for spec in default_registry():
        network = spec.build()
        lines.append(
            f"  {spec.name:20s} {network.conv_layer_count:3d} conv layers, "
            f"{network.total_multiplies / 1e9:6.2f} GMUL, "
            f"profile {spec.density_profile}"
        )
        if spec.description:
            lines.append(f"  {'':20s} {spec.description}")
        if spec.paper_reference:
            lines.append(f"  {'':20s} [{spec.paper_reference}]")
    return "\n".join(lines)


def list_profiles() -> str:
    """Human-readable density-profile catalogue (what ``--profiles`` prints)."""
    lines = ["Registered density profiles:"]
    for name in available_profiles():
        profile = get_profile(name)
        lines.append(f"  {profile.name:14s} {profile.description}")
    return "\n".join(lines)


def describe_workload(name: str) -> str:
    """Per-layer shape table of one registered workload."""
    spec = get_workload(name)
    network = spec.build()
    lines = [
        f"{spec.name}: {network.name} "
        f"({network.conv_layer_count} conv layers, "
        f"{network.total_multiplies / 1e9:.2f} GMUL, "
        f"density profile {spec.density_profile})"
    ]
    if spec.description:
        lines.append(f"  {spec.description}")
    sparsity = spec.sparsity(network)
    for layer in network.layers:
        densities = sparsity[layer.name]
        lines.append(
            f"  {layer.describe()}  "
            f"[w {densities.weight_density:.2f} / "
            f"a {densities.activation_density:.2f}]"
        )
    return "\n".join(lines)


def build_workloads_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro workloads`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro workloads",
        description="List and inspect the registered workloads (networks + "
        "density profiles) every simulation entry point accepts.",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered workloads and exit (the default action)",
    )
    parser.add_argument(
        "--profiles", action="store_true",
        help="list registered density profiles and exit",
    )
    parser.add_argument(
        "--describe", default=None, metavar="NAME",
        help="print the per-layer shape and density table of one workload",
    )
    return parser


def workloads_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro workloads``; returns the process exit code."""
    args = build_workloads_parser().parse_args(argv)
    try:
        if args.describe:
            try:
                print(describe_workload(args.describe))
            except KeyError as error:
                print(error.args[0] if error.args else str(error), file=sys.stderr)
                return 2
            return 0
        if args.profiles:
            print(list_profiles())
            if not args.list:
                return 0
            print()
        print(list_workloads())
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: not an error, but
        # stdout must be detached before the interpreter's exit flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(workloads_main())
