"""Table III: SCNN PE area breakdown and accelerator total."""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import format_table
from repro.scnn.config import SCNN_CONFIG
from repro.timeloop.area import (
    PE_AREA_BREAKDOWN,
    accelerator_area_mm2,
    pe_area_breakdown,
    pe_area_mm2,
)

PAPER_PE_TOTAL_MM2 = 0.123
PAPER_ACCELERATOR_MM2 = 7.9


def run() -> Dict[str, float]:
    """Modelled per-structure PE areas plus PE and accelerator totals."""
    breakdown = dict(pe_area_breakdown(SCNN_CONFIG))
    breakdown["PE total"] = pe_area_mm2(SCNN_CONFIG)
    breakdown["Accelerator total (64 PEs)"] = accelerator_area_mm2(SCNN_CONFIG)
    return breakdown


def main() -> str:
    modelled = run()
    rows = []
    for component, paper_value in PE_AREA_BREAKDOWN.items():
        rows.append((component, f"{modelled[component]:.3f}", f"{paper_value:.3f}"))
    rows.append(("PE total", f"{modelled['PE total']:.3f}", f"{PAPER_PE_TOTAL_MM2:.3f}"))
    rows.append(
        (
            "Accelerator total (64 PEs)",
            f"{modelled['Accelerator total (64 PEs)']:.1f}",
            f"{PAPER_ACCELERATOR_MM2:.1f}",
        )
    )
    table = format_table(
        ["PE component", "Modelled (mm^2)", "Paper (mm^2)"],
        rows,
        title="Table III: SCNN PE area breakdown",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
