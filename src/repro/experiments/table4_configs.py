"""Table IV: the DCNN / DCNN-opt / SCNN accelerator configurations.

A thin view over the architecture registry: the rows are the registry's
``table4``-tagged specs (see :func:`repro.timeloop.area.table_iv_configurations`),
so registering a new Table IV variant extends this driver without code
changes.
"""

from __future__ import annotations

from typing import List

from repro.analysis.reporting import format_table
from repro.arch.registry import resolve_config
from repro.timeloop.area import ConfigurationRow, table_iv_configurations

PAPER_TABLE_IV = {
    "DCNN": (64, 1024, 2.0, 5.9),
    "DCNN-opt": (64, 1024, 2.0, 5.9),
    "SCNN": (64, 1024, 1.0, 7.9),
}


def run() -> List[ConfigurationRow]:
    """The Table IV rows, sourced from the architecture registry."""
    return table_iv_configurations()


def density_grid(
    densities=(0.1, 0.25, 0.5, 0.75, 1.0),
    network_name: str = "googlenet",
):
    """The Table IV configurations swept across a whole density grid.

    Complements the static area rows of :func:`run` with a dynamic view:
    every ``table4``-tagged architecture is evaluated on ``network_name``
    at every density in one batched grid pass
    (:class:`repro.grid.GridResult`), cached by the shared engine under a
    grid-level key.  Weight and activation densities sweep together, the
    Figure 7 convention.
    """
    from repro.engine import default_engine
    from repro.experiments.common import cached_network

    network = cached_network(network_name)
    names = [row.name for row in table_iv_configurations()]
    return default_engine().evaluate_grid(
        list(network.layers),
        [resolve_config(name) for name in names],
        weight_density=list(densities),
        activation_density=list(densities),
        model="auto",
    )


def main() -> str:
    """Print (and return) the Table IV comparison against the paper."""
    rows = []
    for config in run():
        paper = PAPER_TABLE_IV.get(config.name)
        paper_note = (
            f"{paper[2]:.1f} MB / {paper[3]:.1f} mm^2" if paper else "-"
        )
        rows.append(
            (
                config.name,
                config.num_pes,
                config.multipliers,
                f"{config.sram_bytes / (1024 * 1024):.2f}",
                f"{config.area_mm2:.1f}",
                paper_note,
            )
        )
    table = format_table(
        ["Config", "# PEs", "# MULs", "SRAM (MB)", "Area (mm^2)", "Paper (SRAM/area)"],
        rows,
        title="Table IV: CNN accelerator configurations",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
