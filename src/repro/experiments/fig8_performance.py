"""Figure 8: per-layer and network-wide speedup of SCNN over DCNN.

For each evaluated network the cycle-level model reports, per layer (per
inception module for GoogLeNet, as in the paper) and for the whole network,
the speedup of SCNN and of the oracular SCNN over the dense DCNN baseline.

This driver is a thin view over the cross-architecture comparison sweep
(:func:`repro.arch.compare.compare_network`): it selects the SCNN and oracle
speedup columns of the default DCNN-baselined comparison, whose trio metrics
are bitwise-identical to the canonical network simulation.

Paper landmarks: network-wide speedups of 2.37x (AlexNet), 2.19x (GoogLeNet)
and 3.52x (VGGNet), 2.7x on average, with SCNN(oracle) widening the gap in
the later, smaller layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.aggregate import geometric_mean
from repro.analysis.reporting import format_table
from repro.arch.compare import NetworkComparison, compare_network
from repro.experiments.common import EVALUATED_NETWORKS, PAPER_NETWORK_SPEEDUP


@dataclass
class SpeedupRow:
    """One bar group of Figure 8 (a layer, a module, or the whole network)."""

    label: str
    dcnn: float
    scnn: float
    oracle: float


@dataclass
class NetworkSpeedupReport:
    """Figure 8 data of one network."""

    network: str
    rows: List[SpeedupRow]
    network_speedup: float
    oracle_speedup: float
    paper_speedup: float


def _per_module_rows(comparison: NetworkComparison) -> List[SpeedupRow]:
    rows = []
    for module in comparison.modules():
        rows.append(
            SpeedupRow(
                label=module,
                dcnn=1.0,
                scnn=comparison.module_speedup(module, "SCNN"),
                oracle=comparison.module_oracle_speedup(module),
            )
        )
    return rows


def run(
    networks: tuple = EVALUATED_NETWORKS, seed: int = 0, engine=None
) -> Dict[str, NetworkSpeedupReport]:
    """Per-layer/module and network speedups for every evaluated network.

    ``engine`` (optional :class:`repro.engine.SimulationEngine`) overrides
    the shared default — the service's ``fig8`` scenario passes its own.
    """
    reports: Dict[str, NetworkSpeedupReport] = {}
    for name in networks:
        comparison = compare_network(name, seed=seed, engine=engine)
        rows = _per_module_rows(comparison)
        rows.append(
            SpeedupRow(
                label="all",
                dcnn=1.0,
                scnn=comparison.speedup("SCNN"),
                oracle=comparison.oracle_speedup,
            )
        )
        reports[comparison.network] = NetworkSpeedupReport(
            network=comparison.network,
            rows=rows,
            network_speedup=comparison.speedup("SCNN"),
            oracle_speedup=comparison.oracle_speedup,
            paper_speedup=PAPER_NETWORK_SPEEDUP.get(comparison.network, 0.0),
        )
    return reports


def average_speedup(reports: Dict[str, NetworkSpeedupReport]) -> float:
    """Average of the network-wide speedups (paper: 2.7x)."""
    return geometric_mean([report.network_speedup for report in reports.values()])


def main() -> str:
    """Print (and return) the Figure 8 tables for every evaluated network."""
    reports = run()
    sections = []
    for report in reports.values():
        table_rows = [
            (row.label, "1.00", f"{row.scnn:.2f}", f"{row.oracle:.2f}")
            for row in report.rows
        ]
        table = format_table(
            ["Layer", "DCNN/DCNN-opt", "SCNN", "SCNN (oracle)"],
            table_rows,
            title=f"Figure 8: {report.network} speedup over DCNN",
        )
        sections.append(
            table
            + f"\nNetwork speedup: {report.network_speedup:.2f}x "
            f"(paper: {report.paper_speedup:.2f}x)"
        )
    overall = average_speedup(reports)
    sections.append(f"Average network speedup: {overall:.2f}x (paper: 2.7x)")
    output = "\n\n".join(sections)
    print(output)
    return output


if __name__ == "__main__":
    main()
