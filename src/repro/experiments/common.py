"""Shared helpers for the experiment drivers.

Several figures (8, 9, 10) consume the same per-network simulations; this
module caches them so an experiment session (or a benchmark run) builds each
network's workloads and simulation exactly once.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.nn.networks import Network, get_network
from repro.scnn.simulator import NetworkSimulation, simulate_network

EVALUATED_NETWORKS: Tuple[str, ...] = ("alexnet", "googlenet", "vggnet")

# Paper-reported headline numbers, used by EXPERIMENTS.md and by the
# benchmark harness to report "paper vs measured" side by side.
PAPER_NETWORK_SPEEDUP = {"AlexNet": 2.37, "GoogLeNet": 2.19, "VGGNet": 3.52}
PAPER_AVERAGE_SPEEDUP = 2.7
PAPER_AVERAGE_ENERGY_REDUCTION = 2.3
PAPER_DCNN_OPT_ENERGY_REDUCTION = 2.0


@lru_cache(maxsize=None)
def cached_network(name: str) -> Network:
    """Catalogue network by name, constructed once per process."""
    return get_network(name)


@lru_cache(maxsize=None)
def cached_simulation(name: str, seed: int = 0) -> NetworkSimulation:
    """Full network simulation (workloads + SCNN + DCNN + oracle + energy).

    Cached because the workload generation and the oracle's exact non-zero
    product count are the expensive parts, and Figures 8, 9 and 10 all read
    from the same simulation.
    """
    return simulate_network(cached_network(name), seed=seed)
