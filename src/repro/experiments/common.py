"""Shared helpers for the experiment drivers.

Several figures (8, 9, 10) consume the same per-network simulations.  All of
them route through the shared :class:`~repro.engine.SimulationEngine`, which
memoises each network's simulation in memory (so one experiment session
builds it exactly once, as before), shards the per-layer work across a
process pool when parallelism is configured, and persists finished metrics
to the content-addressed on-disk cache when ``REPRO_CACHE_DIR`` (or the CLI
``--cache-dir`` flag) names a cache root.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from repro.engine import SimulationEngine, default_engine
from repro.nn.networks import Network, get_network
from repro.scnn.simulator import NetworkSimulation

EVALUATED_NETWORKS: Tuple[str, ...] = ("alexnet", "googlenet", "vggnet")

# Paper-reported headline numbers, used by EXPERIMENTS.md and by the
# benchmark harness to report "paper vs measured" side by side.
PAPER_NETWORK_SPEEDUP = {"AlexNet": 2.37, "GoogLeNet": 2.19, "VGGNet": 3.52}
PAPER_AVERAGE_SPEEDUP = 2.7
PAPER_AVERAGE_ENERGY_REDUCTION = 2.3
PAPER_DCNN_OPT_ENERGY_REDUCTION = 2.0


@lru_cache(maxsize=None)
def cached_network(name: str) -> Network:
    """Catalogue network by name, constructed once per process."""
    return get_network(name)


def cached_simulation(
    name: str, seed: int = 0, engine: Optional[SimulationEngine] = None
) -> NetworkSimulation:
    """Full network simulation (workloads + SCNN + DCNN + oracle + energy).

    Served by the shared simulation engine: the first request computes (in
    parallel, if the engine is configured for it), repeats hit the engine's
    in-memory memo table, and cross-process repeats hit the on-disk cache
    when one is configured.  ``engine`` overrides the process-wide default —
    the simulation service passes its own warm engine here so figure
    regenerations share the service cache.

    The *name* is handed to the engine (not a pre-built ``Network``) so the
    workload registry supplies the registered density profile — a synthetic
    workload simulated through fig8/fig10 uses the same densities as the
    ``compare`` and ``network`` paths.
    """
    if engine is None:
        engine = default_engine()
    return engine.run_network(name, seed=seed)
