"""Figure 9: multiplier-array utilization and inter-PE barrier idle time.

Per layer (per inception module for GoogLeNet), report the average
multiplier-array utilization of SCNN and the fraction of cycles PEs spend
idle at the output-channel-group barrier.

Paper landmarks: utilization drops in the later, smaller layers (below 20%
for GoogLeNet's last inception modules) and the barrier idle fraction grows,
because small per-PE working sets cannot fill the 4x4 multiplier array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.experiments.common import EVALUATED_NETWORKS, cached_simulation


@dataclass
class UtilizationRow:
    """One x-axis point of Figure 9."""

    label: str
    multiplier_utilization: float
    idle_fraction: float


@dataclass
class UtilizationReport:
    network: str
    rows: List[UtilizationRow]
    average_utilization: float
    average_idle: float


def run(networks: tuple = EVALUATED_NETWORKS, seed: int = 0) -> Dict[str, UtilizationReport]:
    reports: Dict[str, UtilizationReport] = {}
    for name in networks:
        simulation = cached_simulation(name, seed)
        rows = []
        for module in simulation.modules():
            stats = simulation.module_utilization(module)
            rows.append(
                UtilizationRow(
                    label=module,
                    multiplier_utilization=stats["multiplier_utilization"],
                    idle_fraction=stats["idle_fraction"],
                )
            )
        total_cycles = sum(layer.scnn.cycles for layer in simulation.layers)
        avg_util = 0.0
        avg_idle = 0.0
        if total_cycles:
            avg_util = (
                sum(
                    layer.scnn.multiplier_utilization * layer.scnn.cycles
                    for layer in simulation.layers
                )
                / total_cycles
            )
            avg_idle = (
                sum(
                    layer.scnn.idle_fraction * layer.scnn.cycles
                    for layer in simulation.layers
                )
                / total_cycles
            )
        reports[simulation.network.name] = UtilizationReport(
            network=simulation.network.name,
            rows=rows,
            average_utilization=avg_util,
            average_idle=avg_idle,
        )
    return reports


def main() -> str:
    sections = []
    for report in run().values():
        table_rows = [
            (row.label, f"{row.multiplier_utilization:.2f}", f"{row.idle_fraction:.2f}")
            for row in report.rows
        ]
        table = format_table(
            ["Layer", "Multiplier util.", "PE idle fraction"],
            table_rows,
            title=f"Figure 9: {report.network} utilization",
        )
        sections.append(
            table
            + f"\nCycle-weighted average utilization: {report.average_utilization:.2f}, "
            f"idle fraction: {report.average_idle:.2f}"
        )
    output = "\n\n".join(sections)
    print(output)
    return output


if __name__ == "__main__":
    main()
