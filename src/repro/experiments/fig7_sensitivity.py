"""Figure 7: sensitivity of performance and energy to weight/activation density.

Using the analytical (TimeLoop) model, GoogLeNet's weight and activation
densities are artificially swept together from 1.0 down to 0.1 and the
network-wide latency (7a) and energy (7b) of SCNN, DCNN and DCNN-opt are
reported relative to DCNN.

Paper landmarks this experiment must reproduce:

* at 100% density SCNN reaches only ~79% of DCNN's performance,
* SCNN overtakes DCNN in performance below ~85% density and reaches ~24x at
  10% density,
* DCNN-opt uses no more energy than DCNN at any density,
* SCNN becomes more energy-efficient than DCNN near ~83% density and than
  DCNN-opt near ~60% density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.experiments.common import cached_network
from repro.scnn.config import (
    AcceleratorConfig,
    DCNN_CONFIG,
    DCNN_OPT_CONFIG,
    SCNN_CONFIG,
)
from repro.timeloop.energy import DEFAULT_ENERGY_TABLE, layer_energy_from_densities
from repro.timeloop.model import estimate_dense_layer, estimate_scnn_layer

DEFAULT_DENSITIES: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


@dataclass
class SweepPoint:
    """One x-axis point of Figure 7 (weights and activations at ``density``)."""

    density: float
    scnn_cycles: float
    dcnn_cycles: float
    energy: Dict[str, float]

    @property
    def latency_ratio(self) -> float:
        """SCNN latency relative to DCNN (Figure 7a; < 1 means SCNN is faster)."""
        return self.scnn_cycles / self.dcnn_cycles

    @property
    def scnn_speedup(self) -> float:
        return self.dcnn_cycles / self.scnn_cycles

    def energy_ratio(self, which: str) -> float:
        """Energy of ``which`` relative to DCNN (Figure 7b)."""
        return self.energy[which] / self.energy["DCNN"]


def run(
    densities: Sequence[float] = DEFAULT_DENSITIES,
    network_name: str = "googlenet",
    *,
    scnn_config: AcceleratorConfig = SCNN_CONFIG,
    dcnn_config: AcceleratorConfig = DCNN_CONFIG,
    dcnn_opt_config: AcceleratorConfig = DCNN_OPT_CONFIG,
    batched: bool = True,
) -> List[SweepPoint]:
    """Run the density sweep with the analytical model.

    The default path evaluates the whole layers x densities grid in one
    batched pass through :mod:`repro.grid`; ``batched=False`` keeps the
    original per-(layer, density) loop as the equivalence oracle.  Both
    produce bitwise-identical sweep points.
    """
    if batched:
        return _run_batched(
            densities,
            network_name,
            scnn_config=scnn_config,
            dcnn_config=dcnn_config,
            dcnn_opt_config=dcnn_opt_config,
        )
    network = cached_network(network_name)
    dense_cycles = {
        spec.name: estimate_dense_layer(spec, dcnn_config).cycles
        for spec in network.layers
    }
    points: List[SweepPoint] = []
    for density in densities:
        scnn_total = 0.0
        dcnn_total = 0.0
        energy = {"SCNN": 0.0, "DCNN": 0.0, "DCNN-opt": 0.0}
        for spec in network.layers:
            estimate = estimate_scnn_layer(
                spec,
                weight_density=density,
                activation_density=density,
                config=scnn_config,
            )
            scnn_total += estimate.cycles
            dcnn_total += dense_cycles[spec.name]
            # The sweep scales the *input* densities; output activations keep
            # roughly the input density (they feed the next swept layer).
            output_density = min(1.0, density)
            for config, cycles in (
                (scnn_config, estimate.cycles),
                (dcnn_config, dense_cycles[spec.name]),
                (dcnn_opt_config, dense_cycles[spec.name]),
            ):
                energy[config.name] += layer_energy_from_densities(
                    spec,
                    config,
                    weight_density=density,
                    activation_density=density,
                    output_density=output_density,
                    cycles=int(cycles),
                    table=DEFAULT_ENERGY_TABLE,
                ).total
        points.append(
            SweepPoint(
                density=density,
                scnn_cycles=scnn_total,
                dcnn_cycles=dcnn_total,
                energy=energy,
            )
        )
    return points


def _run_batched(
    densities: Sequence[float],
    network_name: str,
    *,
    scnn_config: AcceleratorConfig,
    dcnn_config: AcceleratorConfig,
    dcnn_opt_config: AcceleratorConfig,
) -> List[SweepPoint]:
    """One grid pass over the whole layers x densities sweep.

    Mirrors the oracle loop exactly: the SCNN cycle grid feeds SCNN's energy
    cycles, while *both* dense configs are charged the DCNN config's dense
    cycles (DCNN-opt's optimisations do not change the cycle count), and the
    per-point totals accumulate in the oracle's layer order.
    """
    import numpy as np

    from repro.grid import dense_cycle_grid, energy_grid, scnn_cycle_grid

    network = cached_network(network_name)
    specs = list(network.layers)
    density_axis = np.asarray(list(densities), dtype=np.float64)
    grid = np.broadcast_to(
        density_axis[None, :], (len(specs), len(density_axis))
    )
    scnn = scnn_cycle_grid(specs, scnn_config, grid, grid)
    dense = dense_cycle_grid(specs, dcnn_config)
    output_density = np.minimum(1.0, grid)
    scnn_energy_cycles = scnn.cycles.astype(np.int64)
    dense_energy_cycles = np.broadcast_to(
        dense.cycles[:, None], grid.shape
    )
    energy_grids = {
        scnn_config.name: energy_grid(
            specs,
            scnn_config,
            weight_density=grid,
            activation_density=grid,
            output_density=output_density,
            cycles=scnn_energy_cycles,
            table=DEFAULT_ENERGY_TABLE,
        )["total"],
        dcnn_config.name: energy_grid(
            specs,
            dcnn_config,
            weight_density=grid,
            activation_density=grid,
            output_density=output_density,
            cycles=dense_energy_cycles,
            table=DEFAULT_ENERGY_TABLE,
        )["total"],
        dcnn_opt_config.name: energy_grid(
            specs,
            dcnn_opt_config,
            weight_density=grid,
            activation_density=grid,
            output_density=output_density,
            cycles=dense_energy_cycles,
            table=DEFAULT_ENERGY_TABLE,
        )["total"],
    }
    points: List[SweepPoint] = []
    for d, density in enumerate(densities):
        scnn_total = 0.0
        dcnn_total = 0.0
        energy = {name: 0.0 for name in energy_grids}
        for s in range(len(specs)):
            scnn_total += scnn.cycles[s, d]
            dcnn_total += float(dense.cycles[s])
            for name, totals in energy_grids.items():
                energy[name] += totals[s, d]
        points.append(
            SweepPoint(
                density=density,
                scnn_cycles=float(scnn_total),
                dcnn_cycles=float(dcnn_total),
                energy={name: float(value) for name, value in energy.items()},
            )
        )
    return points


def _interpolated_crossover(
    points: Sequence[SweepPoint], ratio_of_point
) -> float:
    """Density at which a monotone ratio curve crosses 1.0 (linear interp)."""
    ordered = sorted(points, key=lambda p: p.density)
    previous = None
    crossover = 0.0
    for point in ordered:
        ratio = ratio_of_point(point)
        if ratio <= 1.0:
            crossover = point.density
        elif previous is not None and ratio_of_point(previous) <= 1.0:
            low_d, low_r = previous.density, ratio_of_point(previous)
            span = ratio - low_r
            if span > 0:
                crossover = low_d + (point.density - low_d) * (1.0 - low_r) / span
            break
        previous = point
    return crossover


def performance_crossover(points: Sequence[SweepPoint]) -> float:
    """Density at which SCNN's latency equals DCNN's (paper: ~0.85)."""
    return _interpolated_crossover(points, lambda p: p.latency_ratio)


def energy_crossover(points: Sequence[SweepPoint], baseline: str) -> float:
    """Density at which SCNN's energy equals ``baseline``'s."""
    return _interpolated_crossover(
        points, lambda p: p.energy["SCNN"] / p.energy[baseline]
    )


def main() -> str:
    points = run()
    rows = []
    for point in points:
        rows.append(
            (
                f"{point.density:.1f}/{point.density:.1f}",
                f"{point.latency_ratio:.2f}",
                f"{point.scnn_speedup:.1f}x",
                "1.00",
                f"{point.energy_ratio('DCNN-opt'):.2f}",
                f"{point.energy_ratio('SCNN'):.2f}",
            )
        )
    table = format_table(
        [
            "W/A density",
            "SCNN latency (vs DCNN)",
            "SCNN speedup",
            "E DCNN",
            "E DCNN-opt",
            "E SCNN",
        ],
        rows,
        title="Figure 7: GoogLeNet performance and energy vs density",
    )
    summary = (
        f"\nPerformance crossover (paper ~0.85): {performance_crossover(points):.2f}"
        f"\nEnergy crossover vs DCNN (paper ~0.83): {energy_crossover(points, 'DCNN'):.2f}"
        f"\nEnergy crossover vs DCNN-opt (paper ~0.60): {energy_crossover(points, 'DCNN-opt'):.2f}"
    )
    output = table + summary
    print(output)
    return output


if __name__ == "__main__":
    main()
