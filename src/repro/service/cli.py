"""``repro serve``, ``repro submit`` and ``repro stats`` — the service CLI.

``repro serve`` boots the HTTP service in the foreground on one warm
engine; ``repro submit`` is a thin :class:`~repro.service.client.ServiceClient`
wrapper that submits a scenario, waits, and prints the result JSON;
``repro stats`` prints a running service's counters once or continuously::

    repro serve --port 8000 --workers 4 --cache-dir ~/.cache/repro-scnn
    repro submit network --param network=alexnet
    repro submit fig8 --param networks=alexnet,googlenet --url http://host:8000
    repro stats --watch --interval 2

``--param key=value`` values are parsed as JSON when possible (``seed=3``
is the integer 3, ``include_baseline=false`` a boolean) and fall back to
plain strings (``network=alexnet``).  ``repro serve --log-level info``
widens the structured JSON event log (warnings-and-up by default) and
``--log-file`` redirects it from stderr to a file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional, Sequence

from repro.service.client import JobFailedError, ServiceClient, ServiceError

DEFAULT_PORT = 8000


def build_serve_parser() -> argparse.ArgumentParser:
    """The argument parser behind ``repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve simulations over HTTP from one warm engine.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="workers draining the job queue (default: 2)",
    )
    parser.add_argument(
        "--mode", choices=("thread", "process"), default="thread",
        help="worker tier: 'thread' = N threads on one warm engine; "
        "'process' = N forked engine processes sharing the on-disk cache "
        "(default: thread)",
    )
    parser.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="bound the queue; submissions beyond it get 429 + Retry-After "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--no-fast-path", action="store_true",
        help="disable the HTTP-layer payload cache (repeat submissions "
        "re-enter the queue instead of answering instantly)",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="engine process-pool size per simulation (-1 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed result cache root "
        "(default: $REPRO_CACHE_DIR if set, else no on-disk cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache even if $REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="bound the on-disk cache to N entries with LRU eviction",
    )
    parser.add_argument(
        "--memory-max-entries", type=int, default=512, metavar="N",
        help="bound the engine's in-memory memo table to N entries, LRU "
        "(0 = unbounded; default: 512 — a long-lived service must not "
        "grow per distinct request)",
    )
    parser.add_argument(
        "--journal-dir", default=None, metavar="PATH",
        help="persist job records here; queued/running jobs resume on restart",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="warning",
        help="threshold for structured JSON log events (default: warning)",
    )
    parser.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured JSON log events here instead of stderr",
    )
    parser.add_argument(
        "--no-obs", action="store_true",
        help="leave the metrics registry and tracer disabled (/metrics and "
        "/jobs/<id>/trace serve empty data)",
    )
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Boot the HTTP service in the foreground (the ``repro serve`` command)."""
    import signal

    from repro.engine import SimulationEngine
    from repro.service.server import create_server

    from repro import obs

    args = build_serve_parser().parse_args(argv)
    obs.configure_logging(args.log_level, log_file=args.log_file)
    cache_dir = False if args.no_cache else args.cache_dir
    engine = SimulationEngine(
        cache_dir=cache_dir,
        parallel=args.parallel,
        cache_max_entries=args.cache_max_entries,
        memory_max_entries=args.memory_max_entries or None,
    )
    server = create_server(
        host=args.host,
        port=args.port,
        engine=engine,
        num_workers=args.workers,
        journal_dir=args.journal_dir,
        mode=args.mode,
        max_queue_depth=args.max_queue_depth,
        fast_path=not args.no_fast_path,
        verbose=args.verbose,
        observability=not args.no_obs,
    )
    print(
        f"repro service listening on {server.url} "
        f"({args.workers} {args.mode} workers; scenarios: "
        f"{', '.join(server.service.registry.names())})",
        flush=True,
    )
    # SIGTERM must take the same clean-shutdown path as Ctrl-C: in process
    # mode the worker tier is real child processes, and dying without
    # stopping them would orphan children that keep inherited file
    # descriptors (sockets, pipes to a supervising parent) open.
    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous_handler)
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    """The argument parser behind ``repro submit``."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit one scenario to a running repro service.",
    )
    parser.add_argument("scenario", help="scenario name (see GET /scenarios)")
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="scenario parameter (repeatable); values parse as JSON, "
        "falling back to plain strings",
    )
    parser.add_argument(
        "--network", default=None, metavar="NAME",
        help="shorthand for --param network=NAME — or networks=[NAME] when "
        "the scenario declares the plural form (any registered workload; "
        "see `repro workloads --list`)",
    )
    parser.add_argument(
        "--density-profile", default=None, metavar="NAME",
        help="shorthand for --param density_profile=NAME (see "
        "`repro workloads --profiles`)",
    )
    parser.add_argument(
        "--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help=f"service base URL (default: http://127.0.0.1:{DEFAULT_PORT})",
    )
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="seconds to wait for the result (default: 600)",
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="print the job id immediately instead of waiting for the result",
    )
    return parser


def parse_params(pairs: Sequence[str]) -> Dict[str, Any]:
    """``KEY=VALUE`` pairs to a params dict, JSON-decoding each value."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ValueError(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def network_param_key(scenario_description: Optional[Dict[str, Any]]) -> str:
    """Which parameter the ``--network`` shorthand should populate.

    ``network`` when the scenario declares it (or when the schema is
    unavailable), ``networks`` for plural-only scenarios like ``compare`` /
    ``fig8`` / ``fig10`` — so one shorthand works across the catalogue.
    """
    if scenario_description:
        declared = {
            parameter["name"]
            for parameter in scenario_description.get("parameters", [])
        }
        if "network" not in declared and "networks" in declared:
            return "networks"
    return "network"


def submit_main(argv: Optional[Sequence[str]] = None) -> int:
    """Submit one scenario and print its result (``repro submit``)."""
    args = build_submit_parser().parse_args(argv)
    try:
        params = parse_params(args.param)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    shorthands: Dict[str, Any] = {}
    if args.network is not None:
        try:
            catalogue = {entry["name"]: entry for entry in client.scenarios()}
        except (ServiceError, OSError):
            catalogue = {}  # unreachable service: submit will report it
        key = network_param_key(catalogue.get(args.scenario))
        shorthands[key] = args.network if key == "network" else [args.network]
    if args.density_profile is not None:
        shorthands["density_profile"] = args.density_profile
    for key, value in shorthands.items():
        if key in params:
            # Contradictory input must fail loudly, not silently pick one.
            flag = "--network" if key in ("network", "networks") else f"--{key.replace('_', '-')}"
            print(
                f"{flag} conflicts with --param {key}=...; "
                "pass one or the other",
                file=sys.stderr,
            )
            return 2
        params[key] = value
    try:
        job_id = client.submit(args.scenario, params, priority=args.priority)
        if args.no_wait:
            print(job_id)
            return 0
        client.wait(job_id, timeout=args.timeout)
        print(json.dumps(client.result(job_id), indent=2, sort_keys=True))
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: not an error, but
        # stdout must be detached before the interpreter's exit flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except JobFailedError as error:
        print(f"job failed ({error.state}): {error}", file=sys.stderr)
        if error.detail:
            print(error.detail, file=sys.stderr)
        return 1
    except (ServiceError, TimeoutError) as error:
        print(str(error), file=sys.stderr)
        return 1
    return 0


def build_stats_parser() -> argparse.ArgumentParser:
    """The argument parser behind ``repro stats``."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Show a running repro service's live counters.",
    )
    parser.add_argument(
        "--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help=f"service base URL (default: http://127.0.0.1:{DEFAULT_PORT})",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="refresh continuously until interrupted",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period with --watch (default: 2)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the raw Prometheus /metrics text instead of the summary",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw /stats JSON instead of the summary",
    )
    return parser


def _stats_summary(stats: Dict[str, Any]) -> str:
    """One human-readable block from a ``/stats`` document."""
    engine = stats.get("engine", {})
    queue = stats.get("queue", {})
    workers = stats.get("workers", {})
    service = stats.get("service", {})
    jobs = queue.get("jobs", {})
    lines = [
        f"mode:      {service.get('mode', '?')} x {workers.get('num_workers', '?')} workers"
        f" ({workers.get('busy_workers', 0)} busy)",
        f"queue:     depth {queue.get('depth', 0)}"
        f" | done {jobs.get('done', 0)} | failed {jobs.get('failed', 0)}"
        f" | cancelled {jobs.get('cancelled', 0)}",
        f"cache:     hit rate {engine.get('hit_rate', 0.0):.1%}"
        f" ({engine.get('hits', 0)} hits / {engine.get('misses', 0)} misses)",
        f"dedupe:    fast-path {service.get('fast_path_hits', 0)}"
        f" | coalesced {service.get('coalesced', 0)}"
        f" | rejected {service.get('backpressure_rejections', 0)}",
        f"retries:   {workers.get('retries', 0)}"
        f" | journal errors {queue.get('journal_errors', 0)}",
    ]
    return "\n".join(lines)


def stats_main(argv: Optional[Sequence[str]] = None) -> int:
    """Print (or watch) a running service's counters (``repro stats``)."""
    import time

    args = build_stats_parser().parse_args(argv)
    client = ServiceClient(args.url)

    def render() -> str:
        if args.metrics:
            return client.metrics_text().rstrip("\n")
        stats = client.stats()
        if args.json:
            return json.dumps(stats, indent=2, sort_keys=True)
        return _stats_summary(stats)

    try:
        if not args.watch:
            print(render())
            return 0
        while True:
            block = render()
            # Clear + home so the watch view repaints in place.
            sys.stdout.write("\x1b[2J\x1b[H" if sys.stdout.isatty() else "")
            print(f"{args.url} @ {time.strftime('%H:%M:%S')}")
            print(block, flush=True)
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 1
