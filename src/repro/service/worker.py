"""The worker tiers that drain the job queue into the simulation engine.

Two interchangeable pools, one claiming surface:

* :class:`WorkerPool` — daemon *threads* over **one warm engine and one
  shared cache**.  A scenario runner spends its time inside numpy kernels
  (which release the GIL) or the engine's own process pool, so threads are
  the cheap default — but concurrent Python-level work still serializes on
  the interpreter.
* :class:`ProcessWorkerPool` — N forked *engine processes*, each with its
  own :class:`~repro.engine.SimulationEngine` sharing the content-addressed
  on-disk cache.  Every worker process is paired with a parent-side manager
  thread that claims a job, ships ``(job id, scenario, params)`` over a
  pipe, and records the returned payload.  The manager doubles as the
  worker's supervisor: a process that dies mid-job (crash, OOM kill) is
  detected, replaced with a fresh fork, and the job re-queued **once** —
  a second death marks it failed.  Journalled job records make every one
  of these transitions resumable across service restarts.

Both pools record outcomes through a *sink* — any object with the queue's
``mark_done`` / ``mark_failed`` surface.  The queue itself is the default;
the service passes a :class:`~repro.service.coalesce.CoalescingSink` so one
finished simulation fans out to every coalesced duplicate.

Failure isolation holds in both tiers: a scenario exception marks the job
``failed`` (traceback preserved) and never takes a worker down, and a pool
shutdown never strands a claimed job in ``running``.
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs
from repro.engine import SimulationEngine
from repro.obs import Span
from repro.service.jobs import DONE, FAILED, Job, JobQueue
from repro.service.scenarios import ScenarioError, ScenarioRegistry

# How many times a job may be claimed before a worker death marks it failed
# instead of re-queueing it: the retry-once policy.
MAX_ATTEMPTS = 2

_log = obs.get_logger("repro.service.worker")

_WORKER_RESTARTS = obs.counter(
    "repro_worker_restarts_total",
    "Worker processes replaced after dying (per worker slot).",
    ("worker",),
)


class WorkerPool:
    """``num_workers`` daemon threads draining ``queue`` into ``engine``.

    ``sink`` is where outcomes are recorded (defaults to the queue itself);
    see the module docstring.
    """

    def __init__(
        self,
        queue: JobQueue,
        registry: ScenarioRegistry,
        engine: SimulationEngine,
        num_workers: int = 2,
        poll_interval: float = 0.1,
        sink: Any = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.queue = queue
        self.registry = registry
        self.engine = engine
        self.num_workers = num_workers
        self.poll_interval = poll_interval
        self.sink = sink if sink is not None else queue
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._busy = 0
        self._completed = 0
        self._failed = 0
        # thread name -> job id currently executing there, so stop() can
        # settle jobs whose workers outlive the join timeout.
        self._current: Dict[str, str] = {}

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (refuses to stack onto live stragglers)."""
        if self._threads:
            raise RuntimeError("worker pool already started")
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._run, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        """Ask every worker to exit and join them.

        Queued jobs stay queued (and journalled).  A worker that outlives
        the join timeout is still blocked inside a simulation: its claimed
        job is marked **failed** right here — never left stuck in
        ``running`` — and the terminal guard on the queue turns the
        straggler's eventual completion into a no-op.  The straggler thread
        stays tracked, so a subsequent ``start()`` refuses to stack a
        second pool onto the same queue until it has actually exited.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        survivors = [thread for thread in self._threads if thread.is_alive()]
        with self._lock:
            stuck = [
                self._current[thread.name]
                for thread in survivors
                if thread.name in self._current
            ]
        for job_id in stuck:
            self.sink.mark_failed(
                job_id,
                "worker pool stopped while the job was still running; "
                "the job was marked failed rather than left in 'running'",
            )
        self._threads = survivors

    # -- the worker loop --------------------------------------------------------

    def _run(self) -> None:
        name = threading.current_thread().name
        while not self._stop.is_set():
            job = self.queue.claim(timeout=self.poll_interval)
            if job is None:
                continue
            with self._lock:
                self._busy += 1
                self._current[name] = job.id
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._busy -= 1
                    self._current.pop(name, None)

    def _execute(self, job: Job) -> None:
        # Install the job's trace id for this thread's dynamic extent so
        # engine/cache spans land on the job's timeline.
        token = obs.set_current_trace(job.trace_id) if job.trace_id else None
        try:
            scenario = self.registry.get(job.scenario)
            result = scenario.run(self.engine, job.params)
        except ScenarioError as error:
            settled = self.sink.mark_failed(job.id, str(error))
            outcome = settled.state
        except Exception:
            settled = self.sink.mark_failed(job.id, traceback.format_exc(limit=20))
            outcome = settled.state
        else:
            settled = self.sink.mark_done(job.id, result)
            outcome = settled.state
        finally:
            if token is not None:
                obs.reset_current_trace(token)
        # Count what actually got recorded: a straggler whose job was
        # already settled (shutdown, retry elsewhere) changed nothing.
        with self._lock:
            if outcome == DONE:
                self._completed += 1
            elif outcome == FAILED:
                self._failed += 1

    # -- introspection ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Worker counts and utilization (busy workers / pool size)."""
        with self._lock:
            busy = self._busy
            completed = self._completed
            failed = self._failed
        return {
            "mode": "thread",
            "num_workers": self.num_workers,
            "busy_workers": busy,
            "utilization": busy / self.num_workers,
            "jobs_completed": completed,
            "jobs_failed": failed,
            "retries": 0,
            "workers": [
                {"index": index, "alive": thread.is_alive()}
                for index, thread in enumerate(self._threads)
            ],
        }


# -- the process tier -----------------------------------------------------------


def _worker_process_main(
    connection, registry: ScenarioRegistry, engine_config: Dict[str, Any]
) -> None:
    """One engine worker process: recv (job, scenario, params, trace), reply.

    Builds its own :class:`SimulationEngine` from ``engine_config`` — every
    worker shares the on-disk cache root but owns its memo table — and
    serves tasks until the sentinel ``None`` (or a closed pipe) arrives.
    Replies are ``(job_id, ok, payload-or-error-text, extras)``; a scenario
    exception is a reply, never a process death.

    ``extras`` carries the job's observability freight back to the parent:
    ``spans`` (the trace's recorded spans — ``time.monotonic()`` is
    system-wide on Linux, so they are directly comparable with the
    parent's) and ``metrics`` (the registry increments this job produced,
    as a snapshot/delta so counters inherited across the fork never double
    count).
    """
    # Spans inherited across the fork belong to the parent; drop them so a
    # respawned worker never re-ships another job's timeline.
    obs.trace_store().clear()
    engine = SimulationEngine(**engine_config)
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError) as error:
            # The parent closed the pipe (shutdown or manager death): the
            # child's only remaining duty is to exit.
            _log.debug("worker_pipe_closed", error=str(error))
            break
        if message is None:
            break
        job_id, scenario_name, params, trace_id = message
        baseline = obs.registry().snapshot() if obs.enabled() else None
        token = obs.set_current_trace(trace_id) if trace_id else None
        try:
            scenario = registry.get(scenario_name)
            result = scenario.run(engine, params)
        except ScenarioError as error:
            ok, payload = False, str(error)
        except Exception:
            ok, payload = False, traceback.format_exc(limit=20)
        else:
            ok, payload = True, result
        finally:
            if token is not None:
                obs.reset_current_trace(token)
        extras: Dict[str, Any] = {}
        if baseline is not None:
            extras["metrics"] = obs.registry().deltas_since(baseline)
        if trace_id:
            extras["spans"] = [
                span.to_dict() for span in obs.trace_store().drain(trace_id)
            ]
        try:
            connection.send((job_id, ok, payload, extras))
        except Exception:
            # The payload would not pickle (a scenario returning live
            # objects): degrade to a failed job, not a dead worker.
            connection.send(
                (job_id, False, traceback.format_exc(limit=20), extras)
            )


class _WorkerDied(RuntimeError):
    """Internal: the worker process exited while a job was in flight."""


@dataclass
class _WorkerSlot:
    """Parent-side state of one worker process."""

    index: int
    process: Any = None
    connection: Any = None
    current_job: Optional[str] = None
    completed: int = 0
    failed: int = 0
    restarts: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class ProcessWorkerPool:
    """``num_workers`` forked engine processes draining ``queue``.

    Each worker is a ``multiprocessing`` process running
    :func:`_worker_process_main` with its own engine built from
    ``engine_config`` (all workers share the on-disk result cache), fed
    over a dedicated pipe by a parent-side manager thread.  The manager
    supervises its worker: liveness is checked every ``poll_interval``
    while idle and while awaiting a result, a dead worker is replaced with
    a fresh fork, and the in-flight job is re-queued once
    (:data:`MAX_ATTEMPTS`) before being marked failed.

    The pool uses the ``fork`` start method (Linux): the registry — custom
    scenarios, closures and all — crosses into the children by inheritance,
    no pickling involved.  On platforms without ``fork`` the default
    context applies and the registry must be picklable.
    """

    def __init__(
        self,
        queue: JobQueue,
        registry: ScenarioRegistry,
        engine_config: Optional[Dict[str, Any]] = None,
        num_workers: int = 2,
        poll_interval: float = 0.1,
        sink: Any = None,
        max_attempts: int = MAX_ATTEMPTS,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.queue = queue
        self.registry = registry
        self.engine_config = dict(engine_config or {"cache_dir": False})
        self.num_workers = num_workers
        self.poll_interval = poll_interval
        self.sink = sink if sink is not None else queue
        self.max_attempts = max_attempts
        if sys.platform == "linux" and (
            "fork" in multiprocessing.get_all_start_methods()
        ):
            self._context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-Linux fallback
            self._context = multiprocessing.get_context()
        self._slots: List[_WorkerSlot] = []
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._busy = 0
        self._completed = 0
        self._failed = 0
        self._retries = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Fork the worker processes and start their manager threads."""
        if self._threads:
            raise RuntimeError("worker pool already started")
        self._stop.clear()
        self._slots = [_WorkerSlot(index) for index in range(self.num_workers)]
        for slot in self._slots:
            self._spawn(slot)
        for slot in self._slots:
            thread = threading.Thread(
                target=self._manage,
                args=(slot,),
                name=f"repro-worker-manager-{slot.index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _spawn(self, slot: _WorkerSlot) -> None:
        """(Re)fork the worker process behind ``slot`` with a fresh pipe."""
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_process_main,
            args=(child_end, self.registry, self.engine_config),
            name=f"repro-engine-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        child_end.close()
        slot.process = process
        slot.connection = parent_end

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the managers, re-queue in-flight jobs, kill the workers.

        A job a worker was executing goes **back to the queue** (journalled)
        rather than being stranded in ``running`` — the worker process is
        about to be terminated, so unlike the thread pool there is no
        straggler that could double-execute it; a restarted service resumes
        it from the journal.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        # Managers re-queue their in-flight job on the way out; any manager
        # that outlived the join timeout gets its job re-queued here.
        for slot in self._slots:
            with slot.lock:
                stuck, slot.current_job = slot.current_job, None
            if stuck is not None:
                self.queue.requeue(stuck)
        for slot in self._slots:
            process, connection = slot.process, slot.connection
            slot.process = slot.connection = None
            if connection is not None:
                try:
                    if process is not None and process.is_alive():
                        connection.send(None)
                except (BrokenPipeError, OSError) as error:
                    # The child already died; terminate() below cleans up.
                    _log.debug("worker_stop_send_failed", error=str(error))
                connection.close()
            if process is not None:
                process.join(timeout=0.5)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=timeout)
        self._threads = [thread for thread in self._threads if thread.is_alive()]
        self._slots = []

    # -- the manager loop -------------------------------------------------------

    def _manage(self, slot: _WorkerSlot) -> None:
        while not self._stop.is_set():
            if slot.process is None or not slot.process.is_alive():
                # The worker died while idle — replace it before claiming.
                self._respawn(slot)
            job = self.queue.claim(timeout=self.poll_interval)
            if job is None:
                continue
            with self._lock:
                self._busy += 1
            with slot.lock:
                slot.current_job = job.id
            try:
                self._execute(slot, job)
            finally:
                with slot.lock:
                    slot.current_job = None
                with self._lock:
                    self._busy -= 1

    def _respawn(self, slot: _WorkerSlot) -> None:
        if slot.connection is not None:
            try:
                slot.connection.close()
            except OSError as error:
                # A half-dead pipe refusing to close is already as closed
                # as it is going to get.
                _log.debug("worker_pipe_close_failed", error=str(error))
        slot.restarts += 1
        _WORKER_RESTARTS.inc(worker=str(slot.index))
        _log.warning(
            "worker_respawned",
            worker=slot.index,
            restarts=slot.restarts,
            exit_code=getattr(slot.process, "exitcode", None),
        )
        self._spawn(slot)

    def _execute(self, slot: _WorkerSlot, job: Job) -> None:
        try:
            slot.connection.send(
                (job.id, job.scenario, dict(job.params), job.trace_id)
            )
            reply = self._await_reply(slot)
        except (_WorkerDied, BrokenPipeError, EOFError, OSError):
            self._handle_death(slot, job)
            return
        if reply is None:  # shutdown requested while the job was in flight
            self.queue.requeue(job.id)
            with slot.lock:
                slot.current_job = None
            return
        _, ok, payload, extras = reply
        self._absorb_extras(extras)
        if ok:
            settled = self.sink.mark_done(job.id, payload)
        else:
            settled = self.sink.mark_failed(job.id, payload)
        with self._lock:
            if settled.state == DONE:
                self._completed += 1
                slot.completed += 1
            elif settled.state == FAILED:
                self._failed += 1
                slot.failed += 1

    def _absorb_extras(self, extras: Optional[Dict[str, Any]]) -> None:
        """Fold a worker reply's observability freight into this process.

        Spans recorded inside the worker land in the parent's trace store
        (same trace ids, comparable monotonic clocks) and metric deltas are
        merged into the parent's registry — so ``/metrics`` and
        ``/jobs/<id>/trace`` account for work done in forked children.
        """
        if not extras:
            return
        spans = extras.get("spans") or ()
        if spans:
            obs.trace_store().extend(Span.from_dict(record) for record in spans)
        deltas = extras.get("metrics") or ()
        if deltas:
            obs.registry().merge_deltas(deltas)

    def _await_reply(self, slot: _WorkerSlot):
        """Poll the worker's pipe; ``None`` on shutdown, raises on death."""
        while True:
            if slot.connection.poll(self.poll_interval):
                return slot.connection.recv()  # EOFError -> caller
            if not slot.process.is_alive():
                # Drain a result that raced the exit before declaring death.
                if slot.connection.poll(0):
                    return slot.connection.recv()
                raise _WorkerDied(f"worker {slot.index} exited mid-job")
            if self._stop.is_set():
                return None

    def _handle_death(self, slot: _WorkerSlot, job: Job) -> None:
        """A worker died mid-job: replace it, retry the job once, then fail."""
        if slot.process is not None:
            # Reap the corpse so its exit code is readable for the error text.
            slot.process.join(timeout=1.0)
        exit_code = getattr(slot.process, "exitcode", None)
        _log.warning(
            "worker_died_mid_job",
            worker=slot.index,
            job_id=job.id,
            exit_code=exit_code,
            attempts=job.attempts,
        )
        self._respawn(slot)
        if job.attempts < self.max_attempts:
            with self._lock:
                self._retries += 1
            self.queue.requeue(job.id)
        else:
            self.sink.mark_failed(
                job.id,
                f"worker process died (exit code {exit_code}) and the job "
                f"already used its {job.attempts} attempt(s); giving up",
            )
            with self._lock:
                self._failed += 1
                slot.failed += 1

    # -- introspection ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Pool utilization, outcome counters, and per-worker liveness."""
        with self._lock:
            busy = self._busy
            completed = self._completed
            failed = self._failed
            retries = self._retries
        workers = []
        for slot in self._slots:
            process = slot.process
            with slot.lock:
                current = slot.current_job
            workers.append(
                {
                    "index": slot.index,
                    "pid": getattr(process, "pid", None),
                    "alive": bool(process is not None and process.is_alive()),
                    "jobs_completed": slot.completed,
                    "jobs_failed": slot.failed,
                    "restarts": slot.restarts,
                    "current_job": current,
                }
            )
        return {
            "mode": "process",
            "num_workers": self.num_workers,
            "busy_workers": busy,
            "utilization": busy / self.num_workers,
            "jobs_completed": completed,
            "jobs_failed": failed,
            "retries": retries,
            "workers": workers,
        }


def engine_config_of(engine: SimulationEngine) -> Dict[str, Any]:
    """The constructor kwargs that rebuild ``engine`` inside a worker process.

    Worker engines share the parent's on-disk cache root (the whole point
    of the process tier) but own their in-memory memo tables.  ``parallel``
    is deliberately dropped: nesting an engine process pool inside each
    worker process would oversubscribe the machine.
    """
    return {
        "cache_dir": (
            engine.disk_cache.root if engine.disk_cache is not None else False
        ),
        "cache_max_entries": (
            engine.disk_cache.max_entries if engine.disk_cache is not None else None
        ),
        "memory_max_entries": engine.memory_max_entries,
        "parallel": None,
    }
