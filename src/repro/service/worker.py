"""The worker pool that drains the job queue into the simulation engine.

Workers are daemon *threads*, not processes: a scenario runner spends its
time inside numpy kernels (which release the GIL) or inside the engine's
own process pool, so threads multiplex jobs over **one warm engine and one
shared cache** — the whole point of the service.  A separate process per
job would fragment the in-memory memo table and re-pay engine warm-up on
every request.

Each worker loops: claim the highest-priority queued job, look up its
scenario, run it against the shared engine, and record the result (or the
failure — a scenario exception marks the job ``failed`` and never takes the
worker down).  The pool tracks how many workers are busy and how many jobs
each outcome saw, which is what the service's ``/stats`` endpoint reports
as utilization.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Dict, List, Optional

from repro.engine import SimulationEngine
from repro.service.jobs import Job, JobQueue
from repro.service.scenarios import ScenarioError, ScenarioRegistry


class WorkerPool:
    """``num_workers`` daemon threads draining ``queue`` into ``engine``."""

    def __init__(
        self,
        queue: JobQueue,
        registry: ScenarioRegistry,
        engine: SimulationEngine,
        num_workers: int = 2,
        poll_interval: float = 0.1,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.queue = queue
        self.registry = registry
        self.engine = engine
        self.num_workers = num_workers
        self.poll_interval = poll_interval
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._busy = 0
        self._completed = 0
        self._failed = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("worker pool already started")
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._run, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        """Ask every worker to exit and join them.

        Queued jobs stay queued (and journalled); the job a worker is
        executing runs to completion first.  A worker that outlives the
        join timeout (mid-simulation) stays tracked, so a subsequent
        ``start()`` refuses to stack a second pool onto the same queue
        until the stragglers have actually exited.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = [thread for thread in self._threads if thread.is_alive()]

    # -- the worker loop --------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim(timeout=self.poll_interval)
            if job is None:
                continue
            with self._lock:
                self._busy += 1
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._busy -= 1

    def _execute(self, job: Job) -> None:
        try:
            scenario = self.registry.get(job.scenario)
            result = scenario.run(self.engine, job.params)
        except ScenarioError as error:
            self.queue.mark_failed(job.id, str(error))
            with self._lock:
                self._failed += 1
        except Exception:
            self.queue.mark_failed(job.id, traceback.format_exc(limit=20))
            with self._lock:
                self._failed += 1
        else:
            self.queue.mark_done(job.id, result)
            with self._lock:
                self._completed += 1

    # -- introspection ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Worker counts and utilization (busy workers / pool size)."""
        with self._lock:
            busy = self._busy
            completed = self._completed
            failed = self._failed
        return {
            "num_workers": self.num_workers,
            "busy_workers": busy,
            "utilization": busy / self.num_workers,
            "jobs_completed": completed,
            "jobs_failed": failed,
        }
