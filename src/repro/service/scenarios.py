"""The scenario registry: named, validated, reusable request shapes.

A *scenario* is a named unit of work a client can submit over the wire —
"simulate this network", "re-run the Figure 8 study", "sweep the DSE
candidates" — with a declared parameter schema.  The registry validates and
normalises a request's parameters *before* the job is queued, so malformed
requests fail at submission time with a clear message instead of inside a
worker thread.

Every scenario runner is a pure function of ``(engine, params)`` returning
a JSON-serializable payload (built by :mod:`repro.analysis.serialization`),
and every built-in scenario routes through the shared
:class:`~repro.engine.SimulationEngine` — so repeated submissions of the
same scenario are served from the engine's content-addressed cache.

:func:`default_registry` registers the repo's catalogue: single-layer and
full-network simulation, the DSE sweep, the paper-figure regenerations
(Figure 8, Figure 10, Table II) adapted from :mod:`repro.experiments`, and
the cross-architecture ``compare`` sweep over the architecture registry
(:mod:`repro.arch`).

Network parameters accept any name the workload registry
(:mod:`repro.workloads`) knows, with choices resolved against the *live*
registry at validation time — a workload (or density profile, or
architecture) registered after the service booted is accepted immediately
rather than rejected by a schema frozen at boot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.serialization import (
    comparison_payload,
    design_points_payload,
    engine_run_payload,
    simulation_payload,
    to_jsonable,
)
from repro.engine import SimulationEngine
from repro.engine.workloads import WorkloadHandle
from repro.nn.networks import available_networks, get_network
from repro.scnn.config import SCNN_CONFIG
from repro.timeloop.dse import default_candidates


class ScenarioError(ValueError):
    """A request names an unknown scenario or carries invalid parameters."""


_REQUIRED = object()  # sentinel: parameter has no default, caller must supply


@dataclass(frozen=True)
class Parameter:
    """One declared scenario parameter.

    ``choices`` constrains string values to a closed set.  It accepts either
    a tuple (frozen at registration) or a *callable* returning the current
    set — callables are re-evaluated on every :meth:`coerce` and
    :meth:`describe`, so a parameter backed by a live registry (workload
    names, architecture names) accepts entries registered after the scenario
    registry was built instead of rejecting them with a stale "must be one
    of" error.
    """

    name: str
    type: str  # "int" | "float" | "bool" | "str" | "list[str]"
    description: str = ""
    default: Any = _REQUIRED
    choices: Union[None, Tuple[str, ...], Callable[[], Sequence[str]]] = None

    @property
    def required(self) -> bool:
        return self.default is _REQUIRED

    def resolved_choices(self) -> Optional[Tuple[str, ...]]:
        """The accepted values *right now* (callables hit the live source)."""
        if self.choices is None:
            return None
        choices = self.choices() if callable(self.choices) else self.choices
        return tuple(choices)

    def describe(self) -> Dict[str, Any]:
        """JSON-able schema entry for this parameter (``GET /scenarios``)."""
        info: Dict[str, Any] = {
            "name": self.name,
            "type": self.type,
            "description": self.description,
            "required": self.required,
        }
        if not self.required:
            info["default"] = self.default
        choices = self.resolved_choices()
        if choices is not None:
            info["choices"] = list(choices)
        return info

    def coerce(self, value: Any) -> Any:
        """Validate ``value`` against this parameter's type and choices."""
        if self.type == "int":
            # JSON encoders in several client stacks float-ize every number,
            # so {"priority": 4.0} must mean the integer 4.
            if isinstance(value, bool):
                raise ScenarioError(f"parameter {self.name!r} must be an integer")
            if isinstance(value, float):
                if not value.is_integer():
                    raise ScenarioError(
                        f"parameter {self.name!r} must be an integer"
                    )
                value = int(value)
            elif not isinstance(value, int):
                raise ScenarioError(f"parameter {self.name!r} must be an integer")
        elif self.type == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ScenarioError(f"parameter {self.name!r} must be a number")
            value = float(value)
        elif self.type == "bool":
            if not isinstance(value, bool):
                raise ScenarioError(f"parameter {self.name!r} must be a boolean")
        elif self.type == "str":
            if not isinstance(value, str):
                raise ScenarioError(f"parameter {self.name!r} must be a string")
        elif self.type == "list[str]":
            if isinstance(value, str):
                # CLI convenience: "alexnet,googlenet" means a two-item list.
                value = [part.strip() for part in value.split(",") if part.strip()]
            if not isinstance(value, (list, tuple)) or not all(
                isinstance(item, str) for item in value
            ):
                raise ScenarioError(
                    f"parameter {self.name!r} must be a list of strings"
                )
            value = list(value)
        else:  # pragma: no cover - registration-time programming error
            raise ScenarioError(f"parameter {self.name!r} has unknown type {self.type!r}")
        choices = self.resolved_choices()
        if choices is not None:
            # Match case-insensitively and substitute the canonical spelling,
            # mirroring how the registries themselves resolve names — a
            # client sending "AlexNet" means the registered "alexnet".
            canonical = {choice.strip().lower(): choice for choice in choices}
            values = value if self.type == "list[str]" else [value]
            normalised = []
            for item in values:
                if item in choices:
                    normalised.append(item)
                    continue
                match = canonical.get(item.strip().lower())
                if match is None:
                    raise ScenarioError(
                        f"parameter {self.name!r} must be one of "
                        f"{', '.join(choices)}; got {item!r}"
                    )
                normalised.append(match)
            value = normalised if self.type == "list[str]" else normalised[0]
        return value


@dataclass(frozen=True)
class Scenario:
    """A named request shape: parameter schema plus runner."""

    name: str
    description: str
    runner: Callable[[SimulationEngine, Dict[str, Any]], Any]
    parameters: Tuple[Parameter, ...] = ()

    def validate(self, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Normalised parameters: defaults applied, types/choices enforced."""
        params = dict(params or {})
        known = {parameter.name for parameter in self.parameters}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r} does not accept parameter(s) "
                f"{', '.join(map(repr, unknown))}; known: "
                f"{', '.join(sorted(known)) or '(none)'}"
            )
        normalised: Dict[str, Any] = {}
        for parameter in self.parameters:
            if parameter.name in params:
                normalised[parameter.name] = parameter.coerce(params[parameter.name])
            elif parameter.required:
                raise ScenarioError(
                    f"scenario {self.name!r} requires parameter {parameter.name!r}"
                )
            else:
                normalised[parameter.name] = parameter.default
        return normalised

    def run(self, engine: SimulationEngine, params: Dict[str, Any]) -> Any:
        """Validate ``params`` and invoke the runner on ``engine``."""
        return self.runner(engine, self.validate(params))

    def describe(self) -> Dict[str, Any]:
        """JSON-able catalogue entry: name, description, parameter schema."""
        return {
            "name": self.name,
            "description": self.description,
            "parameters": [parameter.describe() for parameter in self.parameters],
        }


class ScenarioRegistry:
    """Name → :class:`Scenario` mapping with a JSON-able catalogue view."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Add ``scenario`` under its name; duplicate names are an error."""
        if scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} is already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """The scenario registered as ``name``; :class:`ScenarioError` if unknown."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        """Registered scenario names, sorted."""
        return sorted(self._scenarios)

    def describe(self) -> List[Dict[str, Any]]:
        """The full catalogue as JSON-able entries, sorted by name."""
        return [self._scenarios[name].describe() for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)


# -- built-in scenario runners --------------------------------------------------


def _live_network_choices() -> Tuple[str, ...]:
    """Workload names from the *live* registry (resolved at validation time).

    Passed as a callable ``choices`` so a workload registered after
    :func:`default_registry` built the scenario catalogue is accepted
    instead of tripping a stale "must be one of" error.
    """
    return tuple(available_networks())


def _network_parameter(description: str) -> Parameter:
    return Parameter(
        "network",
        "str",
        description,
        default="alexnet",
        choices=_live_network_choices,
    )


def _live_profile_choices() -> Tuple[str, ...]:
    """Density-profile names from the live registry, plus the empty default.

    Resolved at validation time like :func:`_live_network_choices`, so a
    typo'd profile is rejected with an immediate 400 instead of failing
    asynchronously inside a worker.
    """
    from repro.workloads.profiles import available_profiles

    return ("",) + tuple(available_profiles())


def _density_profile_parameter() -> Parameter:
    return Parameter(
        "density_profile",
        "str",
        "density profile overriding the workload's own (see "
        "`repro workloads --profiles`); empty = the workload's profile",
        default="",
        choices=_live_profile_choices,
    )


def _resolve_profile(profile_name: str):
    """The named density profile, or ``None`` for the empty name.

    Like the ``compare`` scenario's architecture check, the profile is
    resolved against the live profile registry here (not frozen into the
    schema), with the catalogue-listing error surfacing as a
    :class:`ScenarioError` before any simulation work starts.
    """
    if not profile_name:
        return None
    from repro.workloads.profiles import get_profile

    try:
        return get_profile(profile_name)
    except KeyError as error:
        raise ScenarioError(error.args[0]) from None


def _run_single_layer(engine: SimulationEngine, params: Dict[str, Any]) -> Any:
    from repro.workloads.registry import resolve_workload

    network, sparsity = resolve_workload(params["network"])
    names = [spec.name for spec in network.layers]
    try:
        index = names.index(params["layer"])
    except ValueError:
        raise ScenarioError(
            f"network {network.name!r} has no layer {params['layer']!r}; "
            f"layers: {', '.join(names)}"
        ) from None
    spec = network.layers[index]
    handle = WorkloadHandle.build(
        network.name, params["seed"], index, spec, sparsity[spec.name]
    )
    run = engine.run([handle], [SCNN_CONFIG])
    payload = engine_run_payload(run)
    payload["network"] = network.name
    payload["layer"] = spec.name
    return payload


def _run_network(engine: SimulationEngine, params: Dict[str, Any]) -> Any:
    profile = _resolve_profile(params["density_profile"])
    if profile is None:
        # The engine resolves the name itself (the spec's profile applies).
        simulation = engine.run_network(params["network"], seed=params["seed"])
    else:
        network = get_network(params["network"])
        simulation = engine.run_network(
            network, seed=params["seed"], sparsity=profile.table(network)
        )
    return simulation_payload(simulation)


def _run_dse_sweep(engine: SimulationEngine, params: Dict[str, Any]) -> Any:
    candidates = list(default_candidates())
    if params["include_baseline"]:
        candidates.insert(0, SCNN_CONFIG)
    points = engine.sweep(candidates, params["network"])
    payload = design_points_payload(points)
    payload["network"] = params["network"]
    return payload


def _run_fig8(engine: SimulationEngine, params: Dict[str, Any]) -> Any:
    from repro.experiments import fig8_performance

    reports = fig8_performance.run(
        networks=tuple(params["networks"]), seed=params["seed"], engine=engine
    )
    return {
        "reports": {name: to_jsonable(report) for name, report in reports.items()},
        "average_speedup": fig8_performance.average_speedup(reports),
    }


def _run_fig10(engine: SimulationEngine, params: Dict[str, Any]) -> Any:
    from repro.experiments import fig10_energy

    reports = fig10_energy.run(
        networks=tuple(params["networks"]), seed=params["seed"], engine=engine
    )
    return {
        "reports": {name: to_jsonable(report) for name, report in reports.items()},
        "average_improvements": fig10_energy.average_improvements(reports),
    }


def _run_table2(engine: SimulationEngine, params: Dict[str, Any]) -> Any:
    from repro.experiments import table2_design_params

    return table2_design_params.payload()


def _run_compare(engine: SimulationEngine, params: Dict[str, Any]) -> Any:
    from repro.arch.compare import compare_networks
    from repro.arch.registry import get_architecture

    # Architecture names are validated against the *live* registry here (not
    # frozen into the parameter schema), so names registered after the
    # service booted are accepted; unknown names fail with the registry's
    # catalogue-listing message before any simulation work starts.
    try:
        for name in params["architectures"]:
            get_architecture(name)
    except KeyError as error:
        raise ScenarioError(error.args[0]) from None
    _resolve_profile(params["density_profile"])
    try:
        comparisons = compare_networks(
            params["networks"],
            params["architectures"],
            seed=params["seed"],
            density_profile=params["density_profile"] or None,
            engine=engine,
        )
    except ValueError as error:
        # Display-name collision between distinct workloads: surface it as a
        # clean scenario failure rather than an anonymous worker traceback.
        raise ScenarioError(error.args[0]) from None
    return {
        "comparisons": {
            name: comparison_payload(comparison)
            for name, comparison in comparisons.items()
        }
    }


def default_registry() -> ScenarioRegistry:
    """The repo's scenario catalogue, freshly constructed."""
    seed = Parameter("seed", "int", "workload generation seed", default=0)
    # The default stays the paper's evaluated trio; the *accepted* names are
    # resolved against the live workload registry at validation time, so a
    # workload registered after this scenario catalogue was built (or after
    # the service booted) is accepted rather than rejected by a frozen
    # choices tuple.
    networks = Parameter(
        "networks",
        "list[str]",
        "workloads to evaluate (any registered workload name; see "
        "`repro workloads --list`)",
        default=["alexnet", "googlenet", "vggnet"],
        choices=_live_network_choices,
    )
    registry = ScenarioRegistry()
    registry.register(
        Scenario(
            "layer",
            "Cycle-model evaluation of one layer on the SCNN configuration.",
            _run_single_layer,
            (
                _network_parameter("network the layer belongs to"),
                Parameter("layer", "str", "layer name, e.g. conv1"),
                seed,
            ),
        )
    )
    registry.register(
        Scenario(
            "network",
            "Full network simulation (SCNN + DCNN + oracle + energy).",
            _run_network,
            (
                _network_parameter("registered workload to simulate"),
                seed,
                _density_profile_parameter(),
            ),
        )
    )
    registry.register(
        Scenario(
            "dse_sweep",
            "Design-space sweep over the paper's candidate configurations, "
            "with the Pareto frontier.",
            _run_dse_sweep,
            (
                _network_parameter("network the candidates are evaluated on"),
                Parameter(
                    "include_baseline",
                    "bool",
                    "include the paper's SCNN design point as candidate 0",
                    default=True,
                ),
            ),
        )
    )
    registry.register(
        Scenario(
            "fig8",
            "Regenerate Figure 8: per-layer and network speedup over DCNN.",
            _run_fig8,
            (networks, seed),
        )
    )
    registry.register(
        Scenario(
            "fig10",
            "Regenerate Figure 10: energy relative to DCNN and DCNN-opt.",
            _run_fig10,
            (networks, seed),
        )
    )
    registry.register(
        Scenario(
            "table2",
            "Regenerate Table II: the SCNN design parameters vs the paper.",
            _run_table2,
        )
    )
    registry.register(
        Scenario(
            "compare",
            "Cross-architecture comparison sweep: speedup and energy of any "
            "registered architectures relative to the DCNN baseline.",
            _run_compare,
            (
                networks,
                Parameter(
                    "architectures",
                    "list[str]",
                    "registered architectures to compare (checked against "
                    "the live registry at run time; see "
                    "`repro compare --list`)",
                    default=["DCNN", "DCNN-opt", "SCNN"],
                ),
                seed,
                _density_profile_parameter(),
            ),
        )
    )
    return registry
