"""The client SDK: submit scenarios and collect results over HTTP.

:class:`ServiceClient` is a thin, dependency-free (``urllib``) wrapper over
the service API — the usual flow is three calls::

    client = ServiceClient("http://127.0.0.1:8000")
    job_id = client.submit("network", {"network": "alexnet"})
    payload = client.result(client.wait(job_id)["id"])

or one: ``client.run("network", {"network": "alexnet"})``.  Failures keep
their server-side detail: a job that raised inside a worker surfaces as
:class:`JobFailedError` carrying the traceback text, and any non-2xx
response raises :class:`ServiceError` with the server's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional


class ServiceError(RuntimeError):
    """A request the service rejected (or could not be reached at all)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class BackpressureError(ServiceError):
    """The service answered 429: its queue is full; retry after a delay."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message, status=429)
        self.retry_after = retry_after


class JobFailedError(ServiceError):
    """The job reached a terminal state other than ``done``."""

    def __init__(self, message: str, state: str, detail: Optional[str] = None) -> None:
        super().__init__(message)
        self.state = state
        self.detail = detail


class ServiceClient:
    """Talk to one simulation service instance.

    Args:
        base_url: e.g. ``http://127.0.0.1:8000`` (trailing slash optional).
        timeout: socket timeout per request, in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport --------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        accept_statuses: tuple = (),
    ) -> Dict[str, Any]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw)
            except ValueError:
                payload = {"error": raw or str(error)}
            if error.code in accept_statuses:
                return payload
            if error.code == 429:
                try:
                    retry_after = float(error.headers.get("Retry-After", 1.0))
                except (TypeError, ValueError):
                    retry_after = 1.0
                raise BackpressureError(
                    payload.get("error", str(error)), retry_after=retry_after
                ) from None
            raise ServiceError(
                payload.get("error", str(error)), status=error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach {self.base_url}: {error.reason}") from None

    # -- the API ----------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` liveness summary."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` counters (engine, queue, workers, service)."""
        return self._request("GET", "/stats")

    def metrics_text(self) -> str:
        """The raw ``GET /metrics`` body (Prometheus text format).

        Returned as text, not JSON — feed it to
        :func:`repro.obs.parse_prometheus_text` for a structured view.
        """
        request = urllib.request.Request(f"{self.base_url}/metrics", method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                f"GET /metrics failed: {error}", status=error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach {self.base_url}: {error.reason}"
            ) from None

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The job's span timeline (``GET /jobs/<id>/trace``)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def scenarios(self) -> List[Dict[str, Any]]:
        """The scenario catalogue with parameter schemas."""
        return self._request("GET", "/scenarios")["scenarios"]

    def submit(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        max_backpressure_wait: float = 30.0,
    ) -> str:
        """Submit one scenario invocation; returns the job id.

        A 429 (the service's queue is at its bound) is retried
        transparently, honouring the server's ``Retry-After`` header, for
        up to ``max_backpressure_wait`` seconds of accumulated waiting —
        then the final :class:`BackpressureError` propagates.  Pass ``0``
        to surface the first 429 immediately.
        """
        waited = 0.0
        while True:
            try:
                record = self._request(
                    "POST",
                    "/jobs",
                    body={
                        "scenario": scenario,
                        "params": params or {},
                        "priority": priority,
                    },
                )
            except BackpressureError as error:
                delay = max(0.05, float(error.retry_after))
                if waited + delay > max_backpressure_wait:
                    raise
                time.sleep(delay)
                waited += delay
                continue
            return record["id"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """The job's current record (state, timestamps, error)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job record the service retains, newest first."""
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued job; returns the (possibly unchanged) record."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout:.0f}s"
                )
            time.sleep(poll_interval)

    def result(self, job_id: str) -> Any:
        """The result payload of a finished job.

        Raises :class:`JobFailedError` when the job failed or was cancelled
        and :class:`ServiceError` when it is not finished yet.
        """
        payload = self._request("GET", f"/results/{job_id}", accept_statuses=(410,))
        if "result" in payload:
            return payload["result"]
        raise JobFailedError(
            payload.get("error", f"job {job_id} did not finish"),
            state=payload.get("state", "failed"),
            detail=payload.get("detail"),
        )

    def run(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        timeout: float = 300.0,
    ) -> Any:
        """``submit`` + ``wait`` + ``result`` in one call."""
        job_id = self.submit(scenario, params, priority=priority)
        self.wait(job_id, timeout=timeout)
        return self.result(job_id)
