"""The HTTP front end: simulation-as-a-service on the standard library.

``ThreadingHTTPServer`` + ``json`` — no new runtime dependencies.  The API
is deliberately small:

==========================  ====================================================
``POST /jobs``              submit ``{"scenario", "params", "priority"}``;
                            parameters are validated *before* queueing (400 on
                            an unknown scenario or bad parameters), so the
                            queue only ever holds runnable jobs.  Returns 202
                            with the queued job record — or 200 with an
                            already-``done`` record when the payload cache
                            answered on the fast path, or 429 with a
                            ``Retry-After`` header when the queue is at its
                            bound (backpressure).
``GET /jobs``               every job record, newest first (results elided).
``GET /jobs/<id>``          one job record: state, timestamps, error.
``GET /jobs/<id>/trace``    the job's span timeline (admission → queue →
                            run, engine/cache spans nested under run).
``DELETE /jobs/<id>``       cancel a *queued* job (running jobs finish).
``GET /results/<id>``       the result payload; 409 while the job is still
                            queued/running, 410 if it failed or was cancelled.
``GET /scenarios``          the scenario catalogue with parameter schemas.
``GET /healthz``            liveness: 200 once the service accepts jobs.
``GET /stats``              engine cache hit-rate, queue depth, coalesce and
                            fast-path counters, per-worker liveness.
``GET /metrics``            every metric family in Prometheus text format
                            (see :mod:`repro.obs` and docs/observability.md).
==========================  ====================================================

:class:`SimulationService` is the transport-free composition root (queue +
registry + worker tier + coalescer + engine) — the tests and the in-process
example use it directly; :class:`ServiceServer` binds it to a socket.  The
worker tier comes in two modes (``mode="thread"`` | ``"process"``, see
:mod:`repro.service.worker`); every request path above behaves identically
in both, which is what the equivalence tests pin.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.engine import SimulationEngine, default_engine
from repro.obs import Span
from repro.service.coalesce import (
    CoalescingSink,
    PayloadStore,
    RequestCoalescer,
    payload_key,
)
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobQueue,
    UnknownJobError,
)
from repro.service.scenarios import ScenarioError, ScenarioRegistry, default_registry
from repro.service.worker import ProcessWorkerPool, WorkerPool, engine_config_of

SERVICE_MODES = ("thread", "process")

_SUBMISSIONS = obs.counter(
    "repro_submissions_total",
    "Admitted submissions by tier (fast_path, coalesced, enqueued).",
    ("tier",),
)
_BACKPRESSURE = obs.counter(
    "repro_backpressure_rejections_total",
    "Submissions rejected because the queue was at its depth bound.",
)
_HTTP_REQUESTS = obs.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, endpoint and status code.",
    ("method", "endpoint", "status"),
)
_QUEUE_DEPTH = obs.gauge(
    "repro_queue_depth", "Jobs currently waiting to be claimed."
)
_BUSY_WORKERS = obs.gauge(
    "repro_busy_workers", "Workers currently executing a job."
)


class QueueFullError(RuntimeError):
    """The queue is at its configured depth bound; retry after a delay.

    The HTTP layer renders this as ``429 Too Many Requests`` with a
    ``Retry-After`` header — which the client SDK surfaces (and retries)
    as :class:`repro.service.client.BackpressureError`.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def _public_record(job: Job) -> Dict[str, Any]:
    """A job record with the (possibly large) result payload elided."""
    record = job.to_record()
    record["has_result"] = record.pop("result") is not None
    return record


class SimulationService:
    """Queue + registry + coalescer + worker tier over one shared cache.

    Everything the HTTP layer exposes is a method here, so the service can
    also be driven in-process (tests, notebooks, the example script)
    without a socket.

    Args:
        engine: the shared engine (thread mode runs jobs on it directly;
            process mode derives each worker's engine configuration from it
            via :func:`~repro.service.worker.engine_config_of`, so all
            workers share its on-disk cache root).
        registry: the scenario catalogue (defaults to the built-in one).
        num_workers: worker threads or processes draining the queue.
        journal_dir: persist job records here; queued/running jobs resume
            on restart.
        mode: ``"thread"`` (one warm in-process engine, the equivalence
            oracle) or ``"process"`` (N forked engine workers).
        max_queue_depth: bound on jobs *waiting* in the queue; beyond it
            :meth:`submit` raises :class:`QueueFullError` (the HTTP
            layer turns that into 429 + ``Retry-After``).  Fast-path and
            coalesced submissions never count against the bound — they
            consume no worker.  ``None`` disables backpressure.
        fast_path: answer repeat submissions straight from the payload
            store (job records born ``done``) without touching the queue.
        observability: turn on the process-wide metrics registry and
            tracer (:func:`repro.obs.enable`) so ``/metrics`` and
            ``/jobs/<id>/trace`` have something to report.  ``False``
            leaves :mod:`repro.obs` in whatever state the embedder chose.
    """

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        registry: Optional[ScenarioRegistry] = None,
        num_workers: int = 2,
        journal_dir: Union[None, str, Path] = None,
        mode: str = "thread",
        max_queue_depth: Optional[int] = None,
        fast_path: bool = True,
        observability: bool = True,
    ) -> None:
        if mode not in SERVICE_MODES:
            raise ValueError(
                f"mode must be one of {', '.join(SERVICE_MODES)}; got {mode!r}"
            )
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive (or None)")
        if observability:
            # Before anything else records (journal load, pool forks): the
            # forked worker processes inherit the enabled flag.
            obs.enable()
        self.engine = engine if engine is not None else default_engine()
        self.registry = registry if registry is not None else default_registry()
        self.mode = mode
        self.max_queue_depth = max_queue_depth
        self.fast_path = fast_path
        self.queue = (
            JobQueue.load(journal_dir) if journal_dir is not None else JobQueue()
        )
        self.coalescer = RequestCoalescer()
        cache_root = (
            self.engine.disk_cache.root
            if self.engine.disk_cache is not None
            else None
        )
        self.payloads = PayloadStore(disk_root=cache_root)
        self.sink = CoalescingSink(self.queue, self.coalescer, self.payloads)
        if mode == "process":
            self.workers: Any = ProcessWorkerPool(
                self.queue,
                self.registry,
                engine_config_of(self.engine),
                num_workers=num_workers,
                sink=self.sink,
            )
        else:
            self.workers = WorkerPool(
                self.queue,
                self.registry,
                self.engine,
                num_workers=num_workers,
                sink=self.sink,
            )
        self._rejections = 0
        self._lock = threading.Lock()
        # Point-in-time gauges read at /metrics collection.  Latest
        # composition root wins — ephemeral test services rebind freely.
        _QUEUE_DEPTH.set_callback(self.queue.depth)
        _BUSY_WORKERS.set_callback(
            lambda: self.workers.stats()["busy_workers"]
        )

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Start the worker tier."""
        self.workers.start()

    def stop(self) -> None:
        """Stop the worker tier (no claimed job is left in ``running``)."""
        self.workers.stop()

    # -- operations (the HTTP surface, transport-free) --------------------------

    def submit(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
    ) -> Job:
        """Validate, deduplicate, and (maybe) enqueue one scenario invocation.

        Raises :class:`ScenarioError` on an unknown scenario or invalid
        parameters — nothing unrunnable ever reaches the queue.  The job is
        stored with *normalised* parameters (defaults applied), so its
        cache fingerprint is canonical.  A ``trace_id`` is minted here —
        admission is the root of every job's timeline.  Three admission
        tiers, in order:

        1. **fast path** — the payload store already holds this request's
           finished result: the returned job is born ``done``;
        2. **coalesce** — an identical request is in flight: the job
           attaches as a follower and receives the leader's payload;
        3. **enqueue** — a genuinely new request: claimable by workers,
           subject to the ``max_queue_depth`` bound
           (:class:`QueueFullError` beyond it).
        """
        trace_id = obs.new_trace_id()
        admission_start = time.monotonic()
        normalised = self.registry.get(scenario).validate(params)
        key = payload_key(scenario, normalised)
        if self.fast_path:
            payload = self.payloads.get(key)
            if payload is not None:
                job = self.queue.submit_done(
                    scenario,
                    normalised,
                    priority=priority,
                    result=payload,
                    trace_id=trace_id,
                )
                _SUBMISSIONS.inc(tier="fast_path")
                self._record_admission(job, admission_start, tier="fast_path")
                return job
        will_coalesce = self.coalescer.leading(key)
        if (
            not will_coalesce
            and self.max_queue_depth is not None
            and self.queue.depth() >= self.max_queue_depth
        ):
            with self._lock:
                self._rejections += 1
            _BACKPRESSURE.inc()
            retry_after = self.retry_after()
            raise QueueFullError(
                f"queue depth is at its bound ({self.max_queue_depth}); "
                f"retry in {retry_after}s",
                retry_after=retry_after,
            )
        job = self.queue.submit(
            scenario, normalised, priority=priority, hold=True, trace_id=trace_id
        )
        leader = self.coalescer.attach(key, job.id)
        if leader is None:
            self.queue.enqueue(job.id)
            tier = "enqueued"
        else:
            tier = "coalesced"
        _SUBMISSIONS.inc(tier=tier)
        self._record_admission(job, admission_start, tier=tier)
        return job

    def _record_admission(self, job: Job, start: float, tier: str) -> None:
        """Record the admission span — validation through job creation.

        Its end is pinned to the job's own ``submitted_mono`` stamp so the
        admission and queue-wait spans tile exactly on the timeline.
        """
        if obs.enabled() and job.trace_id is not None:
            obs.record_span(
                Span(
                    trace_id=job.trace_id,
                    name="admission",
                    start=min(start, job.submitted_mono),
                    end=job.submitted_mono,
                    attrs={"tier": tier, "scenario": job.scenario},
                )
            )

    def retry_after(self) -> int:
        """Suggested client back-off, from queue depth and recent job times.

        ``ceil(depth x average recent job duration / workers)`` clamped to
        [1, 60] seconds — a rough drain-time estimate, deliberately coarse:
        its purpose is spacing retries, not scheduling them.
        """
        durations = [
            job.duration_s
            for job in self.queue.jobs()[:20]
            if job.state == DONE and job.duration_s is not None
        ]
        average = (sum(durations) / len(durations)) if durations else 1.0
        estimate = math.ceil(
            (self.queue.depth() + 1) * average / self.workers.num_workers
        )
        return max(1, min(60, int(estimate)))

    def job(self, job_id: str) -> Job:
        """The current record of one job."""
        return self.queue.get(job_id)

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The per-job timeline assembled from spans and the job's stamps.

        The three top-level phases — ``admission`` (HTTP admission through
        job creation), ``queue`` (waiting for a worker), ``run`` (claim to
        settle) — are derived from the job record's own monotonic stamps,
        so they tile exactly: their durations sum to the timeline's total.
        Engine and cache spans recorded during execution (in this process
        or shipped back from a forked worker) nest as children of ``run``.
        All offsets are seconds relative to the timeline origin (the start
        of admission).
        """
        job = self.queue.get(job_id)
        document: Dict[str, Any] = {
            "id": job.id,
            "trace_id": job.trace_id,
            "scenario": job.scenario,
            "state": job.state,
            "complete": job.is_terminal,
            "spans": [],
            "duration_s": None,
            "job_duration_s": job.duration_s,
        }
        stored = (
            obs.trace_store().spans_for(job.trace_id)
            if job.trace_id is not None
            else []
        )
        admission = next((s for s in stored if s.name == "admission"), None)
        origin = admission.start if admission is not None else job.submitted_mono

        def entry(
            name: str, start: float, end: float, attrs: Optional[Dict[str, Any]]
        ) -> Dict[str, Any]:
            record = {
                "name": name,
                "start_s": start - origin,
                "end_s": end - origin,
                "duration_s": max(0.0, end - start),
            }
            if attrs:
                record["attrs"] = attrs
            return record

        spans: List[Dict[str, Any]] = []
        if admission is not None:
            spans.append(
                entry(
                    "admission", admission.start, job.submitted_mono, admission.attrs
                )
            )
        end = None
        if job.started_mono is not None:
            spans.append(entry("queue", job.submitted_mono, job.started_mono, None))
            if job.finished_mono is not None:
                run = entry("run", job.started_mono, job.finished_mono, None)
                run["children"] = [
                    entry(span.name, span.start, span.end, span.attrs)
                    for span in stored
                    if span.name != "admission"
                ]
                spans.append(run)
                end = job.finished_mono
        elif job.finished_mono is not None:
            # Settled without ever running: a fast-path job (born done) or
            # a job cancelled while queued.
            if job.finished_mono > job.submitted_mono:
                spans.append(entry("queue", job.submitted_mono, job.finished_mono, None))
            end = job.finished_mono
        if end is not None:
            document["duration_s"] = end - origin
        document["spans"] = spans
        return document

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job; promotes a follower if a leader dies queued.

        Cancelling a coalesced group's *leader* while it is still queued
        promotes its oldest follower to leader (and actually enqueues it),
        so the rest of the group still gets a result.
        """
        job = self.queue.cancel(job_id)
        if job.state == CANCELLED:
            promoted = self.coalescer.detach(job_id)
            if promoted is not None:
                self.queue.enqueue(promoted)
        return job

    def stats(self) -> Dict[str, Any]:
        """Engine, queue, worker-tier and coalescing counters, JSON-able."""
        with self._lock:
            rejections = self._rejections
        return {
            "engine": self.engine.stats(),
            "queue": {
                "depth": self.queue.depth(),
                "max_depth": self.max_queue_depth,
                "jobs": self.queue.counts(),
                "journal_errors": self.queue.journal_errors,
            },
            "workers": self.workers.stats(),
            "service": {
                "mode": self.mode,
                "coalesced": self.coalescer.coalesced,
                "coalesced_in_flight": self.coalescer.in_flight(),
                "fast_path_hits": self.payloads.hits,
                "backpressure_rejections": rejections,
            },
        }

    def health(self) -> Dict[str, Any]:
        """Liveness summary: scenario count, worker-tier size and mode."""
        return {
            "status": "ok",
            "scenarios": len(self.registry),
            "workers": self.workers.num_workers,
            "mode": self.mode,
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.service``; JSON in, JSON out."""

    server_version = "ReproService/1.0"

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # quiet by default
            super().log_message(format, *args)

    # -- response helpers -------------------------------------------------------

    def _count_request(self, status: int) -> None:
        head, _ = self._route()
        _HTTP_REQUESTS.inc(
            method=self.command, endpoint=head or "unknown", status=str(status)
        )

    def _send_json(
        self,
        status: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._count_request(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._count_request(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, **extra: Any) -> None:
        self._send_json(status, {"error": message, **extra})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        document = json.loads(raw.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    def _route(self) -> Tuple[str, Optional[str]]:
        parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
            # The one three-segment endpoint: /jobs/<id>/trace.
            return "jobs-trace", parts[1]
        if len(parts) > 2:
            # No other endpoint is deeper than two segments; a longer path
            # (e.g. /jobs/<id>/result) must 404, not act on its prefix.
            return "", None
        head = parts[0] if parts else ""
        tail = parts[1] if len(parts) > 1 else None
        return head, tail

    # -- verbs ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        head, tail = self._route()
        try:
            if head == "healthz" and tail is None:
                self._send_json(200, self.service.health())
            elif head == "stats" and tail is None:
                self._send_json(200, self.service.stats())
            elif head == "scenarios" and tail is None:
                self._send_json(200, {"scenarios": self.service.registry.describe()})
            elif head == "metrics" and tail is None:
                self._send_text(
                    200,
                    obs.render_prometheus(obs.registry()),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif head == "jobs" and tail is None:
                records = [_public_record(job) for job in self.service.queue.jobs()]
                self._send_json(200, {"jobs": records})
            elif head == "jobs":
                self._send_json(200, _public_record(self.service.job(tail)))
            elif head == "jobs-trace" and tail is not None:
                self._send_json(200, self.service.trace(tail))
            elif head == "results" and tail is not None:
                self._send_result(tail)
            else:
                self._send_error_json(404, f"no such endpoint: {self.path}")
        except UnknownJobError:
            self._send_error_json(404, f"unknown job {tail!r}")

    def _send_result(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job.state == DONE:
            self._send_json(
                200,
                {
                    "id": job.id,
                    "scenario": job.scenario,
                    "state": job.state,
                    "result": job.result,
                },
            )
        elif job.state in (FAILED, CANCELLED):
            self._send_error_json(
                410,
                f"job {job.id} is {job.state}",
                state=job.state,
                detail=job.error,
            )
        else:
            self._send_error_json(
                409, f"job {job.id} is still {job.state}", state=job.state
            )

    def do_POST(self) -> None:  # noqa: N802
        head, tail = self._route()
        if head != "jobs" or tail is not None:
            self._send_error_json(404, f"no such endpoint: POST {self.path}")
            return
        try:
            body = self._read_body()
        except ValueError as error:
            self._send_error_json(400, f"invalid request body: {error}")
            return
        scenario = body.get("scenario")
        if not isinstance(scenario, str):
            self._send_error_json(400, "request must name a 'scenario' (string)")
            return
        params = body.get("params") or {}
        priority = body.get("priority", 0)
        # JSON encoders in several client stacks float-ize every number, so
        # {"priority": 4.0} must mean the integer 4 (mirroring
        # Parameter.coerce for scenario parameters).
        if isinstance(priority, float) and priority.is_integer():
            priority = int(priority)
        if not isinstance(params, dict) or isinstance(priority, bool) or not isinstance(priority, int):
            self._send_error_json(
                400, "'params' must be an object and 'priority' an integer"
            )
            return
        try:
            job = self.service.submit(scenario, params, priority=priority)
        except ScenarioError as error:
            self._send_error_json(400, str(error))
            return
        except QueueFullError as error:
            retry_after = max(1, int(error.retry_after))
            self._send_json(
                429,
                {"error": str(error), "retry_after": retry_after},
                headers={"Retry-After": str(retry_after)},
            )
            return
        # A fast-path submission is already done — 200, not 202 Accepted.
        self._send_json(200 if job.state == DONE else 202, _public_record(job))

    def do_DELETE(self) -> None:  # noqa: N802
        head, tail = self._route()
        if head != "jobs" or tail is None:
            self._send_error_json(404, f"no such endpoint: DELETE {self.path}")
            return
        try:
            job = self.service.cancel(tail)
        except UnknownJobError:
            self._send_error_json(404, f"unknown job {tail!r}")
            return
        self._send_json(200, _public_record(job))


class _BurstTolerantServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` with a listen backlog sized for bursts.

    The ``socketserver`` default backlog (5) overflows when a concurrent
    submission burst opens dozens of connections at once; an overflowed
    accept queue surfaces client-side as ``ConnectionResetError``.
    """

    daemon_threads = True
    request_queue_size = 128


class ServiceServer:
    """A :class:`SimulationService` bound to a listening socket."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self._httpd = _BurstTolerantServer((host, port), _Handler)
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` — an ephemeral port)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the workers and serve requests on a background thread."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop serving, close the socket, and stop the worker tier."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        self.service.stop()

    def serve_forever(self) -> None:
        """Foreground serving (the ``repro serve`` CLI path)."""
        self.service.start()
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self.service.stop()

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    engine: Optional[SimulationEngine] = None,
    registry: Optional[ScenarioRegistry] = None,
    num_workers: int = 2,
    journal_dir: Union[None, str, Path] = None,
    mode: str = "thread",
    max_queue_depth: Optional[int] = None,
    fast_path: bool = True,
    verbose: bool = False,
    observability: bool = True,
) -> ServiceServer:
    """Compose a service and bind it; ``port=0`` picks an ephemeral port."""
    service = SimulationService(
        engine=engine,
        registry=registry,
        num_workers=num_workers,
        journal_dir=journal_dir,
        mode=mode,
        max_queue_depth=max_queue_depth,
        fast_path=fast_path,
        observability=observability,
    )
    return ServiceServer(service, host=host, port=port, verbose=verbose)
