"""Simulation-as-a-service: async job queue, scenario registry, HTTP API.

This subsystem turns the batched :class:`~repro.engine.SimulationEngine`
into a long-lived service: many concurrent simulation and DSE requests
multiplex over **one warm engine and one shared content-addressed cache**,
instead of each paying engine construction and cold caches in its own
process.  It is standard-library only — ``http.server``, ``json``,
``threading`` — so ``repro serve`` boots with zero new runtime
dependencies.

The pieces (each its own module, composable without the HTTP layer):

* :mod:`repro.service.jobs` — :class:`JobQueue`: thread-safe priority
  queue with job states (queued → running → done/failed, plus queued-job
  cancellation and a running → queued requeue arc for worker-death
  retries), JSON-serializable records, and an optional on-disk journal
  that survives restarts.
* :mod:`repro.service.scenarios` — :class:`ScenarioRegistry`: named,
  parameter-validated request shapes covering the repo's catalogue (single
  layer, full network, DSE sweep, paper-figure regeneration).
* :mod:`repro.service.coalesce` — the duplicate-suppression tier:
  :class:`PayloadStore` (the fast path answering repeat submissions
  without a worker), :class:`RequestCoalescer` (identical in-flight
  requests collapse to one simulation) and :class:`CoalescingSink` (fans
  the one result out to every coalesced follower).
* :mod:`repro.service.worker` — the worker tier: :class:`WorkerPool`
  (threads on one warm engine, the equivalence oracle) and
  :class:`ProcessWorkerPool` (forked engine processes sharing the on-disk
  cache, with crash detection and retry-once).
* :mod:`repro.service.server` — :class:`SimulationService` (the
  transport-free composition root) and :class:`ServiceServer` /
  :func:`create_server` (the stdlib HTTP binding), including
  backpressure: a bounded queue rejects with 429 + ``Retry-After``
  (:class:`QueueFullError`).
* :mod:`repro.service.client` — :class:`ServiceClient`: the
  ``submit``/``wait``/``result`` SDK used by tests, examples and
  ``repro submit``; retries 429s transparently
  (:class:`BackpressureError`).

Every tier reports into :mod:`repro.obs` — the service enables the
process-global metrics registry and tracer at construction, mints a
``trace_id`` per submission, and serves ``GET /metrics`` (Prometheus text)
plus ``GET /jobs/<id>/trace`` (the per-job span timeline).  See
``docs/observability.md``.

Quickstart (in one process; see ``examples/service_client.py``)::

    from repro.service import ServiceClient, create_server

    with create_server(port=0, num_workers=2) as server:
        client = ServiceClient(server.url)
        payload = client.run("network", {"network": "alexnet"})
        print(payload["network_speedup"])

See ``docs/service.md`` for the request lifecycle and API reference.
"""

from repro.service.client import (
    BackpressureError,
    JobFailedError,
    ServiceClient,
    ServiceError,
)
from repro.service.coalesce import (
    CoalescingSink,
    PayloadStore,
    RequestCoalescer,
    payload_key,
)
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    UnknownJobError,
)
from repro.service.scenarios import (
    Parameter,
    Scenario,
    ScenarioError,
    ScenarioRegistry,
    default_registry,
)
from repro.service.server import (
    SERVICE_MODES,
    QueueFullError,
    ServiceServer,
    SimulationService,
    create_server,
)
from repro.service.worker import ProcessWorkerPool, WorkerPool, engine_config_of

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "SERVICE_MODES",
    "BackpressureError",
    "CoalescingSink",
    "Job",
    "JobFailedError",
    "JobQueue",
    "Parameter",
    "PayloadStore",
    "ProcessWorkerPool",
    "QueueFullError",
    "RequestCoalescer",
    "Scenario",
    "ScenarioError",
    "ScenarioRegistry",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SimulationService",
    "UnknownJobError",
    "WorkerPool",
    "create_server",
    "default_registry",
    "engine_config_of",
    "payload_key",
]
