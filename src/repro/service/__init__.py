"""Simulation-as-a-service: async job queue, scenario registry, HTTP API.

This subsystem turns the batched :class:`~repro.engine.SimulationEngine`
into a long-lived service: many concurrent simulation and DSE requests
multiplex over **one warm engine and one shared content-addressed cache**,
instead of each paying engine construction and cold caches in its own
process.  It is standard-library only — ``http.server``, ``json``,
``threading`` — so ``repro serve`` boots with zero new runtime
dependencies.

The pieces (each its own module, composable without the HTTP layer):

* :mod:`repro.service.jobs` — :class:`JobQueue`: thread-safe priority
  queue with job states (queued → running → done/failed, plus queued-job
  cancellation), JSON-serializable records, and an optional on-disk
  journal that survives restarts.
* :mod:`repro.service.scenarios` — :class:`ScenarioRegistry`: named,
  parameter-validated request shapes covering the repo's catalogue (single
  layer, full network, DSE sweep, paper-figure regeneration).
* :mod:`repro.service.worker` — :class:`WorkerPool`: threads draining the
  queue into the shared engine.
* :mod:`repro.service.server` — :class:`SimulationService` (the
  transport-free composition root) and :class:`ServiceServer` /
  :func:`create_server` (the stdlib HTTP binding).
* :mod:`repro.service.client` — :class:`ServiceClient`: the
  ``submit``/``wait``/``result`` SDK used by tests, examples and
  ``repro submit``.

Quickstart (in one process; see ``examples/service_client.py``)::

    from repro.service import ServiceClient, create_server

    with create_server(port=0, num_workers=2) as server:
        client = ServiceClient(server.url)
        payload = client.run("network", {"network": "alexnet"})
        print(payload["network_speedup"])

See ``docs/service.md`` for the request lifecycle and API reference.
"""

from repro.service.client import JobFailedError, ServiceClient, ServiceError
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    UnknownJobError,
)
from repro.service.scenarios import (
    Parameter,
    Scenario,
    ScenarioError,
    ScenarioRegistry,
    default_registry,
)
from repro.service.server import ServiceServer, SimulationService, create_server
from repro.service.worker import WorkerPool

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "Job",
    "JobFailedError",
    "JobQueue",
    "Parameter",
    "Scenario",
    "ScenarioError",
    "ScenarioRegistry",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SimulationService",
    "UnknownJobError",
    "WorkerPool",
    "create_server",
    "default_registry",
]
