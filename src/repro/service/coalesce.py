"""Request coalescing and the payload fast path for the simulation service.

Two duplicate-suppression tiers sit between ``POST /jobs`` and the worker
tier, both keyed by the same content hash (:func:`payload_key` — a
:func:`repro.engine.cache.fingerprint` over the scenario name and its
*normalised* parameters, so every equivalent spelling of a request maps to
one key):

* the **fast path** (:class:`PayloadStore`): a finished payload for the key
  is returned straight from the store — the job record is born ``done`` and
  never touches the queue or a worker;
* **coalescing** (:class:`RequestCoalescer`): an identical request already
  *in flight* attaches as a *follower* of the running job (its *leader*)
  instead of enqueueing a second simulation.  When the leader finishes, the
  :class:`CoalescingSink` fans the one result out to every follower — all
  of them receive the bitwise-identical payload.

The store keeps a small in-memory LRU tier and, when the service has an
on-disk cache root, a :class:`~repro.engine.cache.ResultCache` under
``<root>/payloads`` — a sibling namespace of the engine's own entries, so
payload warmth survives restarts and is shared by every worker process.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.engine.cache import ResultCache, fingerprint
from repro.service.jobs import JobQueue

PAYLOAD_SUBDIR = "payloads"

_FAST_PATH_HITS = obs.counter(
    "repro_fast_path_hits_total",
    "Requests answered straight from the payload store (job born done).",
)
_COALESCED = obs.counter(
    "repro_coalesced_total",
    "Requests attached as followers of an identical in-flight job.",
)


def payload_key(scenario: str, params: Dict[str, Any]) -> str:
    """Content hash of one (scenario, normalised parameters) request.

    Parameters must already be normalised (defaults applied, names
    canonicalised) — :meth:`repro.service.scenarios.Scenario.validate` does
    that at submission time — so every equivalent request spelling
    fingerprints identically.
    """
    return fingerprint("service-payload", scenario=scenario, params=params)


class PayloadStore:
    """Finished scenario payloads, keyed by :func:`payload_key`.

    A two-tier cache mirroring the engine's own: a bounded in-memory LRU
    dict in front of an optional on-disk :class:`ResultCache` (under
    ``<cache_root>/payloads``).  ``hits`` counts fast-path answers — every
    ``get`` that returned a payload — which the service reports as
    ``fast_path_hits``.
    """

    def __init__(
        self,
        disk_root: Union[None, str, Path] = None,
        memory_max_entries: int = 256,
    ) -> None:
        if memory_max_entries < 1:
            raise ValueError("memory_max_entries must be positive")
        self.disk: Optional[ResultCache] = (
            ResultCache(Path(disk_root) / PAYLOAD_SUBDIR)
            if disk_root is not None
            else None
        )
        self.memory_max_entries = memory_max_entries
        self._memory: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Any]:
        """The stored payload for ``key``, or ``None`` on a miss."""
        with self._lock:
            if key in self._memory:
                # Reinsert so the hit entry becomes most recently used.
                value = self._memory.pop(key)
                self._memory[key] = value
                self.hits += 1
                _FAST_PATH_HITS.inc()
                return value
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not None:
                with self._lock:
                    self._remember(key, value)
                    self.hits += 1
                _FAST_PATH_HITS.inc()
                return value
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, payload: Any) -> None:
        """Store a finished payload under ``key`` (memory and disk tiers)."""
        with self._lock:
            self._remember(key, payload)
        if self.disk is not None:
            self.disk.put(key, payload)

    def _remember(self, key: str, payload: Any) -> None:
        """Insert into the memory tier, evicting LRU entries.  Lock held."""
        self._memory.pop(key, None)
        self._memory[key] = payload
        while len(self._memory) > self.memory_max_entries:
            del self._memory[next(iter(self._memory))]

    def stats(self) -> Dict[str, Any]:
        """Hit/miss counters and tier sizes, as one JSON-able dict."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "memory_entries": len(self._memory),
                "disk": self.disk is not None,
            }


class RequestCoalescer:
    """Tracks in-flight request groups: one leader, any number of followers.

    All bookkeeping happens under one lock so that attaching a follower and
    settling a group can never interleave halfway.  The coalescer never
    touches the queue itself — callers (the service's submit/cancel paths
    and the :class:`CoalescingSink`) drive the job-state transitions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._leader_by_key: Dict[str, str] = {}
        self._group_by_leader: Dict[str, Tuple[str, List[str]]] = {}
        self._leader_by_follower: Dict[str, str] = {}
        self.coalesced = 0  # followers ever attached
        self.fanouts = 0  # results fanned out to followers

    def attach(self, key: str, job_id: str) -> Optional[str]:
        """Attach ``job_id`` to the in-flight group for ``key``.

        Returns the leader's job id when the job became a *follower*, or
        ``None`` when no group was in flight and the job is now the
        *leader* of a fresh group (the caller must then actually enqueue
        it).
        """
        with self._lock:
            leader = self._leader_by_key.get(key)
            if leader is not None:
                self._group_by_leader[leader][1].append(job_id)
                self._leader_by_follower[job_id] = leader
                self.coalesced += 1
                _COALESCED.inc()
                return leader
            self._leader_by_key[key] = job_id
            self._group_by_leader[job_id] = (key, [])
            return None

    def leading(self, key: str) -> bool:
        """Whether an in-flight group already exists for ``key``."""
        with self._lock:
            return key in self._leader_by_key

    def settle(self, leader_id: str) -> Tuple[Optional[str], List[str]]:
        """Close the group led by ``leader_id``; returns (key, followers).

        Called exactly when the leader's result (or failure) is recorded.
        Returns ``(None, [])`` when the job led no group — e.g. it was a
        follower, or its group was already settled.
        """
        with self._lock:
            group = self._group_by_leader.pop(leader_id, None)
            if group is None:
                return None, []
            key, followers = group
            self._leader_by_key.pop(key, None)
            for follower in followers:
                self._leader_by_follower.pop(follower, None)
            self.fanouts += len(followers)
            return key, followers

    def detach(self, job_id: str) -> Optional[str]:
        """Remove a cancelled job from its group.

        A cancelled *follower* is simply dropped.  A cancelled *leader*
        hands its group to its oldest follower — the returned job id, which
        the caller must enqueue so the promoted leader actually runs.
        Returns ``None`` when nothing needs promoting.
        """
        with self._lock:
            leader = self._leader_by_follower.pop(job_id, None)
            if leader is not None:
                _, followers = self._group_by_leader[leader]
                followers.remove(job_id)
                return None
            group = self._group_by_leader.pop(job_id, None)
            if group is None:
                return None
            key, followers = group
            self._leader_by_key.pop(key, None)
            if not followers:
                return None
            promoted, remaining = followers[0], followers[1:]
            self._leader_by_follower.pop(promoted, None)
            self._leader_by_key[key] = promoted
            self._group_by_leader[promoted] = (key, remaining)
            for follower in remaining:
                self._leader_by_follower[follower] = promoted
            return promoted

    def in_flight(self) -> int:
        """How many groups (leaders) are currently in flight."""
        with self._lock:
            return len(self._group_by_leader)


class CoalescingSink:
    """The completion surface worker pools record results through.

    Wraps the queue's ``mark_done`` / ``mark_failed`` with the group
    settlement a coalescing service needs: the leader's payload is stored
    for the fast path *before* any state flips (so a racing duplicate
    submission finds it), then the leader and every follower settle with
    the one identical payload.  A pool wired straight to the
    :class:`~repro.service.jobs.JobQueue` (no coalescing) keeps working —
    the queue itself exposes the same two methods.
    """

    def __init__(
        self,
        queue: JobQueue,
        coalescer: RequestCoalescer,
        payloads: Optional[PayloadStore] = None,
    ) -> None:
        self.queue = queue
        self.coalescer = coalescer
        self.payloads = payloads

    def mark_done(self, job_id: str, result: Any):
        """Record the result and fan it out to every coalesced follower."""
        key, followers = self.coalescer.settle(job_id)
        if key is not None and self.payloads is not None:
            self.payloads.put(key, result)
        job = self.queue.mark_done(job_id, result)
        for follower in followers:
            # Cancelled followers stay cancelled (mark_done guards terminal
            # states); everyone else receives the identical payload object.
            self.queue.mark_done(follower, result)
        return job

    def mark_failed(self, job_id: str, error: str):
        """Record the failure and propagate it to every coalesced follower."""
        _, followers = self.coalescer.settle(job_id)
        job = self.queue.mark_failed(job_id, error)
        for follower in followers:
            self.queue.mark_failed(follower, error)
        return job
