"""The service's job queue: states, priorities, cancellation, persistence.

A :class:`Job` is one submitted scenario invocation.  Its life cycle is

    queued ──> running ──> done
      │          │  └────> failed
      │          └──────> queued          (requeue: worker died mid-job)
      └──> cancelled

Only queued jobs can be cancelled; a running job runs to completion (the
simulation models have no preemption points, and a cancelled-mid-flight
result would be wasted cache warmth anyway).  Terminal states are final:
:meth:`~JobQueue.mark_done` and :meth:`~JobQueue.mark_failed` on an
already-terminal job are no-ops, so a straggling worker finishing after a
shutdown (or after its job was retried elsewhere) can never resurrect or
overwrite a settled record.

:class:`JobQueue` is a thread-safe priority queue over those jobs: workers
block in :meth:`JobQueue.claim` until a job is available, higher ``priority``
values pop first, and ties pop in submission order so equal-priority
traffic is FIFO.  Every job record — parameters, state, timestamps, result
payload or error — is JSON-serializable, and an optional ``journal_dir``
persists each record through every state transition, so a restarted service
can :meth:`~JobQueue.load` its history and re-queue interrupted work.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import obs

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

# States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

_log = obs.get_logger("repro.service.jobs")

_JOBS_TOTAL = obs.counter(
    "repro_jobs_total", "Jobs settled into a terminal state.", ("outcome",)
)
_JOB_DURATION = obs.histogram(
    "repro_job_duration_seconds", "Job run duration (claim to settle), seconds."
)
_QUEUE_WAIT = obs.histogram(
    "repro_queue_wait_seconds", "Time jobs spent queued before a worker claim."
)
_JOURNAL_FAILURES = obs.counter(
    "repro_journal_write_failures_total", "Journal writes that failed with OSError."
)
_JOURNAL_CORRUPT = obs.counter(
    "repro_journal_corrupt_records_total",
    "Journal records skipped at load because they were unreadable or malformed.",
)


class UnknownJobError(KeyError):
    """Raised when a job id is not (or no longer) known to the queue."""


@dataclass
class Job:
    """One submitted scenario invocation and everything recorded about it.

    ``attempts`` counts how many times a worker claimed the job — it stays
    at 1 on the happy path and reaches 2 when a crashed worker's job was
    re-queued and claimed again (the retry-once policy of the process
    worker tier).

    The ``*_at`` timestamps are wall-clock (``time.time()``) for display;
    the ``*_mono`` stamps are ``time.monotonic()`` readings taken at the
    same transitions and are what all duration math uses — wall-clock
    differences can go negative under NTP adjustment.  ``trace_id`` links
    the job to its spans in the trace store (``GET /jobs/<id>/trace``).
    """

    id: str
    scenario: str
    params: Dict[str, Any]
    priority: int = 0
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Any] = None
    error: Optional[str] = None
    attempts: int = 0
    trace_id: Optional[str] = None
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def duration_s(self) -> Optional[float]:
        """Run duration in seconds, or ``None`` if the job never ran.

        Prefers the monotonic stamps; falls back to wall-clock differences
        (clamped at zero) only for records restored from an older journal
        schema that lacked them.
        """
        if self.started_mono is not None and self.finished_mono is not None:
            return max(0.0, self.finished_mono - self.started_mono)
        if self.started_at is not None and self.finished_at is not None:
            return max(0.0, self.finished_at - self.started_at)
        return None

    def to_record(self) -> Dict[str, Any]:
        """The job as a JSON-serializable record (what the API returns)."""
        return {
            "id": self.id,
            "scenario": self.scenario,
            "params": self.params,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
            "attempts": self.attempts,
            "trace_id": self.trace_id,
            "submitted_mono": self.submitted_mono,
            "started_mono": self.started_mono,
            "finished_mono": self.finished_mono,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Job":
        """Rebuild a job from a journalled record (unknown keys ignored)."""
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in record.items() if key in known})


class JobQueue:
    """Thread-safe priority queue of :class:`Job` records.

    Args:
        journal_dir: optional directory where every job record is persisted
            as ``<id>.json`` on each state transition.  :meth:`load` restores
            a journal: terminal jobs keep their recorded state (results
            included), while ``queued`` and ``running`` jobs — work the
            previous process never finished — are re-queued.
        max_history: how many *terminal* jobs (and their result payloads) to
            retain; beyond it the oldest-finished are pruned from memory and
            from the journal.  Bounds a long-lived service's footprint —
            queued and running jobs are never pruned.  ``None`` disables
            pruning.
    """

    DEFAULT_MAX_HISTORY = 1000

    def __init__(
        self,
        journal_dir: Union[None, str, Path] = None,
        max_history: Optional[int] = DEFAULT_MAX_HISTORY,
    ) -> None:
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be positive (or None for unbounded)")
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._heap: List[tuple] = []  # (-priority, sequence, job_id)
        # Queued-but-held jobs (coalesced followers): not claimable, and not
        # counted by depth() — they wait on a leader, not on a worker.
        self._held: set = set()
        self._sequence = itertools.count()
        self.max_history = max_history
        self.journal_errors = 0
        self.journal_dir: Optional[Path] = (
            Path(journal_dir).expanduser() if journal_dir is not None else None
        )
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)

    # -- persistence ------------------------------------------------------------

    def _journal(self, job: Job) -> None:
        """Write ``job``'s record to the journal (atomic rename), if enabled.

        Journalling is best-effort durability: a write failure (disk full,
        permissions lost) is counted in ``journal_errors`` and the queue
        keeps serving from memory — it must never take a worker down or
        leave a job stuck in ``running``.
        """
        if self.journal_dir is None:
            return
        path = self.journal_dir / f"{job.id}.json"
        tmp_name = None
        try:
            fd, tmp_name = tempfile.mkstemp(dir=self.journal_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(job.to_record(), handle)
            os.replace(tmp_name, path)
        except OSError as error:
            if tmp_name is not None:
                Path(tmp_name).unlink(missing_ok=True)
            self.journal_errors += 1
            _JOURNAL_FAILURES.inc()
            _log.warning(
                "journal_write_failed",
                job_id=job.id,
                path=str(path),
                error=str(error),
            )
        except BaseException:
            if tmp_name is not None:
                Path(tmp_name).unlink(missing_ok=True)
            raise

    def _prune_history(self) -> None:
        """Drop the oldest terminal jobs beyond ``max_history``.  Lock held."""
        if self.max_history is None:
            return
        terminal = [job for job in self._jobs.values() if job.is_terminal]
        excess = len(terminal) - self.max_history
        if excess <= 0:
            return
        terminal.sort(key=lambda job: job.finished_at or job.submitted_at)
        for job in terminal[:excess]:
            del self._jobs[job.id]
            if self.journal_dir is not None:
                (self.journal_dir / f"{job.id}.json").unlink(missing_ok=True)

    @classmethod
    def load(
        cls,
        journal_dir: Union[str, Path],
        max_history: Optional[int] = DEFAULT_MAX_HISTORY,
    ) -> "JobQueue":
        """Rebuild a queue from a journal directory.

        Jobs that were ``queued`` or ``running`` when the previous process
        stopped are re-queued (oldest submission first, priorities kept);
        terminal jobs are restored as history.  Any unreadable or malformed
        record — torn write, foreign file, older schema — degrades to a
        lost job, never to a boot failure.
        """
        queue = cls(journal_dir=journal_dir, max_history=max_history)
        records = []
        for path in sorted(queue.journal_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as error:
                _JOURNAL_CORRUPT.inc()
                _log.warning(
                    "journal_record_skipped", path=str(path), error=str(error)
                )
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                _JOURNAL_CORRUPT.inc()
                _log.warning(
                    "journal_record_skipped",
                    path=str(path),
                    error="record is not a JSON object",
                )
        records.sort(key=lambda record: record.get("submitted_at") or 0.0)
        for record in records:
            try:
                job = Job.from_record(record)
            except TypeError as error:  # record lacks required fields
                _JOURNAL_CORRUPT.inc()
                _log.warning(
                    "journal_record_skipped",
                    path=str(queue.journal_dir / f"{record.get('id')}.json"),
                    error=str(error),
                )
                continue
            requeued = not job.is_terminal
            if requeued:
                job.state = QUEUED
                job.started_at = None
                job.started_mono = None
            with queue._lock:
                queue._jobs[job.id] = job
                if job.state == QUEUED:
                    heapq.heappush(
                        queue._heap,
                        (-job.priority, next(queue._sequence), job.id),
                    )
            if requeued:
                # Only re-queued jobs changed state; terminal records are
                # already on disk byte-for-byte — rewriting the whole
                # history on every boot would be a pointless write storm.
                queue._journal(job)
        with queue._lock:
            queue._prune_history()
        return queue

    # -- submission and claiming ------------------------------------------------

    def submit(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        hold: bool = False,
        trace_id: Optional[str] = None,
    ) -> Job:
        """Enqueue a new job and return its (queued) record.

        With ``hold=True`` the job record is created (and journalled) in the
        ``queued`` state but **not** pushed onto the claimable heap — the
        shape a coalesced follower takes: it waits for its leader's result
        instead of a worker.  :meth:`enqueue` makes a held job claimable
        later (e.g. when a cancelled leader's follower is promoted).
        """
        job = Job(
            id=uuid.uuid4().hex[:12],
            scenario=scenario,
            params=dict(params or {}),
            priority=int(priority),
            trace_id=trace_id,
        )
        with self._available:
            self._jobs[job.id] = job
            if hold:
                self._held.add(job.id)
            else:
                heapq.heappush(
                    self._heap, (-job.priority, next(self._sequence), job.id)
                )
            self._journal(job)
            if not hold:
                self._available.notify()
        return job

    def submit_done(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        result: Any = None,
        trace_id: Optional[str] = None,
    ) -> Job:
        """Record a job that is already finished — the cache fast path.

        The job is journalled straight into ``done`` with ``result``
        attached and never touches the heap, so no worker ever sees it.
        """
        now = time.time()
        mono = time.monotonic()
        job = Job(
            id=uuid.uuid4().hex[:12],
            scenario=scenario,
            params=dict(params or {}),
            priority=int(priority),
            state=DONE,
            submitted_at=now,
            finished_at=now,
            result=result,
            trace_id=trace_id,
            submitted_mono=mono,
            finished_mono=mono,
        )
        with self._lock:
            self._jobs[job.id] = job
            self._journal(job)
            self._prune_history()
        _JOBS_TOTAL.inc(outcome=DONE)
        return job

    def enqueue(self, job_id: str) -> Job:
        """Make a held (or re-queued) job claimable.

        Only ``queued`` jobs are pushed; anything else is left untouched.
        Pushing a job that is already on the heap is harmless — the stale
        duplicate entry is skipped by :meth:`claim` once the job leaves the
        ``queued`` state.
        """
        with self._available:
            job = self._require(job_id)
            if job.state == QUEUED:
                self._held.discard(job.id)
                heapq.heappush(
                    self._heap, (-job.priority, next(self._sequence), job.id)
                )
                self._available.notify()
        return job

    def requeue(self, job_id: str) -> Job:
        """Return a ``running`` job to the queue (its worker died mid-job).

        The job keeps its ``attempts`` count — :meth:`claim` increments it —
        so the caller can bound retries.  Jobs in any other state are left
        untouched.
        """
        with self._available:
            job = self._require(job_id)
            if job.state == RUNNING:
                job.state = QUEUED
                job.started_at = None
                job.started_mono = None
                heapq.heappush(
                    self._heap, (-job.priority, next(self._sequence), job.id)
                )
                self._journal(job)
                self._available.notify()
        return job

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job and mark it running.

        Blocks up to ``timeout`` seconds (forever when ``None``); returns
        ``None`` on timeout.  Jobs cancelled while queued are skipped.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    # A job may have been cancelled while queued — and, once
                    # terminal, even pruned from history — with its heap
                    # entry left behind.  Stale entries are skipped, never
                    # an error.
                    job = self._jobs.get(job_id)
                    if job is None or job.state != QUEUED:
                        continue
                    job.state = RUNNING
                    job.started_at = time.time()
                    job.started_mono = time.monotonic()
                    job.attempts += 1
                    self._journal(job)
                    _QUEUE_WAIT.observe(job.started_mono - job.submitted_mono)
                    return job
                if deadline is None:
                    self._available.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._available.wait(remaining):
                        return None

    # -- state transitions ------------------------------------------------------

    def _require(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def mark_done(self, job_id: str, result: Any) -> Job:
        """Record a result; a no-op if the job is already terminal.

        The terminal guard is what makes shutdown and worker-death recovery
        safe: a straggler thread finishing a job that was already marked
        failed (or retried to completion elsewhere) returns the settled
        record instead of flipping its state.  Callers that need to know
        whether *their* result won inspect the returned job's state.
        """
        with self._lock:
            job = self._require(job_id)
            if job.is_terminal:
                return job
            # Publish the payload before the state: readers outside this
            # lock (the HTTP handlers hold live Job references) must never
            # observe state == done with a still-null result.
            job.result = result
            job.finished_at = time.time()
            job.finished_mono = time.monotonic()
            job.state = DONE
            self._held.discard(job.id)
            self._journal(job)
            self._prune_history()
        _JOBS_TOTAL.inc(outcome=DONE)
        duration = job.duration_s
        if duration is not None:
            _JOB_DURATION.observe(duration)
        return job

    def mark_failed(self, job_id: str, error: str) -> Job:
        """Record a failure; a no-op if the job is already terminal."""
        with self._lock:
            job = self._require(job_id)
            if job.is_terminal:
                return job
            job.error = error
            job.finished_at = time.time()
            job.finished_mono = time.monotonic()
            job.state = FAILED
            self._held.discard(job.id)
            self._journal(job)
            self._prune_history()
        _JOBS_TOTAL.inc(outcome=FAILED)
        duration = job.duration_s
        if duration is not None:
            _JOB_DURATION.observe(duration)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job; running/terminal jobs are left untouched.

        Returns the job either way — callers inspect ``state`` to learn
        whether the cancellation took effect.
        """
        cancelled = False
        with self._lock:
            job = self._require(job_id)
            if job.state == QUEUED:
                job.finished_at = time.time()
                job.finished_mono = time.monotonic()
                job.state = CANCELLED
                self._held.discard(job.id)
                self._journal(job)
                self._prune_history()
                cancelled = True
        if cancelled:
            _JOBS_TOTAL.inc(outcome=CANCELLED)
        return job

    # -- introspection ----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job with ``job_id``; raises :class:`UnknownJobError`."""
        with self._lock:
            return self._require(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, newest submission first."""
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda job: job.submitted_at, reverse=True
            )

    def depth(self) -> int:
        """How many jobs are currently waiting to be claimed.

        Held jobs (coalesced followers) are excluded: they wait for their
        leader's result, not for a worker, so they never count against a
        backpressure bound.
        """
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state == QUEUED and job.id not in self._held
            )

    def counts(self) -> Dict[str, int]:
        """Job count per state (every state present, zero or not)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts
