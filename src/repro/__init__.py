"""repro — a reproduction of SCNN (ISCA 2017).

SCNN is an accelerator for compressed-sparse convolutional neural networks:
it exploits weight sparsity (from pruning) and activation sparsity (from
ReLU) with the PT-IS-CP-sparse dataflow, keeping both operands compressed end
to end and performing only the multiplies whose operands are both non-zero.

The public API exposes, in dependency order:

* ``repro.tensor`` — the compressed-sparse encodings,
* ``repro.nn`` — the network catalogues, pruning and workload generation,
* ``repro.workloads`` — the workload registry: every network as a
  declarative spec (builder + density profile + provenance), parametric
  synthetic generators and the density-profile library,
* ``repro.dataflow`` — loop nests, tiling and dataflow descriptions,
* ``repro.arch`` — the architecture registry: every accelerator variant as
  a declarative spec bound to a simulator adapter, plus cross-architecture
  comparison sweeps,
* ``repro.scnn`` — the SCNN / DCNN functional and cycle-level simulators,
* ``repro.timeloop`` — the analytical cycle, energy and area models,
* ``repro.engine`` — the batched simulation engine (caching, process-pool
  sharding) every experiment routes through,
* ``repro.experiments`` — one driver per paper table and figure.

Quickstart::

    from repro import get_network, build_network_workloads, simulate_network

    network = get_network("alexnet")
    result = simulate_network(network, seed=0)
    print(f"SCNN speedup over DCNN: {result.network_speedup:.2f}x")
"""

from repro.arch import (
    ArchitectureSpec,
    available_architectures,
    compare_network,
    default_registry,
    get_architecture,
)
from repro.engine import SimulationEngine, configure_default_engine, default_engine
from repro.nn import (
    ConvLayerSpec,
    LayerWorkload,
    Network,
    alexnet,
    available_networks,
    build_network_workloads,
    get_network,
    googlenet,
    vggnet,
)
from repro.scnn import (
    DCNN_CONFIG,
    DCNN_OPT_CONFIG,
    SCNN_CONFIG,
    AcceleratorConfig,
    run_functional_layer,
    simulate_layer,
    simulate_layer_cycles,
    simulate_network,
)
from repro.timeloop import (
    accelerator_area_mm2,
    estimate_dense_layer,
    estimate_scnn_layer,
    layer_energy,
    pe_area_mm2,
)
from repro.workloads import (
    DensityProfile,
    WorkloadSpec,
    available_profiles,
    available_workloads,
    get_profile,
    get_workload,
    register_profile,
    register_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "ArchitectureSpec",
    "DensityProfile",
    "WorkloadSpec",
    "available_architectures",
    "available_profiles",
    "available_workloads",
    "compare_network",
    "default_registry",
    "get_architecture",
    "get_profile",
    "get_workload",
    "register_profile",
    "register_workload",
    "ConvLayerSpec",
    "DCNN_CONFIG",
    "DCNN_OPT_CONFIG",
    "LayerWorkload",
    "Network",
    "SCNN_CONFIG",
    "SimulationEngine",
    "__version__",
    "accelerator_area_mm2",
    "configure_default_engine",
    "default_engine",
    "alexnet",
    "available_networks",
    "build_network_workloads",
    "estimate_dense_layer",
    "estimate_scnn_layer",
    "get_network",
    "googlenet",
    "layer_energy",
    "pe_area_mm2",
    "run_functional_layer",
    "simulate_layer",
    "simulate_layer_cycles",
    "simulate_network",
    "vggnet",
]
