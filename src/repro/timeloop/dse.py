"""Design-space exploration on top of the analytical models.

The paper motivates its design point (8x8 PEs of 4x4 multipliers, 32
accumulator banks, Kc = 8) with individual sensitivity arguments.  This
module packages that style of study into a reusable API: define a set of
candidate :class:`repro.scnn.config.AcceleratorConfig` instances, evaluate
each on a workload suite with the analytical cycle/energy/area models, and
extract the Pareto frontier over (latency, energy, area).

Candidate evaluations are independent of one another, so :func:`sweep`
accepts ``parallel=N`` to shard them across the simulation engine's process
pool (and through its result cache); ``sweep(configs, network)`` without
``parallel`` keeps the plain serial loop.  Both paths produce identical
design points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.densities import network_sparsity
from repro.nn.networks import Network
from repro.scnn.config import SCNN_CONFIG, AcceleratorConfig
from repro.timeloop.area import accelerator_area_mm2
from repro.timeloop.energy import (
    DEFAULT_ENERGY_TABLE,
    EnergyTable,
    layer_energy_from_densities,
)
from repro.timeloop.model import estimate_scnn_layer


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator configuration."""

    config: AcceleratorConfig
    cycles: float
    energy: float
    area_mm2: float

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def energy_delay_product(self) -> float:
        return self.energy * self.cycles

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance over (cycles, energy, area): no worse in all, better in one."""
        no_worse = (
            self.cycles <= other.cycles
            and self.energy <= other.energy
            and self.area_mm2 <= other.area_mm2
        )
        strictly_better = (
            self.cycles < other.cycles
            or self.energy < other.energy
            or self.area_mm2 < other.area_mm2
        )
        return no_worse and strictly_better


def evaluate_config(
    config: AcceleratorConfig,
    network: Network,
    *,
    sparsity=None,
    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> DesignPoint:
    """Evaluate one configuration on a whole network with the analytical model."""
    sparsity = sparsity if sparsity is not None else network_sparsity(network)
    total_cycles = 0.0
    total_energy = 0.0
    for index, spec in enumerate(network.layers):
        layer_sparsity = sparsity[spec.name]
        estimate = estimate_scnn_layer(
            spec,
            weight_density=layer_sparsity.weight_density,
            activation_density=layer_sparsity.activation_density,
            config=config,
        )
        total_cycles += estimate.cycles
        successors = network.layers[index + 1 : index + 2]
        output_density = (
            sparsity[successors[0].name].activation_density
            if successors
            else 0.55
        )
        total_energy += layer_energy_from_densities(
            spec,
            config,
            weight_density=layer_sparsity.weight_density,
            activation_density=layer_sparsity.activation_density,
            output_density=output_density,
            cycles=int(estimate.cycles),
            table=energy_table,
        ).total
    return DesignPoint(
        config=config,
        cycles=total_cycles,
        energy=total_energy,
        area_mm2=accelerator_area_mm2(config),
    )


def sweep_densities(
    network: Network, sparsity=None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-layer ``(layers, 1)`` density grids in the sweep's convention.

    Output density is the successor layer's activation density (one layer's
    outputs are the next layer's input stream); the final layer falls back
    to the 0.55 post-ReLU average the paper quotes.
    """
    sparsity = sparsity if sparsity is not None else network_sparsity(network)
    specs = list(network.layers)
    weight = np.array(
        [[sparsity[spec.name].weight_density] for spec in specs]
    )
    activation = np.array(
        [[sparsity[spec.name].activation_density] for spec in specs]
    )
    output = np.array(
        [
            [
                sparsity[specs[index + 1].name].activation_density
                if index + 1 < len(specs)
                else 0.55
            ]
            for index in range(len(specs))
        ]
    )
    return weight, activation, output


def evaluate_configs(
    configs: Sequence[AcceleratorConfig],
    network: Network,
    *,
    sparsity=None,
    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
    grid=None,
) -> List[DesignPoint]:
    """Batched :func:`evaluate_config`: every candidate in one grid pass.

    The whole configs x layers grid is evaluated through
    :func:`repro.grid.evaluate_grid` (the analytical SCNN model for every
    candidate, exactly as the per-config loop uses it); the resulting design
    points are bitwise-identical to ``evaluate_config`` of each candidate.
    ``grid`` injects an already-evaluated :class:`repro.grid.GridResult`
    covering ``configs`` in order (the engine passes its cached one).
    """
    configs = list(configs)
    if not configs:
        return []
    if grid is None:
        from repro.grid import evaluate_grid

        weight, activation, output = sweep_densities(network, sparsity)
        grid = evaluate_grid(
            list(network.layers),
            configs,
            weight_density=weight,
            activation_density=activation,
            output_density=output,
            energy_table=energy_table,
            model="scnn",
        )
    return [
        DesignPoint(
            config=config,
            cycles=grid.total_cycles(index),
            energy=grid.total_energy(index),
            area_mm2=accelerator_area_mm2(config),
        )
        for index, config in enumerate(configs)
    ]


def sweep(
    configs: Iterable[AcceleratorConfig],
    network: Network,
    *,
    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
    parallel: int | None = None,
    batched: bool = True,
) -> List[DesignPoint]:
    """Evaluate every candidate configuration on ``network``.

    The serial path evaluates the whole candidate grid in one batched pass
    (:func:`evaluate_configs`); ``batched=False`` keeps the original
    per-config loop as the equivalence oracle.  With ``parallel=N`` the
    candidates are sharded across the shared simulation engine's process
    pool and served from its result cache; results are identical on every
    path.
    """
    configs = list(configs)
    if parallel is not None and parallel not in (0, 1):
        from repro.engine import default_engine

        return default_engine().sweep(
            configs, network, energy_table=energy_table, parallel=parallel
        )
    if batched:
        return evaluate_configs(configs, network, energy_table=energy_table)
    return [
        evaluate_config(config, network, energy_table=energy_table)
        for config in configs
    ]


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset of ``points`` (stable order)."""
    frontier = []
    for candidate in points:
        if not any(other.dominates(candidate) for other in points if other is not candidate):
            frontier.append(candidate)
    return frontier


def default_candidates(base: AcceleratorConfig = SCNN_CONFIG) -> List[AcceleratorConfig]:
    """The candidate set the paper's sensitivity studies cover.

    PE granularity at fixed 1,024 multipliers, accumulator banking, and the
    output-channel group size, each varied around the paper's design point.
    """
    candidates: List[AcceleratorConfig] = []
    for num_pes in (64, 16, 4):
        candidates.append(base.with_pe_count(num_pes))
    for banks in (16, 64):
        candidates.append(
            replace(base, name=f"{base.name}-A{banks}", accumulator_banks=banks)
        )
    for group in (4, 16):
        candidates.append(
            replace(base, name=f"{base.name}-Kc{group}", output_channel_group=group)
        )
    return candidates


def summarize(points: Sequence[DesignPoint]) -> List[Tuple[str, float, float, float]]:
    """(name, cycles, energy, area) rows, normalised to the first point."""
    if not points:
        return []
    base = points[0]
    rows = []
    for point in points:
        rows.append(
            (
                point.name,
                point.cycles / base.cycles,
                point.energy / base.energy,
                point.area_mm2 / base.area_mm2,
            )
        )
    return rows
