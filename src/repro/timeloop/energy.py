"""Per-event energy accounting for SCNN, DCNN and DCNN-opt.

The paper applies an energy model "to the time loop events derived from the
synthesis modeling" — i.e. it counts architectural events (multiplies, buffer
accesses, crossbar traversals, DRAM transfers) for each accelerator and
multiplies them by per-event costs obtained from synthesis.  We reproduce
exactly that structure.  The absolute per-event costs below are calibrated so
that the *relationships* the paper reports hold (DCNN-opt ~2x better than
DCNN, SCNN ~2.3x better than DCNN on the pruned networks, SCNN/DCNN energy
crossover near 85% density and SCNN/DCNN-opt crossover near 60%); they are
stated in picojoules for readability but only their ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Union

from repro.arch.registry import resolve_config
from repro.nn.layers import ConvLayerSpec
from repro.scnn.config import AcceleratorConfig, SCNN_CONFIG


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energy costs (picojoules per event).

    ``multiply`` covers the 16-bit multiplier and its local operand latching;
    ``accumulator_update`` is one read-add-write of a small accumulator bank;
    ``crossbar`` is one product traversal of the FxI-to-A scatter network;
    the SRAM costs are per 16-bit value; ``dram`` is per 16-bit value of
    off-chip traffic; ``pe_cycle`` is the static/control energy of one PE for
    one cycle (clocking, sequencing, index handling).
    """

    multiply: float = 0.80
    accumulator_update: float = 0.45
    crossbar: float = 0.30
    iaram_read: float = 0.30
    oaram_write: float = 0.30
    dense_sram_read: float = 0.60
    dense_sram_write: float = 0.60
    weight_buffer_read: float = 0.12
    index_access: float = 0.05
    halo_transfer: float = 0.60
    dram: float = 22.0
    pe_cycle: float = 3.5

    def scaled(self, **overrides: float) -> "EnergyTable":
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(overrides)
        return EnergyTable(**values)


DEFAULT_ENERGY_TABLE = EnergyTable()


@dataclass
class EventCounts:
    """Architectural event counts of one layer on one accelerator."""

    multiplies: int = 0
    gated_multiplies: int = 0
    accumulator_updates: int = 0
    crossbar_products: int = 0
    iaram_reads: int = 0
    oaram_writes: int = 0
    dense_sram_reads: int = 0
    dense_sram_writes: int = 0
    weight_buffer_reads: int = 0
    index_accesses: int = 0
    halo_transfers: int = 0
    dram_values: int = 0
    pe_cycles: int = 0


@dataclass
class EnergyBreakdown:
    """Energy of one layer on one accelerator, by component (picojoules)."""

    config_name: str
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return float(sum(self.components.values()))


def _activation_fits_on_chip(
    input_values: int, output_values: int, config: AcceleratorConfig
) -> bool:
    """Whether a layer's input + output activations fit in on-chip storage."""
    capacity_values = config.activation_sram_bytes // 2  # 16-bit values
    return input_values + output_values <= capacity_values


def count_layer_events(
    spec: ConvLayerSpec,
    config: Union[AcceleratorConfig, str],
    *,
    weight_density: float,
    activation_density: float,
    output_density: float,
    cycles: int,
    products: Optional[int] = None,
    weight_buffer_reads: Optional[int] = None,
) -> EventCounts:
    """Count the architectural events of one layer on one accelerator.

    ``products`` (multiplies with both operands non-zero) and
    ``weight_buffer_reads`` may come from the cycle-level simulation when
    available; otherwise they are estimated analytically from the densities,
    which is what the TimeLoop sweep does.  ``config`` accepts a registered
    architecture name (resolved through :mod:`repro.arch.registry`).
    """
    config = resolve_config(config)
    dense_macs = spec.multiplies
    weight_values = spec.weight_count
    input_values = spec.input_activation_count
    output_values = spec.output_activation_count
    nnz_weights = int(round(weight_values * weight_density))
    nnz_inputs = int(round(input_values * activation_density))
    nnz_outputs = int(round(output_values * output_density))
    if products is None:
        products = int(round(dense_macs * weight_density * activation_density))
    num_groups = -(-spec.out_channels // config.output_channel_group)

    events = EventCounts()
    events.pe_cycles = cycles * config.num_pes
    dataflow = config.dataflow

    if dataflow.is_sparse:
        # SCNN: only non-zero operands reach the datapath; data stays
        # compressed in the IARAM/OARAM and on the DRAM interface.
        events.multiplies = products
        events.accumulator_updates = products
        events.crossbar_products = products
        events.iaram_reads = nnz_inputs * num_groups
        events.oaram_writes = nnz_outputs
        if weight_buffer_reads is None:
            i_width = config.multipliers_i
            act_vectors = max(1, -(-nnz_inputs // i_width))
            weight_buffer_reads = nnz_weights * max(
                1, act_vectors // max(1, spec.in_channels)
            )
        events.weight_buffer_reads = weight_buffer_reads
        events.index_accesses = events.iaram_reads + events.weight_buffer_reads
        plan_groups = num_groups
        events.halo_transfers = int(
            0.1 * config.output_channel_group * plan_groups * config.num_pes * 16
        )
        dram_values = int(nnz_weights * (1.0 + config.index_bits / 16.0))
        if not _activation_fits_on_chip(
            int(nnz_inputs * 1.3), int(nnz_outputs * 1.3), config
        ):
            dram_values += int((nnz_inputs + nnz_outputs) * (1.0 + config.index_bits / 16.0))
        events.dram_values = dram_values
        return events

    # Dense baselines: every multiply occupies the datapath; DCNN-opt gates
    # the multiplier when an operand is zero and compresses DRAM activation
    # traffic, but its on-chip storage stays dense and its adder tree /
    # accumulator still cycles every step.  The dot-product inner operation
    # reduces F products through an adder tree before touching the
    # accumulator buffer, so the buffer is accessed once per F multiplies.
    events.multiplies = products if dataflow.gates_zero_operands else dense_macs
    events.gated_multiplies = (
        dense_macs - products if dataflow.gates_zero_operands else 0
    )
    events.accumulator_updates = dense_macs // max(1, config.multipliers_f)
    events.dense_sram_reads = input_values * num_groups
    events.dense_sram_writes = output_values
    events.weight_buffer_reads = dense_macs // max(1, config.multipliers_i)
    dram_values = weight_values
    if not _activation_fits_on_chip(input_values, output_values, config):
        if dataflow.compresses_dram_traffic:
            dram_values += int(
                (nnz_inputs + nnz_outputs) * (1.0 + 4.0 / 16.0)
            )
        else:
            dram_values += input_values + output_values
    events.dram_values = dram_values
    return events


def layer_energy(
    events: EventCounts,
    config: Union[AcceleratorConfig, str],
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> EnergyBreakdown:
    """Convert event counts into an energy breakdown."""
    config = resolve_config(config)
    components = {
        "multiplier": events.multiplies * table.multiply,
        "accumulator": events.accumulator_updates * table.accumulator_update,
        "scatter crossbar": events.crossbar_products * table.crossbar,
        "activation RAM": (
            events.iaram_reads * table.iaram_read
            + events.oaram_writes * table.oaram_write
            + events.dense_sram_reads * table.dense_sram_read
            + events.dense_sram_writes * table.dense_sram_write
        ),
        "weight buffer": events.weight_buffer_reads * table.weight_buffer_read,
        "index handling": events.index_accesses * table.index_access,
        "halo exchange": events.halo_transfers * table.halo_transfer,
        "DRAM": events.dram_values * table.dram,
        "static / control": events.pe_cycles * table.pe_cycle,
    }
    return EnergyBreakdown(config_name=config.name, components=components)


def layer_energy_from_densities(
    spec: ConvLayerSpec,
    config: Union[AcceleratorConfig, str],
    *,
    weight_density: float,
    activation_density: float,
    output_density: float,
    cycles: int,
    products: Optional[int] = None,
    weight_buffer_reads: Optional[int] = None,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> EnergyBreakdown:
    """Convenience wrapper: count events then convert to energy."""
    events = count_layer_events(
        spec,
        config,
        weight_density=weight_density,
        activation_density=activation_density,
        output_density=output_density,
        cycles=cycles,
        products=products,
        weight_buffer_reads=weight_buffer_reads,
    )
    return layer_energy(events, config, table)
