"""TimeLoop: the analytical model for CNN accelerator design-space exploration.

The paper complements its cycle-level simulator with "TimeLoop, a detailed
analytical model for CNN accelerators" that computes cycle counts from a
bottleneck analysis and energy from per-event costs derived from synthesis.
This package provides the same three capabilities:

* :mod:`repro.timeloop.model` — analytical cycle estimates for the SCNN and
  dense dataflows as a function of layer shape and operand density (used for
  the Figure 7 density sweep).
* :mod:`repro.timeloop.energy` — per-event energy accounting for SCNN, DCNN
  and DCNN-opt (Figures 7b and 10).
* :mod:`repro.timeloop.area` — area model reproducing Tables III and IV.
"""

from repro.timeloop.dse import (
    DesignPoint,
    default_candidates,
    evaluate_config,
    pareto_frontier,
    sweep,
)
from repro.timeloop.area import (
    PE_AREA_BREAKDOWN,
    accelerator_area_mm2,
    pe_area_mm2,
    table_iv_configurations,
)
from repro.timeloop.energy import (
    EnergyBreakdown,
    EnergyTable,
    EventCounts,
    count_layer_events,
    layer_energy,
)
from repro.timeloop.model import (
    AnalyticalLayerEstimate,
    estimate_dense_layer,
    estimate_scnn_layer,
)

__all__ = [
    "AnalyticalLayerEstimate",
    "DesignPoint",
    "EnergyBreakdown",
    "EnergyTable",
    "EventCounts",
    "PE_AREA_BREAKDOWN",
    "accelerator_area_mm2",
    "count_layer_events",
    "default_candidates",
    "estimate_dense_layer",
    "estimate_scnn_layer",
    "evaluate_config",
    "layer_energy",
    "pareto_frontier",
    "pe_area_mm2",
    "sweep",
    "table_iv_configurations",
]
