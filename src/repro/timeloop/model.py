"""Analytical (TimeLoop-style) cycle estimates from layer shape and density.

Where the cycle-level model in :mod:`repro.scnn.cycles` consumes actual
tensors, this model consumes only the layer shape and the operand densities,
computing expected vector-fetch counts from the binomial distribution of
non-zeros within each compressed block.  It is what the Figure 7 density
sweep uses, and it doubles as a fast design-space exploration tool (PE count,
multiplier array shape, accumulator banking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Union

import numpy as np

try:  # scipy stays optional on the scalar path; see _log_comb.
    from scipy.special import gammaln as _gammaln
except ImportError:  # pragma: no cover - exercised only without scipy
    _gammaln = None

from repro.arch.registry import resolve_config
from repro.dataflow.tiling import plan_layer
from repro.nn.layers import ConvLayerSpec
from repro.scnn.accumulator import expected_conflict_cycles
from repro.scnn.config import AcceleratorConfig, DCNN_CONFIG, SCNN_CONFIG
from repro.scnn.dcnn import simulate_dcnn_layer


@dataclass(frozen=True)
class AnalyticalLayerEstimate:
    """Analytical estimate of one layer on one accelerator."""

    spec_name: str
    config_name: str
    cycles: float
    products: float
    multiplier_utilization: float
    idle_fraction: float


@lru_cache(maxsize=4096)
def _expected_vector_count(elements: int, density_milli: int, width: int) -> float:
    """E[ceil(X / width)] where X ~ Binomial(elements, density).

    The expectation of the *ceiling* exceeds the ceiling of the expectation —
    exactly the fragmentation effect that keeps the multiplier array from
    reaching full occupancy on sparse blocks — so it is computed exactly from
    the binomial pmf.  ``density_milli`` is the density in thousandths so the
    cache key stays hashable and small.
    """
    if elements <= 0:
        return 0.0
    density = density_milli / 1000.0
    if density <= 0.0:
        return 0.0
    if density >= 1.0:
        return float(-(-elements // width))
    counts = np.arange(elements + 1)
    # Binomial pmf via logarithms for numerical stability on large blocks.
    log_pmf = (
        _log_comb(elements, counts)
        + counts * np.log(density)
        + (elements - counts) * np.log1p(-density)
    )
    pmf = np.exp(log_pmf)
    pmf /= pmf.sum()
    return float((pmf * np.ceil(counts / width)).sum())


def _log_comb(n: int, k: np.ndarray) -> np.ndarray:
    """log C(n, k) via log-gamma (scipy when present, math.lgamma otherwise)."""
    if _gammaln is not None:
        return _gammaln(n + 1) - _gammaln(k + 1) - _gammaln(n - k + 1)
    lgamma = np.vectorize(math.lgamma, otypes=[np.float64])
    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


def density_milli(density: float) -> int:
    """Quantise a validated density in (0, 1] to thousandths, floored at 1.

    The floor matters: a nonzero density below 0.0005 would otherwise round
    to 0 and :func:`_expected_vector_count` would report zero expected
    fetches — zero cycles for real work.  One milli is the model's density
    resolution, so near-zero densities saturate at it instead of vanishing.
    """
    return max(1, int(round(density * 1000)))


def estimate_scnn_layer(
    spec: ConvLayerSpec,
    *,
    weight_density: float,
    activation_density: float,
    config: Union[AcceleratorConfig, str] = SCNN_CONFIG,
) -> AnalyticalLayerEstimate:
    """Expected SCNN cycles for one layer at the given operand densities.

    ``config`` accepts a registered architecture name (resolved through
    :mod:`repro.arch.registry`) in place of a config object.
    """
    config = resolve_config(config)
    if not 0.0 < weight_density <= 1.0:
        raise ValueError(f"weight_density must be in (0, 1], got {weight_density}")
    if not 0.0 < activation_density <= 1.0:
        raise ValueError(
            f"activation_density must be in (0, 1], got {activation_density}"
        )
    pe_rows, pe_cols = config.pe_grid
    plan = plan_layer(
        spec,
        num_pes=config.num_pes,
        group_size=config.output_channel_group,
        pe_rows=pe_rows,
        pe_cols=pe_cols,
    )
    f_width = config.multipliers_f
    i_width = config.multipliers_i
    c_connected = spec.in_channels // spec.groups
    num_groups = plan.num_groups

    # Strided layers decompose the Cartesian product into stride^2 phase
    # sub-streams (each activation phase pairs with exactly one weight
    # phase); the expected fetch counts below are per phase sub-block.
    phases = spec.stride * spec.stride

    # Expected weight-vector fetches per (group, channel, phase) block.
    group_channels = min(config.output_channel_group, spec.out_channels)
    weight_block = group_channels * spec.filter_height * spec.filter_width
    weight_phase_block = max(1, int(round(weight_block / phases)))
    wd_milli = density_milli(weight_density)
    ad_milli = density_milli(activation_density)
    weight_vectors = _expected_vector_count(weight_phase_block, wd_milli, f_width)
    weight_nnz = weight_phase_block * weight_density

    # Expected activation-vector fetches per (PE, channel, phase) block, which
    # vary with the (possibly uneven) tile sizes.
    tile_sizes = np.array([tile.size for tile in plan.input_tiles], dtype=np.int64)
    phase_sizes = np.maximum(tile_sizes // phases, (tile_sizes > 0).astype(np.int64))
    act_vectors = np.array(
        [
            _expected_vector_count(int(size), ad_milli, i_width) if size else 0.0
            for size in phase_sizes
        ]
    )
    act_nnz = phase_sizes * activation_density

    stall_per_step = expected_conflict_cycles(
        f_width * i_width, config.accumulator_banks
    )

    # Per (PE, group) busy cycles; every connected channel contributes, for
    # each stride phase, the product of its expected fetch counts.
    steps_per_pe_group = c_connected * phases * act_vectors * weight_vectors
    busy_per_pe_group = steps_per_pe_group * (1.0 + stall_per_step)
    busy_per_pe_group = busy_per_pe_group + (steps_per_pe_group > 0) * (
        config.drain_overhead_cycles
    )
    group_cycles = busy_per_pe_group.max() + config.barrier_overhead_cycles
    total_cycles = group_cycles * num_groups

    products_per_pe_group = c_connected * phases * act_nnz * weight_nnz
    total_products = products_per_pe_group.sum() * num_groups
    busy_total = busy_per_pe_group.sum() * num_groups
    utilization = 0.0
    if total_cycles > 0:
        utilization = total_products / (
            total_cycles * plan.num_pes * config.multipliers_per_pe
        )
    idle = 0.0
    if total_cycles > 0:
        idle = max(0.0, 1.0 - busy_total / (total_cycles * plan.num_pes))
    return AnalyticalLayerEstimate(
        spec_name=spec.name,
        config_name=config.name,
        cycles=float(total_cycles),
        products=float(total_products),
        multiplier_utilization=float(utilization),
        idle_fraction=float(idle),
    )


def estimate_dense_layer(
    spec: ConvLayerSpec,
    config: Union[AcceleratorConfig, str] = DCNN_CONFIG,
) -> AnalyticalLayerEstimate:
    """Expected dense-baseline cycles (density independent)."""
    config = resolve_config(config)
    result = simulate_dcnn_layer(spec, config)
    return AnalyticalLayerEstimate(
        spec_name=spec.name,
        config_name=config.name,
        cycles=float(result.cycles),
        products=float(result.multiplies),
        multiplier_utilization=result.multiplier_utilization,
        idle_fraction=result.idle_fraction,
    )


def estimate_oracle_cycles(
    spec: ConvLayerSpec,
    *,
    weight_density: float,
    activation_density: float,
    config: Union[AcceleratorConfig, str] = SCNN_CONFIG,
) -> float:
    """Oracle cycles at the given densities (work / peak throughput)."""
    config = resolve_config(config)
    products = spec.multiplies * weight_density * activation_density
    return max(1.0, products / config.total_multipliers)
