"""Area model (paper Tables III and IV).

The paper obtains post-synthesis area in TSMC 16nm FinFET from a SystemC +
HLS + Design Compiler flow.  We reproduce the *model* layer of that flow: the
per-structure area constants of Table III and the scaling rules TimeLoop uses
to size the dense baselines (RAM area proportional to capacity, ALU and
interconnect area proportional to count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.arch.registry import default_registry, resolve_config
from repro.scnn.config import AcceleratorConfig, SCNN_CONFIG

# Table III: SCNN PE area breakdown (mm^2, TSMC 16nm).
PE_AREA_BREAKDOWN: Dict[str, float] = {
    "IARAM + OARAM": 0.031,
    "Weight FIFO": 0.004,
    "Multiplier array": 0.008,
    "Scatter network": 0.026,
    "Accumulator buffers": 0.036,
    "Other": 0.019,
}

# Per-unit constants derived from the Table III entries, used to scale
# non-default configurations (granularity study, ablations).
_SRAM_MM2_PER_KB = PE_AREA_BREAKDOWN["IARAM + OARAM"] / 20.0
_FIFO_MM2_PER_KB = PE_AREA_BREAKDOWN["Weight FIFO"] / 0.5
_MULTIPLIER_MM2_PER_ALU = PE_AREA_BREAKDOWN["Multiplier array"] / 16.0
_XBAR_MM2_PER_PORT_PRODUCT = PE_AREA_BREAKDOWN["Scatter network"] / (16.0 * 32.0)
_ACCUMULATOR_MM2_PER_KB = PE_AREA_BREAKDOWN["Accumulator buffers"] / 6.0
_OTHER_MM2 = PE_AREA_BREAKDOWN["Other"]

# The dense baseline's Table IV area (5.9 mm^2 for 64 PEs + 2MB SRAM) implies
# a per-PE dense area once the shared SRAM is separated out.
_DENSE_SRAM_MM2_PER_MB = 1.55
_DENSE_PE_MM2 = (5.9 - 2.0 * _DENSE_SRAM_MM2_PER_MB) / 64.0


def pe_area_breakdown(
    config: Union[AcceleratorConfig, str] = SCNN_CONFIG
) -> Dict[str, float]:
    """Per-structure area of one PE of ``config`` (mm^2).

    ``config`` accepts a registered architecture name (resolved through
    :mod:`repro.arch.registry`) in place of a config object.
    """
    config = resolve_config(config)
    if not config.is_sparse:
        return {"PE (dense datapath + RAM slice)": _DENSE_PE_MM2}
    activation_kb = (config.iaram_bytes + config.oaram_bytes) / 1024.0
    accumulator_kb = (
        config.accumulator_banks
        * config.accumulator_bank_entries
        * config.accumulator_bits
        / 8.0
        / 1024.0
    ) * 2.0  # double buffered
    return {
        "IARAM + OARAM": activation_kb * _SRAM_MM2_PER_KB,
        "Weight FIFO": (config.weight_fifo_bytes / 1024.0) * _FIFO_MM2_PER_KB,
        "Multiplier array": config.multipliers_per_pe * _MULTIPLIER_MM2_PER_ALU,
        "Scatter network": (
            config.multipliers_per_pe
            * config.accumulator_banks
            * _XBAR_MM2_PER_PORT_PRODUCT
        ),
        "Accumulator buffers": accumulator_kb * _ACCUMULATOR_MM2_PER_KB,
        "Other": _OTHER_MM2,
    }


def pe_area_mm2(config: Union[AcceleratorConfig, str] = SCNN_CONFIG) -> float:
    """Total area of one PE (mm^2)."""
    return sum(pe_area_breakdown(config).values())


def accelerator_area_mm2(config: Union[AcceleratorConfig, str]) -> float:
    """Total accelerator area (mm^2): PEs plus any shared dense SRAM."""
    config = resolve_config(config)
    area = config.num_pes * pe_area_mm2(config)
    if config.dense_sram_bytes:
        area += (config.dense_sram_bytes / (1024.0 * 1024.0)) * _DENSE_SRAM_MM2_PER_MB
    return area


@dataclass(frozen=True)
class ConfigurationRow:
    """One row of Table IV."""

    name: str
    num_pes: int
    multipliers: int
    sram_bytes: int
    area_mm2: float


def table_iv_configurations() -> List[ConfigurationRow]:
    """The accelerator configurations of Table IV, from the registry.

    Iterates the architecture registry's ``table4``-tagged specs in
    registration order (DCNN, DCNN-opt, SCNN — the paper's presentation
    order), so registering a new Table IV variant extends this table without
    code changes.
    """
    rows = []
    for spec in default_registry():
        if "table4" not in spec.tags:
            continue
        config = spec.config
        rows.append(
            ConfigurationRow(
                name=config.name,
                num_pes=config.num_pes,
                multipliers=config.total_multipliers,
                sram_bytes=config.activation_sram_bytes,
                area_mm2=accelerator_area_mm2(config),
            )
        )
    return rows
