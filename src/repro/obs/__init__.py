"""Observability substrate: metrics, tracing, structured logging, exposition.

This package is the single front door for instrumentation across the repo.
It owns one process-wide :class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.trace.Tracer`, both **disabled by default** — library
use (importing :mod:`repro.engine` in a notebook, running experiments)
pays one attribute read per instrumentation site and records nothing.
``repro serve`` (or a test) calls :func:`enable` and everything lights up:

* counters / gauges / histograms collected into the registry and rendered
  by ``GET /metrics`` (see :mod:`repro.obs.exposition`);
* spans recorded against the current trace id (installed per job via
  :func:`set_current_trace`) and assembled into per-job timelines by
  ``GET /jobs/<id>/trace`` (see :mod:`repro.obs.trace`);
* structured JSON log events, trace-correlated, one per line (see
  :mod:`repro.obs.logging`) — these are level-gated independently of the
  enabled flag so swallowed-error surfacing works even in library use.

The registry and trace store are created once at import and never swapped:
:func:`reset` zeroes them *in place*, so family handles and span sites
captured at import time stay valid across test-suite resets.

See ``docs/observability.md`` for the metric catalogue, the trace/timeline
schema, and the logging conventions.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.exposition import parse_prometheus_text, render_prometheus
from repro.obs.logging import (
    LEVELS,
    LogSink,
    StructuredLogger,
    configure_logging,
    current_sink,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceStore,
    Tracer,
    current_trace_id,
    new_trace_id,
    reset_current_trace,
    set_current_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "LEVELS",
    "LogSink",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "StructuredLogger",
    "TraceStore",
    "Tracer",
    "configure_logging",
    "counter",
    "current_sink",
    "current_trace_id",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_logger",
    "histogram",
    "new_trace_id",
    "parse_prometheus_text",
    "registry",
    "render_prometheus",
    "reset",
    "reset_current_trace",
    "set_current_trace",
    "span",
    "trace_store",
]

_REGISTRY = MetricsRegistry(enabled=False)
_TRACER = Tracer(enabled=False)


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def trace_store() -> TraceStore:
    """The process-wide span store."""
    return _TRACER.store


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def enable() -> None:
    """Turn on metrics collection and span recording for this process."""
    _REGISTRY.enabled = True
    _TRACER.enabled = True


def disable() -> None:
    """Stop recording; already-collected state is kept until :func:`reset`."""
    _REGISTRY.enabled = False
    _TRACER.enabled = False


def enabled() -> bool:
    """Whether the observability layer is currently recording."""
    return _REGISTRY.enabled


def reset(enabled: bool = False) -> None:
    """Zero all metric children and drop all traces, in place.

    Family handles held by instrumented modules stay valid.  ``enabled``
    sets the post-reset recording state — test fixtures pass ``True`` to
    start a clean, live registry.
    """
    _REGISTRY.clear()
    _TRACER.store.clear()
    _REGISTRY.enabled = enabled
    _TRACER.enabled = enabled


def counter(name: str, help: str = "", labelnames: Any = ()) -> MetricFamily:
    """Get or create a counter family on the process registry."""
    return _REGISTRY.counter(name, help, labelnames)


def gauge(
    name: str, help: str = "", labelnames: Any = (), callback: Any = None
) -> MetricFamily:
    """Get or create a gauge family on the process registry."""
    return _REGISTRY.gauge(name, help, labelnames, callback)


def histogram(
    name: str, help: str = "", labelnames: Any = (), buckets: Any = None
) -> MetricFamily:
    """Get or create a histogram family on the process registry."""
    return _REGISTRY.histogram(name, help, labelnames, buckets)


def span(name: str, **attrs: Any):
    """A context manager timing one section of the current trace.

    No-ops (returning the shared :data:`NULL_SPAN`) when observability is
    disabled or no trace id is installed in the current context.
    """
    return _TRACER.span(name, **attrs)


def record_span(span_obj: Span) -> None:
    """Record an externally-constructed :class:`Span` (admission, queue)."""
    _TRACER.record(span_obj)
