"""Structured JSON logging: one event per line, trace-id-correlated.

Events are flat JSON objects — ``{"ts", "level", "logger", "event", ...}``
plus the caller's fields — written one per line, so any log shipper (or
``jq``) consumes them without a parsing grammar.  When the emitting code
runs inside a traced job (see :mod:`repro.obs.trace`), the event carries
the job's ``trace_id`` automatically, which is what lets a timeline and its
log lines be joined after the fact.

The default sink writes **warning**-and-above to stderr, so previously
swallowed failure paths (cache write failures, skipped journal records)
surface even in library use with no configuration at all.  ``repro serve
--log-level/--log-file`` routes through :func:`configure_logging` to widen
the level or redirect to a file.

Below-threshold events cost one method call and one integer compare — the
logging counterpart of the metrics registry's disabled-path contract.
"""

from __future__ import annotations

import json
import sys
import threading
from datetime import datetime, timezone
from typing import Any, Dict, IO, Optional

from repro.obs.trace import current_trace_id

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

LEVELS: Dict[str, int] = {
    "debug": DEBUG,
    "info": INFO,
    "warning": WARNING,
    "error": ERROR,
}

_LEVEL_NAMES = {number: name for name, number in LEVELS.items()}


def _coerce_level(level: Any) -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[str(level).lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {', '.join(LEVELS)}"
        ) from None


class LogSink:
    """Where structured events go: a threshold, a stream, a lock.

    ``stream=None`` means "whatever ``sys.stderr`` is at emit time", so
    test harnesses that swap stderr (pytest's capture) see the events.
    """

    def __init__(
        self,
        threshold: int = WARNING,
        stream: Optional[IO[str]] = None,
        path: Optional[str] = None,
    ) -> None:
        self.threshold = threshold
        self._stream = stream
        self._path = path
        self._file: Optional[IO[str]] = None
        self._lock = threading.Lock()

    def _target(self) -> IO[str]:
        if self._path is not None:
            if self._file is None or self._file.closed:
                self._file = open(self._path, "a", encoding="utf-8")
            return self._file
        return self._stream if self._stream is not None else sys.stderr

    def emit(self, record: Dict[str, Any]) -> None:
        """Serialise and write one event; emission failures never propagate."""
        try:
            line = json.dumps(record, default=str, separators=(",", ":"))
            with self._lock:
                target = self._target()
                target.write(line + "\n")
                target.flush()
        except Exception:  # lint-ok: no-silent-except
            # Logging is diagnostics, never control flow: a closed stream or
            # an unserialisable field must not take the caller down — and a
            # failing log sink has nowhere left to report to.
            pass

    def close(self) -> None:
        """Close the sink's file, if it opened one."""
        if self._file is not None and not self._file.closed:
            self._file.close()


_sink = LogSink()
_sink_lock = threading.Lock()


def configure_logging(
    level: Any = "info",
    log_file: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> LogSink:
    """Install a new process-wide log sink; returns it.

    ``level`` is a name (``"debug"`` ... ``"error"``) or numeric threshold;
    ``log_file`` appends events to a path (one JSON object per line);
    ``stream`` writes to an explicit stream instead.  With neither, events
    go to ``sys.stderr``.  The previous sink's file (if any) is closed.
    """
    global _sink
    sink = LogSink(_coerce_level(level), stream=stream, path=log_file)
    with _sink_lock:
        previous, _sink = _sink, sink
    if previous is not sink:
        previous.close()
    return sink


def current_sink() -> LogSink:
    """The active process-wide sink."""
    return _sink


class StructuredLogger:
    """A named emitter of structured events.

    Usage::

        log = get_logger("repro.engine.cache")
        log.warning("cache_write_failed", key=key, path=str(path))
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _log(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        sink = _sink
        if level < sink.threshold:
            return
        record: Dict[str, Any] = {
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "level": _LEVEL_NAMES.get(level, str(level)),
            "logger": self.name,
            "event": event,
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        record.update(fields)
        sink.emit(record)

    def debug(self, event: str, **fields: Any) -> None:
        """Emit a debug-level event."""
        self._log(DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        """Emit an info-level event."""
        self._log(INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        """Emit a warning-level event."""
        self._log(WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        """Emit an error-level event."""
        self._log(ERROR, event, fields)


_loggers: Dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """The (cached) structured logger registered under ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        with _loggers_lock:
            logger = _loggers.setdefault(name, StructuredLogger(name))
    return logger
