"""Span-based tracing: trace ids, the current-trace context, the span store.

A *trace* is one job's journey through the service — minted at HTTP
admission (or CLI entry) as a 16-hex-character ``trace_id``, carried on the
job record through the queue and across the pipe into forked workers, and
assembled into a per-job timeline by ``GET /jobs/<id>/trace``.

A *span* is one named, timed section inside a trace (``engine.run_network``,
``cache.get``, ...).  Instrumented code never threads trace ids through its
signatures; instead the worker executing a job installs the trace id into a
:mod:`contextvars` context variable (:func:`set_current_trace`) and every
:func:`span` inside that dynamic extent records against it.  Timestamps are
``time.monotonic()`` — on Linux a system-wide clock, so spans recorded in a
forked worker process are directly comparable with the parent's.

The overhead contract matches the metrics registry: :func:`span` returns a
shared no-op context manager when tracing is disabled *or* no trace is
current, so untraced code (experiments, the bare CLI) pays one function
call and one context-variable read per span site.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

_current_trace: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-character trace id."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> Optional[str]:
    """The trace id installed in the current context, if any."""
    return _current_trace.get()


def set_current_trace(trace_id: Optional[str]) -> contextvars.Token:
    """Install ``trace_id`` as the current trace; returns the reset token."""
    return _current_trace.set(trace_id)


def reset_current_trace(token: contextvars.Token) -> None:
    """Undo a :func:`set_current_trace` (restores the previous trace)."""
    _current_trace.reset(token)


@dataclass
class Span:
    """One named, timed section of a trace.

    ``start`` and ``end`` are ``time.monotonic()`` readings; ``attrs`` is a
    small JSON-able dict of annotations (tier, method, counts).
    """

    trace_id: str
    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        """The span as a JSON-able record (what crosses worker pipes)."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            trace_id=record["trace_id"],
            name=record["name"],
            start=record["start"],
            end=record["end"],
            attrs=dict(record.get("attrs") or {}),
        )


class TraceStore:
    """Bounded, thread-safe span storage keyed by trace id.

    Holds up to ``max_traces`` traces; beyond the bound the oldest-started
    trace is evicted wholesale, so a long-lived service's trace memory
    stays flat regardless of traffic.
    """

    def __init__(self, max_traces: int = 1024) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be positive")
        self.max_traces = max_traces
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        """Record one span (evicting the oldest trace past the bound)."""
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                spans = self._traces[span.trace_id] = []
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            spans.append(span)

    def extend(self, spans: Iterable[Span]) -> None:
        """Record many spans (e.g. a batch shipped back from a worker)."""
        for span in spans:
            self.add(span)

    def spans_for(self, trace_id: str) -> List[Span]:
        """Every recorded span of one trace, in recording order."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def drain(self, trace_id: str) -> List[Span]:
        """Remove and return one trace's spans (a worker shipping them out)."""
        with self._lock:
            return self._traces.pop(trace_id, [])

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        """Drop every stored trace."""
        with self._lock:
            self._traces.clear()


class _NullSpan:
    """Shared no-op context manager: the disabled / untraced fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        """Accept and discard annotations (mirrors :class:`_LiveSpan`)."""
        return None


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """A recording span context manager; created by :func:`span`."""

    __slots__ = ("_store", "_trace_id", "_name", "_attrs", "_start")

    def __init__(
        self, store: TraceStore, trace_id: str, name: str, attrs: Dict[str, Any]
    ) -> None:
        self._store = store
        self._trace_id = trace_id
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        end = time.monotonic()
        if exc_type is not None:
            self._attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._store.add(
            Span(self._trace_id, self._name, self._start, end, self._attrs)
        )

    def annotate(self, **attrs: Any) -> None:
        """Attach annotations to the span while it is open."""
        self._attrs.update(attrs)


class Tracer:
    """The process-wide tracing switchboard (owned by :mod:`repro.obs`).

    Couples the enabled flag with the span store so :func:`repro.obs.span`
    resolves both in one attribute hop.
    """

    def __init__(self, store: Optional[TraceStore] = None, enabled: bool = False):
        self.enabled = enabled
        self.store = store if store is not None else TraceStore()

    def span(self, name: str, **attrs: Any):
        """A context manager timing one section of the current trace.

        Returns the shared no-op manager when tracing is disabled or no
        trace is current, so span sites cost almost nothing outside the
        service (see the module docstring's overhead contract).
        """
        if not self.enabled:
            return NULL_SPAN
        trace_id = _current_trace.get()
        if trace_id is None:
            return NULL_SPAN
        return _LiveSpan(self.store, trace_id, name, attrs)

    def record(self, span: Span) -> None:
        """Record an externally-constructed span (e.g. the admission span)."""
        if self.enabled:
            self.store.add(span)
