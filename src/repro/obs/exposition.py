"""Prometheus text exposition (format 0.0.4) rendering and parsing.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the plain-text format every Prometheus-compatible scraper understands:
``# HELP`` / ``# TYPE`` headers per family, one sample line per child, and
the cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` expansion for
histograms.  :func:`parse_prometheus_text` is the inverse used by the test
suite and the CI smoke script to assert the endpoint emits *valid* text
format rather than something that merely looks like it.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.obs.metrics import COUNTER, GAUGE, HISTOGRAM, MetricsRegistry

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _format_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Tuple[str, ...], values: Tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state as Prometheus text format 0.0.4."""
    lines: List[str] = []
    for family in registry.families():
        help_text = (family.help or family.name).replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in sorted(family.samples(), key=lambda item: item[0]):
            if family.kind == HISTOGRAM:
                with child._lock:
                    counts = list(child.counts)
                    total = child.sum
                    count = child.count
                cumulative = 0
                for bound, bucket_count in zip(family.buckets, counts):
                    cumulative += bucket_count
                    labelstr = _format_labels(
                        family.labelnames, labels, f'le="{_format_number(bound)}"'
                    )
                    lines.append(
                        f"{family.name}_bucket{labelstr} {cumulative}"
                    )
                cumulative += counts[-1]
                labelstr = _format_labels(family.labelnames, labels, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{labelstr} {cumulative}")
                labelstr = _format_labels(family.labelnames, labels)
                lines.append(f"{family.name}_sum{labelstr} {_format_number(total)}")
                lines.append(f"{family.name}_count{labelstr} {count}")
            else:
                labelstr = _format_labels(family.labelnames, labels)
                lines.append(
                    f"{family.name}{labelstr} {_format_number(child.value)}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    rest = text.strip()
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            raise ValueError(f"malformed label section: {text!r}")
        labels[match.group("name")] = _unescape_label_value(match.group("value"))
        rest = rest[match.end():].lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif rest:
            raise ValueError(f"malformed label section: {text!r}")
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text into ``{family: {"type", "help", "samples"}}``.

    ``samples`` is a list of ``(sample name, labels dict, value)`` triples —
    histogram ``_bucket`` / ``_sum`` / ``_count`` series appear under their
    base family name, matching how :func:`render_prometheus` groups them.
    Raises :class:`ValueError` on malformed lines, which is exactly what the
    smoke test wants: a byte-level validity check, not a shape heuristic.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family_for(sample_name: str) -> Dict[str, object]:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if trimmed and families.get(trimmed, {}).get("type") == HISTOGRAM:
                base = trimmed
                break
        return families.setdefault(
            base, {"type": "untyped", "help": "", "samples": []}
        )

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            entry = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )
            entry["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in (COUNTER, GAUGE, HISTOGRAM, "summary", "untyped"):
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            entry = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )
            entry["type"] = kind
            continue
        if line.startswith("#"):
            continue  # arbitrary comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {raw_line!r}")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        entry = family_for(match.group("name"))
        entry["samples"].append((match.group("name"), labels, value))  # type: ignore[union-attr]
    return families
