"""Thread-safe metrics registry: counters, gauges, histograms, labels.

The model follows Prometheus: a *family* is a named metric with a type, a
help string, and a fixed tuple of label names; a *child* is one concrete
label combination holding the actual value.  Families are created
idempotently (``registry.counter(...)`` twice returns the same object, and
conflicting re-declarations raise), so instrumented modules can declare
their families at import time and hold the handles forever.

Two properties the instrumented hot paths rely on:

* **cheap when disabled** — every recording method (``inc`` / ``set`` /
  ``observe``) checks the registry's ``enabled`` flag first and returns
  immediately when it is off, and no children are ever materialised, so a
  disabled registry costs one method call and one attribute read per event
  (pinned by ``BENCH_observability_overhead.json``);
* **exact under concurrency** — every child guards its value with a lock,
  so counters incremented from many worker threads sum exactly (pinned by
  the 64-way burst tests).

For the service's multi-*process* worker tier, :meth:`MetricsRegistry.snapshot`
/ :meth:`MetricsRegistry.deltas_since` / :meth:`MetricsRegistry.merge_deltas`
move counter and histogram increments across a pipe: a forked worker
snapshots before a job, diffs after it, and ships the JSON-able delta list
back to the parent, whose registry merges them — so ``GET /metrics`` in the
parent accounts for work done in the children.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in seconds — spanning sub-millisecond
#: cache hits to minute-scale DSE sweeps.  Fixed boundaries keep exposition
#: stable and cross-process merges well-defined.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class _Counter:
    """One labelled counter value; monotonically non-decreasing."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase; use a gauge")
        with self._lock:
            self.value += amount


class _Gauge:
    """One labelled gauge value; settable and incrementable."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class _Histogram:
    """One labelled histogram: per-bucket counts plus sum and count."""

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


_CHILD_TYPES = {COUNTER: _Counter, GAUGE: _Gauge, HISTOGRAM: _Histogram}


class MetricFamily:
    """A named metric with a fixed label schema and per-label-set children.

    Recording goes through the convenience methods — ``inc`` (counters and
    gauges), ``set`` (gauges), ``observe`` (histograms) — each taking the
    label values as keyword arguments::

        requests.inc(tier="disk", outcome="hit")
        queue_wait.observe(0.012)

    All of them no-op immediately while the owning registry is disabled.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        self._callback: Optional[Callable[[], float]] = None

    # -- child management -------------------------------------------------------

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def child(self, **labels: Any) -> Any:
        """The concrete child for one label combination (created on demand).

        Unlike the recording conveniences this materialises the child even
        while the registry is disabled — use it to pre-register a zero-valued
        series so it shows up in the exposition before the first event.
        """
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key,
                    _Histogram(self.buckets)
                    if self.kind == HISTOGRAM
                    else _CHILD_TYPES[self.kind](),
                )
        return child

    # -- recording (all cheap no-ops while disabled) ----------------------------

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Increment a counter or gauge child by ``amount``."""
        if not self._registry.enabled:
            return
        self.child(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        """Decrement a gauge child by ``amount``."""
        if not self._registry.enabled:
            return
        self.child(**labels).dec(amount)

    def set(self, value: float, **labels: Any) -> None:
        """Set a gauge child to ``value``."""
        if not self._registry.enabled:
            return
        self.child(**labels).set(value)

    def observe(self, value: float, **labels: Any) -> None:
        """Record one histogram observation."""
        if not self._registry.enabled:
            return
        self.child(**labels).observe(value)

    def set_callback(self, callback: Optional[Callable[[], float]]) -> None:
        """Bind an unlabelled gauge to ``callback``, evaluated at collection.

        The hook for point-in-time values owned by live objects (queue
        depth, busy workers): the gauge is read when ``/metrics`` renders
        instead of being maintained on every transition.  Re-binding
        replaces the previous callback (the latest composition root wins).
        """
        if self.kind != GAUGE or self.labelnames:
            raise ValueError("callbacks are only supported on unlabelled gauges")
        self._callback = callback

    # -- introspection ----------------------------------------------------------

    def value(self, **labels: Any) -> float:
        """The current value of one child (0.0 if never recorded)."""
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            return 0.0
        return float(child.value) if self.kind != HISTOGRAM else float(child.sum)

    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Every (label values, child) pair, snapshot under the family lock."""
        with self._lock:
            items = list(self._children.items())
        if self.kind == GAUGE and self._callback is not None:
            try:
                synthetic = _Gauge()
                synthetic.value = float(self._callback())
                items.append(((), synthetic))
            # A raising gauge callback (a dead composition root) must not
            # kill the /metrics endpoint that would report it.
            except Exception:  # lint-ok: no-silent-except
                pass
        return items

    def clear(self) -> None:
        """Drop every child (the family itself stays registered)."""
        with self._lock:
            self._children.clear()


class MetricsRegistry:
    """The process-wide family catalogue behind ``/metrics``.

    One registry normally exists per process (``repro.obs`` owns it);
    instrumented modules declare families through the :meth:`counter` /
    :meth:`gauge` / :meth:`histogram` accessors, which are idempotent so a
    family can be declared wherever it is used.  ``enabled`` gates all
    recording — see the module docstring for the overhead contract.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    self,
                    name,
                    help,
                    kind,
                    labelnames,
                    tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
                )
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != labelnames:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} with "
                f"labels {family.labelnames}; cannot re-register as {kind} "
                f"with labels {labelnames}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._family(name, help, COUNTER, labelnames)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> MetricFamily:
        """Get or create a gauge family (optionally callback-backed)."""
        family = self._family(name, help, GAUGE, labelnames)
        if callback is not None:
            family.set_callback(callback)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        """Get or create a histogram family with fixed bucket boundaries."""
        return self._family(name, help, HISTOGRAM, labelnames, buckets)

    def families(self) -> List[MetricFamily]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def clear(self) -> None:
        """Zero every family's children; family handles stay valid.

        Values are dropped in place rather than swapping the registry out,
        so module-level family handles captured at import time keep
        pointing at live state — the reset surface the tests and the
        overhead benchmark use.
        """
        for family in self.families():
            family.clear()

    # -- cross-process movement -------------------------------------------------

    def snapshot(self) -> Dict[Tuple[str, Tuple[str, ...]], Any]:
        """Counter and histogram state, keyed by (family name, label values).

        Counter state is the float value; histogram state is a
        ``(counts tuple, sum, count)`` triple.  Gauges are excluded: they
        are point-in-time readings, not accumulations, so shipping them
        across processes would be meaningless.
        """
        state: Dict[Tuple[str, Tuple[str, ...]], Any] = {}
        for family in self.families():
            if family.kind == GAUGE:
                continue
            for labels, child in family.samples():
                if family.kind == HISTOGRAM:
                    state[(family.name, labels)] = (
                        tuple(child.counts), child.sum, child.count,
                    )
                else:
                    state[(family.name, labels)] = child.value
        return state

    def deltas_since(
        self, baseline: Dict[Tuple[str, Tuple[str, ...]], Any]
    ) -> List[Dict[str, Any]]:
        """JSON-able increments accumulated since ``baseline``.

        ``baseline`` is a prior :meth:`snapshot` of this registry.  Each
        delta carries enough schema (kind, label names, buckets) for a
        *different* registry to recreate the family on merge.
        """
        deltas: List[Dict[str, Any]] = []
        for family in self.families():
            if family.kind == GAUGE:
                continue
            for labels, child in family.samples():
                before = baseline.get((family.name, labels))
                if family.kind == HISTOGRAM:
                    prior = before or ((0,) * len(child.counts), 0.0, 0)
                    if child.count == prior[2]:
                        continue
                    deltas.append(
                        {
                            "kind": HISTOGRAM,
                            "name": family.name,
                            "help": family.help,
                            "labelnames": list(family.labelnames),
                            "labels": list(labels),
                            "buckets": list(family.buckets),
                            "counts": [
                                now - then
                                for now, then in zip(child.counts, prior[0])
                            ],
                            "sum": child.sum - prior[1],
                            "count": child.count - prior[2],
                        }
                    )
                else:
                    increment = child.value - (before or 0.0)
                    if increment == 0.0:
                        continue
                    deltas.append(
                        {
                            "kind": COUNTER,
                            "name": family.name,
                            "help": family.help,
                            "labelnames": list(family.labelnames),
                            "labels": list(labels),
                            "value": increment,
                        }
                    )
        return deltas

    def merge_deltas(self, deltas: Iterable[Dict[str, Any]]) -> None:
        """Fold a :meth:`deltas_since` list into this registry.

        Families are created if absent (using the schema embedded in the
        delta), so a parent merges a forked worker's increments without
        having to pre-register every family the child touched.  Merging is
        unconditional of ``enabled`` — the child already paid for the
        events; dropping them here would lose accounting.
        """
        for delta in deltas:
            labels = dict(zip(delta["labelnames"], delta["labels"]))
            if delta["kind"] == HISTOGRAM:
                family = self.histogram(
                    delta["name"],
                    delta.get("help", ""),
                    delta["labelnames"],
                    delta["buckets"],
                )
                child = family.child(**labels)
                with child._lock:
                    for index, amount in enumerate(delta["counts"]):
                        child.counts[index] += amount
                    child.sum += delta["sum"]
                    child.count += delta["count"]
            else:
                family = self.counter(
                    delta["name"], delta.get("help", ""), delta["labelnames"]
                )
                child = family.child(**labels)
                with child._lock:
                    child.value += delta["value"]
