"""CNN network substrate: layer shapes, network catalogues, pruning, inference.

The SCNN evaluation is driven by three ImageNet-era networks (AlexNet,
GoogLeNet, VGG-16).  The paper extracts pruned weights and measured
activations from Caffe; this package replaces that dependency with

* exact layer-shape catalogues of the three networks,
* per-layer density calibration matching the paper's Figure 1,
* magnitude pruning of synthetic weights to those densities, and
* a dense reference convolution plus a forward-inference driver that
  generates activation sparsity through ReLU.
"""

from repro.nn.densities import LayerSparsity, network_sparsity, sparsity_for_layer
from repro.nn.inference import (
    LayerWorkload,
    build_layer_workload,
    build_network_workloads,
    generate_activations,
    run_forward,
)
from repro.nn.layers import ConvLayerSpec, LayerShapeError
from repro.nn.networks import (
    Network,
    alexnet,
    available_networks,
    get_network,
    googlenet,
    vggnet,
)
from repro.nn.pruning import generate_dense_weights, prune_to_density
from repro.nn.quantization import (
    ACCUMULATOR_FORMAT,
    ACTIVATION_FORMAT,
    WEIGHT_FORMAT,
    FixedPointFormat,
    accumulator_headroom,
    quantize,
    quantize_workload,
)
from repro.nn.reference import conv2d_dense, max_pool2d, relu

__all__ = [
    "ACCUMULATOR_FORMAT",
    "ACTIVATION_FORMAT",
    "ConvLayerSpec",
    "FixedPointFormat",
    "LayerShapeError",
    "LayerSparsity",
    "LayerWorkload",
    "Network",
    "WEIGHT_FORMAT",
    "accumulator_headroom",
    "alexnet",
    "available_networks",
    "build_layer_workload",
    "build_network_workloads",
    "conv2d_dense",
    "generate_activations",
    "generate_dense_weights",
    "get_network",
    "googlenet",
    "max_pool2d",
    "network_sparsity",
    "prune_to_density",
    "quantize",
    "quantize_workload",
    "relu",
    "run_forward",
    "sparsity_for_layer",
    "vggnet",
]
