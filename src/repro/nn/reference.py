"""Dense reference implementations of the CNN layer operators.

These are the ground truth the functional SCNN simulator is validated
against: a straightforward (vectorised) convolution, ReLU and max pooling.
They intentionally favour clarity over speed — the cycle-level models never
call them in an inner loop.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import ConvLayerSpec


def relu(activations: np.ndarray) -> np.ndarray:
    """Rectified linear unit: clamp negative values to zero."""
    return np.maximum(activations, 0.0)


def conv2d_dense(
    activations: np.ndarray,
    weights: np.ndarray,
    *,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Dense 2-D convolution (cross-correlation, as in CNN frameworks).

    Args:
        activations: input of shape ``(C, H, W)``.
        weights: filters of shape ``(K, C/groups, S, R)``.
        stride: spatial stride.
        padding: zero padding applied to each border.
        groups: channel groups; output channel ``k`` reads input channels
            ``[g*C/groups, (g+1)*C/groups)`` where ``g = k // (K/groups)``.

    Returns:
        Output of shape ``(K, H_out, W_out)``.
    """
    activations = np.asarray(activations, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if activations.ndim != 3:
        raise ValueError(f"expected (C, H, W) activations, got {activations.shape}")
    if weights.ndim != 4:
        raise ValueError(f"expected (K, C', S, R) weights, got {weights.shape}")

    num_c, height, width = activations.shape
    num_k, c_per_group, filt_h, filt_w = weights.shape
    if num_c % groups or num_k % groups:
        raise ValueError("channel counts not divisible by groups")
    if c_per_group != num_c // groups:
        raise ValueError(
            f"weights expect {c_per_group} channels per group, input provides "
            f"{num_c // groups}"
        )

    if padding:
        activations = np.pad(
            activations, ((0, 0), (padding, padding), (padding, padding))
        )
    padded_h, padded_w = activations.shape[1:]
    out_h = (padded_h - filt_h) // stride + 1
    out_w = (padded_w - filt_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("convolution produces an empty output plane")

    k_per_group = num_k // groups
    output = np.zeros((num_k, out_h, out_w), dtype=float)
    for g in range(groups):
        act_g = activations[g * c_per_group : (g + 1) * c_per_group]
        wt_g = weights[g * k_per_group : (g + 1) * k_per_group]
        # Accumulate one filter offset at a time: for each (r, s) the needed
        # input window is a strided slice, which keeps the loop at R*S
        # iterations instead of H*W.
        for r in range(filt_h):
            for s in range(filt_w):
                window = act_g[
                    :, r : r + out_h * stride : stride, s : s + out_w * stride : stride
                ]
                # (K', C') x (C', H_out, W_out) -> (K', H_out, W_out)
                output[g * k_per_group : (g + 1) * k_per_group] += np.tensordot(
                    wt_g[:, :, r, s], window, axes=([1], [0])
                )
    return output


def conv2d_layer(activations: np.ndarray, weights: np.ndarray, spec: ConvLayerSpec) -> np.ndarray:
    """Dense convolution using the stride/padding/groups from ``spec``."""
    return conv2d_dense(
        activations,
        weights,
        stride=spec.stride,
        padding=spec.padding,
        groups=spec.groups,
    )


def max_pool2d(activations: np.ndarray, window: int, stride: int) -> np.ndarray:
    """Max pooling over non-overlapping-or-strided square windows.

    Incomplete border windows are dropped (Caffe's "valid" behaviour is close
    enough for the synthetic end-to-end example networks).
    """
    activations = np.asarray(activations, dtype=float)
    num_c, height, width = activations.shape
    out_h = (height - window) // stride + 1
    out_w = (width - window) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("pooling produces an empty output plane")
    output = np.full((num_c, out_h, out_w), -np.inf)
    for r in range(window):
        for s in range(window):
            patch = activations[
                :, r : r + out_h * stride : stride, s : s + out_w * stride : stride
            ]
            np.maximum(output, patch, out=output)
    return output
