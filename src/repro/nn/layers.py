"""Convolutional layer shape algebra.

A :class:`ConvLayerSpec` captures the seven CNN loop-nest parameters from the
paper's Figure 2 (``N`` is fixed to 1 for inference, as in the paper) plus
stride, padding and channel groups, and derives every quantity the rest of
the system needs: output extents, multiply counts, weight/activation
footprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.tensor.coordinates import output_extent


class LayerShapeError(ValueError):
    """Raised when a layer specification is internally inconsistent."""


BYTES_PER_VALUE = 2  # 16-bit weights/activations, as in the paper (Table I).


@dataclass(frozen=True)
class ConvLayerSpec:
    """Shape of one convolutional layer.

    Attributes:
        name: layer name as used in the paper's figures (e.g. ``conv3_1``).
        in_channels: number of input channels ``C``.
        out_channels: number of output channels ``K``.
        input_height: input activation plane height ``H``.
        input_width: input activation plane width ``W``.
        filter_height: filter height ``S`` (rows).
        filter_width: filter width ``R`` (columns).
        stride: convolution stride (same in both dimensions).
        padding: zero padding on each border.
        groups: channel groups (AlexNet conv2/4/5 use 2); weights connect
            ``in_channels/groups`` inputs to each output channel.
        module: optional grouping label (e.g. GoogLeNet inception module id).
    """

    name: str
    in_channels: int
    out_channels: int
    input_height: int
    input_width: int
    filter_height: int
    filter_width: int
    stride: int = 1
    padding: int = 0
    groups: int = 1
    module: str = ""

    def __post_init__(self) -> None:
        positives = {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "input_height": self.input_height,
            "input_width": self.input_width,
            "filter_height": self.filter_height,
            "filter_width": self.filter_width,
            "stride": self.stride,
            "groups": self.groups,
        }
        for label, value in positives.items():
            if value <= 0:
                raise LayerShapeError(f"{label} must be positive, got {value}")
        if self.padding < 0:
            raise LayerShapeError(f"padding must be non-negative, got {self.padding}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise LayerShapeError(
                f"channels ({self.in_channels}, {self.out_channels}) not divisible "
                f"by groups {self.groups}"
            )
        # Trigger extent validation early so bad specs fail at construction.
        try:
            _ = self.output_height
            _ = self.output_width
        except ValueError as error:
            raise LayerShapeError(str(error)) from error

    # -- derived extents -----------------------------------------------------

    @property
    def output_height(self) -> int:
        return output_extent(
            self.input_height, self.filter_height, self.stride, self.padding
        )

    @property
    def output_width(self) -> int:
        return output_extent(
            self.input_width, self.filter_width, self.stride, self.padding
        )

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        """Output activation shape ``(K, H_out, W_out)``."""
        return (self.out_channels, self.output_height, self.output_width)

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """Input activation shape ``(C, H, W)``."""
        return (self.in_channels, self.input_height, self.input_width)

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        """Weight tensor shape ``(K, C/groups, S, R)``."""
        return (
            self.out_channels,
            self.in_channels // self.groups,
            self.filter_height,
            self.filter_width,
        )

    # -- derived counts --------------------------------------------------------

    @property
    def weight_count(self) -> int:
        k, c, s, r = self.weight_shape
        return k * c * s * r

    @property
    def input_activation_count(self) -> int:
        c, h, w = self.input_shape
        return c * h * w

    @property
    def output_activation_count(self) -> int:
        k, h, w = self.output_shape
        return k * h * w

    @property
    def multiplies(self) -> int:
        """Dense multiply count for one inference pass of this layer."""
        return (
            self.output_height
            * self.output_width
            * self.out_channels
            * (self.in_channels // self.groups)
            * self.filter_height
            * self.filter_width
        )

    # -- footprints ------------------------------------------------------------

    @property
    def weight_bytes(self) -> int:
        return self.weight_count * BYTES_PER_VALUE

    @property
    def input_activation_bytes(self) -> int:
        return self.input_activation_count * BYTES_PER_VALUE

    @property
    def output_activation_bytes(self) -> int:
        return self.output_activation_count * BYTES_PER_VALUE

    def describe(self) -> str:
        """One-line human-readable summary of the layer shape."""
        return (
            f"{self.name}: {self.in_channels}x{self.input_height}x{self.input_width}"
            f" -> {self.out_channels}x{self.output_height}x{self.output_width}"
            f" ({self.filter_height}x{self.filter_width}/{self.stride}"
            f"{', groups=' + str(self.groups) if self.groups > 1 else ''})"
        )
