"""Per-layer weight and activation density calibration (paper Figure 1).

The paper measures these densities on networks pruned with Han et al.'s
algorithm and on ImageNet validation inputs instrumented through Caffe.  We
do not have those artifacts, so this module records a calibration table that
reproduces the published per-layer densities: weight density between roughly
0.3 and 0.85 with the first layer densest, activation density between roughly
0.3 and 1.0 with the input layer fully dense and later layers sparser.

The simulator treats these numbers only as targets for synthetic weight
pruning and activation generation; every downstream result (Figures 7-10)
is computed from the actual non-zero structure of the generated tensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network


@dataclass(frozen=True)
class LayerSparsity:
    """Densities (fraction of non-zeros) of one layer's operands."""

    weight_density: float
    activation_density: float

    def __post_init__(self) -> None:
        for label, value in (
            ("weight_density", self.weight_density),
            ("activation_density", self.activation_density),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{label} must be in (0, 1], got {value}")

    @property
    def work_fraction(self) -> float:
        """Ideal fraction of multiplies remaining when both operands are sparse."""
        return self.weight_density * self.activation_density


# AlexNet: weight densities follow the published Han et al. pruning results
# (conv1 kept ~84%, later layers ~35-40%); activation densities follow the
# paper's Figure 1a (conv1 input fully dense, later inputs ~40-50%).
_ALEXNET: Dict[str, LayerSparsity] = {
    "conv1": LayerSparsity(0.84, 1.00),
    "conv2": LayerSparsity(0.38, 0.49),
    "conv3": LayerSparsity(0.35, 0.39),
    "conv4": LayerSparsity(0.37, 0.43),
    "conv5": LayerSparsity(0.37, 0.43),
}

# VGG-16: weight densities from the published VGG pruning table; activation
# densities from Figure 1c (first layer dense, mid layers 0.3-0.5).
_VGGNET: Dict[str, LayerSparsity] = {
    "conv1_1": LayerSparsity(0.58, 1.00),
    "conv1_2": LayerSparsity(0.30, 0.62),
    "conv2_1": LayerSparsity(0.40, 0.52),
    "conv2_2": LayerSparsity(0.42, 0.48),
    "conv3_1": LayerSparsity(0.53, 0.48),
    "conv3_2": LayerSparsity(0.32, 0.44),
    "conv3_3": LayerSparsity(0.42, 0.40),
    "conv4_1": LayerSparsity(0.38, 0.42),
    "conv4_2": LayerSparsity(0.33, 0.38),
    "conv4_3": LayerSparsity(0.38, 0.35),
    "conv5_1": LayerSparsity(0.35, 0.38),
    "conv5_2": LayerSparsity(0.33, 0.38),
    "conv5_3": LayerSparsity(0.36, 0.40),
}

# GoogLeNet: the paper shows representative inception modules (3a and 5b) in
# Figure 1b, with weight density reaching a minimum of ~30% and activation
# density typically higher in early modules.  We assign a per-module baseline
# that decays from the early to the late modules and a per-branch adjustment
# (reduce layers tend to stay denser than their expand partners).
_GOOGLENET_MODULE_BASE: Dict[str, Tuple[float, float]] = {
    # module: (weight density baseline, activation density baseline)
    "stem": (0.70, 0.95),
    "IC_3a": (0.45, 0.62),
    "IC_3b": (0.42, 0.58),
    "IC_4a": (0.40, 0.52),
    "IC_4b": (0.38, 0.48),
    "IC_4c": (0.36, 0.45),
    "IC_4d": (0.35, 0.42),
    "IC_4e": (0.33, 0.40),
    "IC_5a": (0.32, 0.38),
    "IC_5b": (0.30, 0.35),
}

_GOOGLENET_BRANCH_ADJUST: Dict[str, Tuple[float, float]] = {
    # branch suffix: (weight density multiplier, activation density multiplier)
    "1x1": (1.10, 1.00),
    "3x3_reduce": (1.15, 1.00),
    "3x3": (0.95, 1.00),
    "5x5_reduce": (1.15, 1.00),
    "5x5": (0.90, 1.00),
    "pool_proj": (1.05, 0.90),
    "7x7_s2": (1.20, 1.05),
}

_DEFAULT = LayerSparsity(0.40, 0.45)

#: Densities below this floor are clamped up: a target density of exactly
#: zero cannot be represented by :class:`LayerSparsity` and would leave the
#: workload generators nothing to place.  Shared with the density-profile
#: library (:mod:`repro.workloads.profiles`).
MIN_DENSITY = 0.05


def _clamp_density(value: float) -> float:
    return max(MIN_DENSITY, min(1.0, value))


def _googlenet_layer(spec: ConvLayerSpec) -> LayerSparsity:
    module = spec.module or "IC_4c"
    base_w, base_a = _GOOGLENET_MODULE_BASE.get(module, (0.36, 0.45))
    branch = spec.name.split("/")[-1]
    adj_w, adj_a = _GOOGLENET_BRANCH_ADJUST.get(branch, (1.0, 1.0))
    return LayerSparsity(
        _clamp_density(base_w * adj_w), _clamp_density(base_a * adj_a)
    )


def sparsity_for_layer(network_name: str, spec: ConvLayerSpec) -> LayerSparsity:
    """Calibrated densities of one layer of one catalogue network.

    Matching is exact (plus the registered ``googlenet-stem`` variant, whose
    stem layers the GoogLeNet calibration covers via their ``stem`` module
    label); unrelated networks — whatever their display name — get the flat
    default calibration.
    """
    key = network_name.strip().lower()
    if key == "alexnet":
        return _ALEXNET.get(spec.name, _DEFAULT)
    if key == "vggnet":
        return _VGGNET.get(spec.name, _DEFAULT)
    if key in ("googlenet", "googlenet-stem"):
        return _googlenet_layer(spec)
    return _DEFAULT


def network_sparsity(network: Network) -> Dict[str, LayerSparsity]:
    """Calibration table for every layer of ``network``, keyed by layer name."""
    return {
        spec.name: sparsity_for_layer(network.name, spec) for spec in network.layers
    }


def uniform_sparsity(network: Network, density: float) -> Dict[str, LayerSparsity]:
    """Assign the same weight and activation density to every layer.

    Used by the Figure 7 density-sweep experiment, which artificially sweeps
    the weight and activation densities together from 1.0 down to 0.1.
    """
    table = LayerSparsity(density, density)
    return {spec.name: table for spec in network.layers}


def work_reduction(sparsity: LayerSparsity) -> float:
    """Factor by which the multiply count shrinks under maximal exploitation."""
    return 1.0 / sparsity.work_fraction
