"""Layer catalogues of the networks the paper evaluates.

The catalogues list every convolutional layer of AlexNet, GoogLeNet and
VGG-16 with the shapes used by the Caffe BVLC reference models (the source
the paper uses, Table I).  Only convolutional layers are modelled — the paper
explicitly restricts its evaluation to them ("we focus on accelerating the
convolutional layers as they constitute the majority of the computation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.nn.layers import ConvLayerSpec


@dataclass(frozen=True)
class Network:
    """An ordered collection of convolutional layers."""

    name: str
    layers: Tuple[ConvLayerSpec, ...]

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate layer names in network {self.name}")

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, name: str) -> ConvLayerSpec:
        for spec in self.layers:
            if spec.name == name:
                return spec
        raise KeyError(f"network {self.name} has no layer named {name!r}")

    def modules(self) -> List[str]:
        """Distinct module labels in catalogue order (e.g. inception modules)."""
        seen: List[str] = []
        for spec in self.layers:
            label = spec.module or spec.name
            if label not in seen:
                seen.append(label)
        return seen

    def layers_in_module(self, module: str) -> List[ConvLayerSpec]:
        return [spec for spec in self.layers if (spec.module or spec.name) == module]

    # -- aggregate characteristics (Table I) -----------------------------------

    @property
    def total_multiplies(self) -> int:
        return sum(layer.multiplies for layer in self.layers)

    @property
    def max_layer_weight_bytes(self) -> int:
        return max(layer.weight_bytes for layer in self.layers)

    @property
    def max_layer_activation_bytes(self) -> int:
        return max(layer.input_activation_bytes for layer in self.layers)

    @property
    def conv_layer_count(self) -> int:
        return len(self.layers)


def alexnet() -> Network:
    """AlexNet's five convolutional layers (Caffe BVLC reference, 227x227 input)."""
    layers = (
        ConvLayerSpec("conv1", 3, 96, 227, 227, 11, 11, stride=4, padding=0),
        ConvLayerSpec("conv2", 96, 256, 27, 27, 5, 5, stride=1, padding=2, groups=2),
        ConvLayerSpec("conv3", 256, 384, 13, 13, 3, 3, stride=1, padding=1),
        ConvLayerSpec("conv4", 384, 384, 13, 13, 3, 3, stride=1, padding=1, groups=2),
        ConvLayerSpec("conv5", 384, 256, 13, 13, 3, 3, stride=1, padding=1, groups=2),
    )
    return Network("AlexNet", layers)


# GoogLeNet inception module channel configuration:
# (#1x1, #3x3_reduce, #3x3, #5x5_reduce, #5x5, pool_proj), keyed by module id,
# together with the module's input channel count and spatial extent.
_INCEPTION_CONFIG: Dict[str, Tuple[int, int, Tuple[int, int, int, int, int, int]]] = {
    "IC_3a": (192, 28, (64, 96, 128, 16, 32, 32)),
    "IC_3b": (256, 28, (128, 128, 192, 32, 96, 64)),
    "IC_4a": (480, 14, (192, 96, 208, 16, 48, 64)),
    "IC_4b": (512, 14, (160, 112, 224, 24, 64, 64)),
    "IC_4c": (512, 14, (128, 128, 256, 24, 64, 64)),
    "IC_4d": (512, 14, (112, 144, 288, 32, 64, 64)),
    "IC_4e": (528, 14, (256, 160, 320, 32, 128, 128)),
    "IC_5a": (832, 7, (256, 160, 320, 32, 128, 128)),
    "IC_5b": (832, 7, (384, 192, 384, 48, 128, 128)),
}


def _inception_module(module: str) -> List[ConvLayerSpec]:
    in_channels, extent, config = _INCEPTION_CONFIG[module]
    n1x1, n3x3r, n3x3, n5x5r, n5x5, pool_proj = config
    prefix = module
    return [
        ConvLayerSpec(
            f"{prefix}/1x1", in_channels, n1x1, extent, extent, 1, 1, module=module
        ),
        ConvLayerSpec(
            f"{prefix}/3x3_reduce",
            in_channels,
            n3x3r,
            extent,
            extent,
            1,
            1,
            module=module,
        ),
        ConvLayerSpec(
            f"{prefix}/3x3", n3x3r, n3x3, extent, extent, 3, 3, padding=1, module=module
        ),
        ConvLayerSpec(
            f"{prefix}/5x5_reduce",
            in_channels,
            n5x5r,
            extent,
            extent,
            1,
            1,
            module=module,
        ),
        ConvLayerSpec(
            f"{prefix}/5x5", n5x5r, n5x5, extent, extent, 5, 5, padding=2, module=module
        ),
        ConvLayerSpec(
            f"{prefix}/pool_proj",
            in_channels,
            pool_proj,
            extent,
            extent,
            1,
            1,
            module=module,
        ),
    ]


def googlenet(include_stem: bool = False) -> Network:
    """GoogLeNet's 54 inception convolutional layers (9 modules x 6 layers).

    The paper's Table I counts 54 convolutional layers and its evaluation
    "primarily focuses on the convolutional layers that are within the
    inception modules", so the default catalogue contains exactly those.
    Pass ``include_stem=True`` to prepend the three stem convolutions.
    """
    layers: List[ConvLayerSpec] = []
    if include_stem:
        layers.extend(
            [
                ConvLayerSpec(
                    "conv1/7x7_s2", 3, 64, 224, 224, 7, 7, stride=2, padding=3,
                    module="stem",
                ),
                ConvLayerSpec(
                    "conv2/3x3_reduce", 64, 64, 56, 56, 1, 1, module="stem"
                ),
                ConvLayerSpec(
                    "conv2/3x3", 64, 192, 56, 56, 3, 3, padding=1, module="stem"
                ),
            ]
        )
    for module in _INCEPTION_CONFIG:
        layers.extend(_inception_module(module))
    return Network("GoogLeNet", tuple(layers))


def vggnet() -> Network:
    """VGG-16's thirteen convolutional layers (224x224 input, all 3x3/1 pad 1)."""
    plan = [
        ("conv1_1", 3, 64, 224),
        ("conv1_2", 64, 64, 224),
        ("conv2_1", 64, 128, 112),
        ("conv2_2", 128, 128, 112),
        ("conv3_1", 128, 256, 56),
        ("conv3_2", 256, 256, 56),
        ("conv3_3", 256, 256, 56),
        ("conv4_1", 256, 512, 28),
        ("conv4_2", 512, 512, 28),
        ("conv4_3", 512, 512, 28),
        ("conv5_1", 512, 512, 14),
        ("conv5_2", 512, 512, 14),
        ("conv5_3", 512, 512, 14),
    ]
    layers = tuple(
        ConvLayerSpec(name, c_in, c_out, extent, extent, 3, 3, stride=1, padding=1)
        for name, c_in, c_out, extent in plan
    )
    return Network("VGGNet", layers)


def available_networks() -> List[str]:
    """Names accepted by :func:`get_network` — a live registry view.

    Historically this returned the hard-coded paper trio; it is now a shim
    over the workload registry (:mod:`repro.workloads.registry`), so networks
    registered at runtime appear here immediately.  Sorted for stable
    display; see :func:`repro.workloads.available_workloads` for
    registration order.
    """
    from repro.workloads.registry import available_workloads

    return sorted(available_workloads())


def get_network(name: str) -> Network:
    """Build a registered network by (case-insensitive) name.

    A shim over the workload registry: the paper catalogue (``alexnet``,
    ``googlenet``, ``googlenet-stem``, ``vggnet``) is built by this module's
    builders exactly as before, and any workload registered at runtime —
    synthetic or user-defined — resolves the same way.  Unknown names raise
    a :class:`KeyError` that lists the catalogue.
    """
    from repro.workloads.registry import resolve_network

    return resolve_network(name)
