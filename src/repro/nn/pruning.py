"""Synthetic weight generation and magnitude pruning.

The paper prunes its networks with Han et al.'s two-phase algorithm: weights
whose magnitude falls below a threshold are zeroed, then the network is
retrained.  The architecture only observes the *result* of that process — a
weight tensor with a given density and an unstructured non-zero pattern — so
we reproduce it by magnitude-pruning randomly initialised weights to the
calibrated per-layer density.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import ConvLayerSpec


def generate_dense_weights(
    spec: ConvLayerSpec, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Gaussian-initialised dense weights of shape ``(K, C/groups, S, R)``.

    The scale follows the usual fan-in normalisation so forward activations
    stay in a numerically reasonable range when layers are chained.
    """
    rng = rng or np.random.default_rng()
    fan_in = spec.weight_shape[1] * spec.filter_height * spec.filter_width
    scale = 1.0 / np.sqrt(fan_in)
    return rng.normal(0.0, scale, size=spec.weight_shape)


def prune_to_density(
    weights: np.ndarray,
    density: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Magnitude-prune ``weights`` so the kept fraction equals ``density``.

    The smallest-magnitude weights are zeroed first, exactly like phase one of
    Han et al.'s pruning.  Ties at the threshold are broken randomly so the
    requested density is hit exactly (up to integer rounding).
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    weights = np.asarray(weights, dtype=float)
    total = weights.size
    keep = int(round(total * density))
    if keep >= total:
        return weights.copy()
    if keep <= 0:
        keep = 1

    rng = rng or np.random.default_rng()
    magnitudes = np.abs(weights).reshape(-1)
    # Random jitter far below the smallest magnitude gap breaks exact ties
    # (common when many weights share a value) without reordering distinct
    # magnitudes.
    jitter = rng.uniform(0.0, 1.0, size=total) * 1e-12
    order = np.argsort(magnitudes + jitter)
    pruned = weights.reshape(-1).copy()
    pruned[order[: total - keep]] = 0.0
    return pruned.reshape(weights.shape)


def generate_pruned_weights(
    spec: ConvLayerSpec,
    density: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Convenience wrapper: dense initialisation followed by pruning."""
    rng = rng or np.random.default_rng()
    return prune_to_density(generate_dense_weights(spec, rng), density, rng)


def measured_density(tensor: np.ndarray) -> float:
    """Fraction of non-zero elements of ``tensor``."""
    tensor = np.asarray(tensor)
    if tensor.size == 0:
        return 0.0
    return float(np.count_nonzero(tensor)) / tensor.size
