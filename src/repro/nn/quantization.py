"""Fixed-point quantization substrate.

SCNN's datapath is 16-bit multipliers feeding 24-bit accumulators (paper
Table II).  The simulators in this repository compute in floating point for
clarity; this module provides the quantization layer needed to check that the
catalogue workloads actually fit those widths:

* :func:`quantize` maps a float tensor onto a signed fixed-point grid,
* :func:`quantization_error` reports the induced error, and
* :func:`accumulator_headroom` checks whether a layer's dot products can
  overflow a 24-bit accumulator given its operand magnitudes and non-zero
  counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import ConvLayerSpec


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``total_bits`` including the sign."""

    total_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("a signed fixed-point format needs at least 2 bits")
        if not 0 <= self.fraction_bits < self.total_bits:
            raise ValueError(
                f"fraction_bits must be in [0, {self.total_bits}), got "
                f"{self.fraction_bits}"
            )

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** -self.fraction_bits

    @property
    def max_value(self) -> float:
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.total_bits - 1)) * self.scale


# The paper's datapath widths.
WEIGHT_FORMAT = FixedPointFormat(total_bits=16, fraction_bits=14)
ACTIVATION_FORMAT = FixedPointFormat(total_bits=16, fraction_bits=12)
ACCUMULATOR_FORMAT = FixedPointFormat(total_bits=24, fraction_bits=12)


def quantize(tensor: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Round ``tensor`` to the fixed-point grid of ``fmt`` (with saturation).

    Zero always maps to zero, so quantization never changes the sparsity
    pattern — the property the compressed formats rely on.
    """
    tensor = np.asarray(tensor, dtype=float)
    quantized = np.round(tensor / fmt.scale) * fmt.scale
    return np.clip(quantized, fmt.min_value, fmt.max_value)


def quantization_error(tensor: np.ndarray, fmt: FixedPointFormat) -> float:
    """Largest absolute element-wise error introduced by quantization."""
    tensor = np.asarray(tensor, dtype=float)
    if tensor.size == 0:
        return 0.0
    return float(np.abs(quantize(tensor, fmt) - tensor).max())


@dataclass(frozen=True)
class HeadroomReport:
    """Worst-case accumulator occupancy of one layer."""

    worst_case_sum: float
    accumulator_limit: float
    headroom_bits: float
    overflows: bool


def accumulator_headroom(
    spec: ConvLayerSpec,
    weights: np.ndarray,
    activations: np.ndarray,
    fmt: FixedPointFormat = ACCUMULATOR_FORMAT,
) -> HeadroomReport:
    """Check whether a layer's partial sums can overflow the accumulator.

    Uses a safe (conservative) bound: the largest output magnitude is at most
    ``max|w| * max|a| * (non-zero products per output)``, where the per-output
    product count is bounded by the reduction depth ``C' x R x S``.
    """
    weights = np.asarray(weights, dtype=float)
    activations = np.asarray(activations, dtype=float)
    reduction_depth = (
        (spec.in_channels // spec.groups) * spec.filter_height * spec.filter_width
    )
    max_weight = float(np.abs(weights).max()) if weights.size else 0.0
    max_activation = float(np.abs(activations).max()) if activations.size else 0.0
    worst_case = max_weight * max_activation * reduction_depth
    limit = fmt.max_value
    headroom = float("inf")
    if worst_case > 0:
        headroom = np.log2(limit / worst_case) if worst_case < limit else -np.log2(
            worst_case / limit
        )
    return HeadroomReport(
        worst_case_sum=worst_case,
        accumulator_limit=limit,
        headroom_bits=float(headroom),
        overflows=worst_case > limit,
    )


def quantize_workload(
    weights: np.ndarray,
    activations: np.ndarray,
    *,
    weight_format: FixedPointFormat = WEIGHT_FORMAT,
    activation_format: FixedPointFormat = ACTIVATION_FORMAT,
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize a layer workload to the paper's operand formats."""
    return quantize(weights, weight_format), quantize(activations, activation_format)
