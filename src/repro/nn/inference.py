"""Workload construction: sparse weights and activations for every layer.

Two ways of obtaining activation sparsity are provided:

* :func:`generate_activations` draws a spatially-correlated non-zero pattern
  at a calibrated density for each layer independently.  This mirrors how the
  paper drives its simulator: per-layer activation maps captured from Caffe,
  whose only architecturally relevant properties are density and spatial
  clustering.
* :func:`run_forward` chains dense convolution + ReLU (+ max pooling where the
  catalogue shapes require downsampling) so activations genuinely flow from
  one layer to the next, exercising the IARAM/OARAM swap path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.densities import LayerSparsity, network_sparsity
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network
from repro.nn.pruning import generate_pruned_weights
from repro.nn.reference import conv2d_layer, max_pool2d, relu


@dataclass
class LayerWorkload:
    """Everything a simulator needs to process one layer.

    Attributes:
        spec: layer shape.
        weights: dense weight tensor ``(K, C/groups, S, R)`` with pruned zeros.
        activations: dense input activation tensor ``(C, H, W)`` with ReLU zeros.
        target: the calibrated densities this workload was generated to hit.
    """

    spec: ConvLayerSpec
    weights: np.ndarray
    activations: np.ndarray
    target: LayerSparsity

    @property
    def weight_density(self) -> float:
        return float(np.count_nonzero(self.weights)) / self.weights.size

    @property
    def activation_density(self) -> float:
        return float(np.count_nonzero(self.activations)) / self.activations.size

    @property
    def nonzero_multiplies(self) -> int:
        """Multiplies with both operands non-zero (the oracle work bound).

        Computed exactly by convolving the operand non-zero masks, so it
        accounts for boundary effects that the density product misses.
        """
        weight_mask = (self.weights != 0).astype(float)
        act_mask = (self.activations != 0).astype(float)
        products = conv2d_layer(act_mask, weight_mask, self.spec)
        return int(round(products.sum()))

    @property
    def dense_multiplies(self) -> int:
        return self.spec.multiplies


def _smooth(field: np.ndarray, radius: int) -> np.ndarray:
    """Box-filter each plane of ``field`` to introduce spatial correlation."""
    if radius <= 0:
        return field
    size = 2 * radius + 1
    padded = np.pad(field, ((0, 0), (radius, radius), (radius, radius)), mode="edge")
    # Separable box filter via cumulative sums along each spatial axis.
    csum = np.cumsum(padded, axis=1)
    vert = csum[:, size - 1 :, :].copy()
    vert[:, 1:, :] -= csum[:, : -size, :]
    csum = np.cumsum(vert, axis=2)
    horiz = csum[:, :, size - 1 :].copy()
    horiz[:, :, 1:] -= csum[:, :, : -size]
    return horiz / (size * size)


def generate_activations(
    spec: ConvLayerSpec,
    density: float,
    rng: Optional[np.random.Generator] = None,
    *,
    correlation_radius: int = 1,
) -> np.ndarray:
    """Synthetic input activations with the requested non-zero density.

    ReLU outputs are non-negative and spatially clustered (neighbouring pixels
    of a feature map tend to fire together); the generator reproduces both
    properties by thresholding a smoothed noise field at the density quantile
    and assigning positive magnitudes to the surviving positions.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = rng or np.random.default_rng()
    shape = spec.input_shape
    magnitudes = np.abs(rng.normal(0.0, 1.0, size=shape)) + 1e-6
    if density >= 1.0:
        return magnitudes
    field = _smooth(rng.normal(0.0, 1.0, size=shape), correlation_radius)
    threshold = np.quantile(field, 1.0 - density)
    mask = field > threshold
    # Quantile ties can leave the density slightly off; fix up by flipping the
    # minimum number of positions.
    want = int(round(density * magnitudes.size))
    have = int(mask.sum())
    flat_mask = mask.reshape(-1)
    if have > want:
        on_positions = np.flatnonzero(flat_mask)
        drop = rng.choice(on_positions, size=have - want, replace=False)
        flat_mask[drop] = False
    elif have < want:
        off_positions = np.flatnonzero(~flat_mask)
        add = rng.choice(off_positions, size=want - have, replace=False)
        flat_mask[add] = True
    return magnitudes * flat_mask.reshape(shape)


def build_layer_workload(
    network_name: str,
    spec: ConvLayerSpec,
    sparsity: LayerSparsity,
    rng: Optional[np.random.Generator] = None,
) -> LayerWorkload:
    """Materialise weights and activations for one layer at calibrated densities."""
    rng = rng or np.random.default_rng()
    weights = generate_pruned_weights(spec, sparsity.weight_density, rng)
    activations = generate_activations(spec, sparsity.activation_density, rng)
    return LayerWorkload(
        spec=spec, weights=weights, activations=activations, target=sparsity
    )


def build_network_workloads(
    network: Network,
    sparsity: Optional[Dict[str, LayerSparsity]] = None,
    seed: int = 0,
) -> List[LayerWorkload]:
    """Materialise every layer of ``network`` at its calibrated densities.

    A fixed seed keeps the experiments reproducible run to run; each layer
    gets an independent substream so layers can also be built in isolation.
    """
    sparsity = sparsity if sparsity is not None else network_sparsity(network)
    workloads = []
    for index, spec in enumerate(network.layers):
        rng = np.random.default_rng([seed, index])
        layer_sparsity = sparsity.get(spec.name)
        if layer_sparsity is None:
            raise KeyError(f"no sparsity calibration for layer {spec.name!r}")
        workloads.append(
            build_layer_workload(network.name, spec, layer_sparsity, rng)
        )
    return workloads


@dataclass
class ForwardResult:
    """Output of a chained forward pass through consecutive layers."""

    layer_name: str
    output: np.ndarray
    output_density: float


def run_forward(
    network: Network,
    weights: Sequence[np.ndarray],
    input_activations: np.ndarray,
) -> List[ForwardResult]:
    """Chain dense convolution + ReLU through a *sequential* network.

    Max pooling is inserted automatically whenever the next layer's catalogue
    input extent is smaller than the current output extent (AlexNet and VGG
    use 3x3/2 and 2x2/2 pooling respectively; both are recovered from the
    extent ratio).  Branching networks such as GoogLeNet are not supported.
    """
    if len(weights) != len(network.layers):
        raise ValueError(
            f"{network.name} has {len(network.layers)} layers, got "
            f"{len(weights)} weight tensors"
        )
    results: List[ForwardResult] = []
    current = np.asarray(input_activations, dtype=float)
    for index, (spec, layer_weights) in enumerate(zip(network.layers, weights)):
        if current.shape != spec.input_shape:
            raise ValueError(
                f"layer {spec.name} expects input {spec.input_shape}, got "
                f"{current.shape}"
            )
        output = relu(conv2d_layer(current, layer_weights, spec))
        density = float(np.count_nonzero(output)) / output.size
        results.append(
            ForwardResult(layer_name=spec.name, output=output, output_density=density)
        )
        if index + 1 < len(network.layers):
            next_spec = network.layers[index + 1]
            current = _match_next_layer(output, spec, next_spec)
    return results


def _match_next_layer(
    output: np.ndarray, spec: ConvLayerSpec, next_spec: ConvLayerSpec
) -> np.ndarray:
    """Downsample ``output`` so it matches the next layer's catalogue extent."""
    if next_spec.in_channels != spec.out_channels:
        raise ValueError(
            f"layer {next_spec.name} expects {next_spec.in_channels} input "
            f"channels but {spec.name} produces {spec.out_channels}; "
            "run_forward only supports sequential networks"
        )
    out_extent = output.shape[1]
    target = next_spec.input_height
    if target == out_extent:
        return output
    if target > out_extent:
        raise ValueError(
            f"layer {next_spec.name} expects a larger plane ({target}) than "
            f"{spec.name} produces ({out_extent})"
        )
    # Try the two pooling shapes used by the catalogue networks.
    for window, stride in ((3, 2), (2, 2)):
        if (out_extent - window) // stride + 1 == target:
            return max_pool2d(output, window, stride)
    raise ValueError(
        f"cannot bridge extent {out_extent} -> {target} between {spec.name} "
        f"and {next_spec.name} with a standard pooling window"
    )
