"""First-class descriptions of the dataflows the paper compares.

Three dataflows appear in the evaluation:

* **PT-IS-CP-dense** — the dense planar-tiled, input-stationary, Cartesian-
  product dataflow of Section III-A (the stepping stone to the sparse one).
* **PT-IS-CP-sparse** — the SCNN dataflow: same structure, but only non-zero
  weights and activations are fetched, and output coordinates come from the
  compressed-format indices (Section III-B).
* **PT-IS-DP-dense** — the dense *dot-product* variant used by the DCNN and
  DCNN-opt baselines (Section V): same tiling and input-stationarity, but the
  inner operation is a dot product over contiguous dense vectors, so zero
  operands still occupy multiplier slots.

Two single-operand ablations of the sparse dataflow round out the catalogue
(the SCNN-SparseW / SCNN-SparseA variants of the paper's evaluation): each
keeps the Cartesian-product structure but compresses — and skips zeros of —
only one operand, with the other delivered dense.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.loopnest import INPUT_STATIONARY_NEST, LoopNest


@dataclass(frozen=True)
class Dataflow:
    """Static description of a CNN accelerator dataflow.

    Attributes:
        name: the paper's name for the dataflow.
        temporal_order: single-PE temporal loop nest.
        inner_operation: ``"cartesian"`` (F x I all-pairs products) or
            ``"dot"`` (F-wide dot product).
        weights_compressed: weights delivered in compressed-sparse form.
        activations_compressed: activations kept compressed end to end.
        skips_zero_weights: zero weights never occupy a multiplier.
        skips_zero_activations: zero activations never occupy a multiplier.
        gates_zero_operands: multiplier data-gated (energy saved, cycle not)
            when an operand is zero — the DCNN-opt optimisation.
        compresses_dram_traffic: activations compressed on the DRAM interface
            (also a DCNN-opt optimisation; SCNN gets it for free).
    """

    name: str
    temporal_order: LoopNest
    inner_operation: str
    weights_compressed: bool
    activations_compressed: bool
    skips_zero_weights: bool
    skips_zero_activations: bool
    gates_zero_operands: bool
    compresses_dram_traffic: bool

    def __post_init__(self) -> None:
        if self.inner_operation not in ("cartesian", "dot"):
            raise ValueError(
                f"inner_operation must be 'cartesian' or 'dot', got "
                f"{self.inner_operation!r}"
            )

    @property
    def is_sparse(self) -> bool:
        """True when the dataflow skips compute for zero operands."""
        return self.skips_zero_weights or self.skips_zero_activations

    def effective_work_fraction(
        self, weight_density: float, activation_density: float
    ) -> float:
        """Fraction of the dense multiply count that occupies multiplier slots."""
        fraction = 1.0
        if self.skips_zero_weights:
            fraction *= weight_density
        if self.skips_zero_activations:
            fraction *= activation_density
        return fraction


PT_IS_CP_DENSE = Dataflow(
    name="PT-IS-CP-dense",
    temporal_order=INPUT_STATIONARY_NEST,
    inner_operation="cartesian",
    weights_compressed=False,
    activations_compressed=False,
    skips_zero_weights=False,
    skips_zero_activations=False,
    gates_zero_operands=False,
    compresses_dram_traffic=False,
)

PT_IS_CP_SPARSE = Dataflow(
    name="PT-IS-CP-sparse",
    temporal_order=INPUT_STATIONARY_NEST,
    inner_operation="cartesian",
    weights_compressed=True,
    activations_compressed=True,
    skips_zero_weights=True,
    skips_zero_activations=True,
    gates_zero_operands=False,
    compresses_dram_traffic=True,
)

PT_IS_CP_SPARSE_W = Dataflow(
    name="PT-IS-CP-sparse-w",
    temporal_order=INPUT_STATIONARY_NEST,
    inner_operation="cartesian",
    weights_compressed=True,
    activations_compressed=False,
    skips_zero_weights=True,
    skips_zero_activations=False,
    gates_zero_operands=False,
    compresses_dram_traffic=False,
)

PT_IS_CP_SPARSE_A = Dataflow(
    name="PT-IS-CP-sparse-a",
    temporal_order=INPUT_STATIONARY_NEST,
    inner_operation="cartesian",
    weights_compressed=False,
    activations_compressed=True,
    skips_zero_weights=False,
    skips_zero_activations=True,
    gates_zero_operands=False,
    compresses_dram_traffic=False,
)

PT_IS_DP_DENSE = Dataflow(
    name="PT-IS-DP-dense",
    temporal_order=INPUT_STATIONARY_NEST,
    inner_operation="dot",
    weights_compressed=False,
    activations_compressed=False,
    skips_zero_weights=False,
    skips_zero_activations=False,
    gates_zero_operands=False,
    compresses_dram_traffic=False,
)

PT_IS_DP_DENSE_OPT = Dataflow(
    name="PT-IS-DP-dense-opt",
    temporal_order=INPUT_STATIONARY_NEST,
    inner_operation="dot",
    weights_compressed=False,
    activations_compressed=False,
    skips_zero_weights=False,
    skips_zero_activations=False,
    gates_zero_operands=True,
    compresses_dram_traffic=True,
)
