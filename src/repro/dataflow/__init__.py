"""Dataflow descriptions: loop nests, planar tiling and the PT-IS-CP family."""

from repro.dataflow.dataflows import (
    PT_IS_CP_DENSE,
    PT_IS_CP_SPARSE,
    PT_IS_DP_DENSE,
    Dataflow,
)
from repro.dataflow.loopnest import LoopNest, execute_loop_nest
from repro.dataflow.tiling import (
    TilingPlan,
    activation_tile_nonzeros,
    pe_grid_for,
    plan_layer,
    weight_group_nonzeros,
)

__all__ = [
    "Dataflow",
    "LoopNest",
    "PT_IS_CP_DENSE",
    "PT_IS_CP_SPARSE",
    "PT_IS_DP_DENSE",
    "TilingPlan",
    "activation_tile_nonzeros",
    "execute_loop_nest",
    "pe_grid_for",
    "plan_layer",
    "weight_group_nonzeros",
]
