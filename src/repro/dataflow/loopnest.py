"""The 7-dimensional CNN loop nest (paper Figure 3) and its permutations.

A CNN layer is a loop nest over ``N, K, C, W, H, R, S``; because multiply-add
is associative every permutation computes the same result.  This module gives
that nest a first-class representation so dataflows can be described as loop
orderings, and provides a direct (slow, element-by-element) executor used to
cross-check the reference convolution and the functional simulator on tiny
shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.nn.layers import ConvLayerSpec

LOOP_VARIABLES: Tuple[str, ...] = ("N", "K", "C", "W", "H", "R", "S")


@dataclass(frozen=True)
class LoopNest:
    """An ordering of the seven CNN loop variables.

    The paper writes orderings as ``N -> K -> C -> W -> H -> R -> S``; here the
    ordering is a tuple from outermost to innermost.
    """

    order: Tuple[str, ...]

    def __post_init__(self) -> None:
        if sorted(self.order) != sorted(LOOP_VARIABLES):
            raise ValueError(
                f"loop order must be a permutation of {LOOP_VARIABLES}, got "
                f"{self.order}"
            )

    @classmethod
    def from_string(cls, text: str) -> "LoopNest":
        """Parse an ``"N -> K -> C -> W -> H -> R -> S"`` style description."""
        order = tuple(part.strip().upper() for part in text.split("->"))
        return cls(order)

    def __str__(self) -> str:
        return " -> ".join(self.order)

    def position(self, variable: str) -> int:
        """Nesting depth (0 = outermost) of ``variable``."""
        return self.order.index(variable.upper())

    def is_input_stationary(self) -> bool:
        """True when every input-activation index varies outside ``K, R, S``.

        Input-stationary order (the "IS" in PT-IS-CP) holds one input
        activation at the multipliers while it meets all the weights it must
        be multiplied by, i.e. the ``K``, ``R`` and ``S`` loops are the
        innermost ones.
        """
        inner = set(self.order[-3:])
        return inner == {"K", "R", "S"}


# The nest from the paper's Figure 3.
REFERENCE_NEST = LoopNest(("N", "K", "C", "W", "H", "R", "S"))
# The single-multiplier temporal order of PT-IS-CP (Section III-A).
INPUT_STATIONARY_NEST = LoopNest(("N", "C", "W", "H", "K", "R", "S"))


def loop_bounds(spec: ConvLayerSpec) -> Dict[str, int]:
    """Loop trip counts for one layer (batch N fixed at 1, as in the paper)."""
    return {
        "N": 1,
        "K": spec.out_channels,
        "C": spec.in_channels // spec.groups,
        "W": spec.output_width,
        "H": spec.output_height,
        "R": spec.filter_width,
        "S": spec.filter_height,
    }


def execute_loop_nest(
    spec: ConvLayerSpec,
    activations: np.ndarray,
    weights: np.ndarray,
    nest: LoopNest = REFERENCE_NEST,
) -> np.ndarray:
    """Execute the convolution one multiply-accumulate at a time.

    This is the literal translation of the paper's Figure 3 (generalised to
    stride, padding and groups) and is deliberately unoptimised: it exists to
    validate the vectorised reference and the functional simulator on small
    layers, and to demonstrate that every loop permutation yields the same
    result.
    """
    activations = np.asarray(activations, dtype=float)
    weights = np.asarray(weights, dtype=float)
    bounds = loop_bounds(spec)
    output = np.zeros(spec.output_shape, dtype=float)
    k_per_group = spec.out_channels // spec.groups
    c_per_group = spec.in_channels // spec.groups

    ranges = [range(bounds[var]) for var in nest.order]
    for indices in product(*ranges):
        point = dict(zip(nest.order, indices))
        k = point["K"]
        c = point["C"]
        out_x = point["W"]
        out_y = point["H"]
        r = point["R"]
        s = point["S"]
        group = k // k_per_group
        in_x = out_x * spec.stride - spec.padding + r
        in_y = out_y * spec.stride - spec.padding + s
        if not (0 <= in_x < spec.input_width and 0 <= in_y < spec.input_height):
            continue
        in_channel = group * c_per_group + c
        output[k, out_y, out_x] += (
            activations[in_channel, in_y, in_x] * weights[k, c, s, r]
        )
    return output


def blocked_output_channels(out_channels: int, group_size: int) -> Iterable[Tuple[int, int]]:
    """Yield ``(k_lo, k_hi)`` bounds of each output-channel group.

    Factoring ``K`` into ``K/Kc`` outer iterations over groups of ``Kc``
    channels is the blocking step of PT-IS-CP (Section III-A): only one
    group's weights and partial sums live in the PE buffers at a time.
    """
    if group_size <= 0:
        raise ValueError("group size must be positive")
    for k_lo in range(0, out_channels, group_size):
        yield k_lo, min(out_channels, k_lo + group_size)
