"""Planar tiling of a layer across the PE array (the "PT" in PT-IS-CP).

The activation plane is split into ``Wt x Ht`` tiles, one per PE; each tile
extends through all input channels.  Because the convolution window slides
across tile boundaries, each PE's output region overlaps its neighbours' by a
halo whose partial sums are exchanged at the end of every output-channel
group (the paper uses output halos).

This module also provides the fast, fully vectorised non-zero-count queries
the cycle-level model is built on, so whole networks can be simulated without
materialising compressed blocks in Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.nn.layers import ConvLayerSpec
from repro.tensor.coordinates import halo_extent
from repro.tensor.formats import TileExtent, partition_plane


def pe_grid_for(num_pes: int) -> Tuple[int, int]:
    """Choose the most square ``rows x cols`` grid with ``rows * cols == num_pes``."""
    if num_pes <= 0:
        raise ValueError("number of PEs must be positive")
    rows = int(np.sqrt(num_pes))
    while rows > 1 and num_pes % rows:
        rows -= 1
    return rows, num_pes // rows


@dataclass(frozen=True)
class TilingPlan:
    """How one layer is mapped onto the PE array.

    Attributes:
        spec: the layer being mapped.
        pe_rows, pe_cols: PE array grid.
        group_size: output-channel group size ``Kc``.
        input_tiles: planar extent of each PE's input tile (row-major PE order).
        output_tiles: planar extent of each PE's owned output region.
        halo_width: output columns/rows of partial sums spilled to a neighbour.
    """

    spec: ConvLayerSpec
    pe_rows: int
    pe_cols: int
    group_size: int
    input_tiles: Tuple[TileExtent, ...]
    output_tiles: Tuple[TileExtent, ...]
    halo_width: int
    halo_height: int

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def num_groups(self) -> int:
        return -(-self.spec.out_channels // self.group_size)

    def group_channels(self, group: int) -> Tuple[int, ...]:
        k_lo = group * self.group_size
        k_hi = min(self.spec.out_channels, k_lo + self.group_size)
        return tuple(range(k_lo, k_hi))

    def accumulator_entries_per_group(self) -> int:
        """Dense partial-sum entries a PE holds for one output-channel group.

        The accumulator covers the PE's owned output tile plus the output
        halo on each side (paper: ``Kc x (Wt + R - 1) x (Ht + S - 1)``).
        """
        widest = max(tile.width for tile in self.output_tiles)
        tallest = max(tile.height for tile in self.output_tiles)
        return (
            self.group_size
            * (widest + 2 * self.halo_width)
            * (tallest + 2 * self.halo_height)
        )

    def halo_fraction(self) -> float:
        """Fraction of accumulator entries that lie in the halo region."""
        widest = max(tile.width for tile in self.output_tiles)
        tallest = max(tile.height for tile in self.output_tiles)
        owned = widest * tallest
        total = (widest + 2 * self.halo_width) * (tallest + 2 * self.halo_height)
        if total == 0:
            return 0.0
        return 1.0 - owned / total


def plan_layer(
    spec: ConvLayerSpec,
    *,
    num_pes: int = 64,
    group_size: int = 8,
    pe_rows: int | None = None,
    pe_cols: int | None = None,
) -> TilingPlan:
    """Build the tiling plan of one layer for a given PE array size.

    The input plane is split as evenly as possible across the PE grid.  Small
    layers (planes smaller than the grid) simply leave some PEs without work,
    which is exactly the load-imbalance effect the paper's Figure 9 reports.

    Plans are memoised on ``(spec, num_pes, group_size, pe_rows, pe_cols)``:
    a DSE sweep re-plans the identical (layer, PE-grid) pair for every
    multiplier-array or accumulator-banking variant, so repeated requests
    return the same frozen :class:`TilingPlan` instance.
    """
    if pe_rows is None or pe_cols is None:
        pe_rows, pe_cols = pe_grid_for(num_pes)
    return _plan_layer_cached(spec, num_pes, group_size, pe_rows, pe_cols)


@lru_cache(maxsize=4096)
def _plan_layer_cached(
    spec: ConvLayerSpec, num_pes: int, group_size: int, pe_rows: int, pe_cols: int
) -> TilingPlan:
    rows = min(pe_rows, spec.input_height)
    cols = min(pe_cols, spec.input_width)
    # Keep the grid size constant (idle PEs get empty tiles) so barrier and
    # utilization statistics are computed over the physical array.
    input_tiles = _padded_tiles(
        partition_plane(spec.input_height, spec.input_width, rows, cols),
        pe_rows,
        pe_cols,
        rows,
        cols,
    )
    output_tiles = _padded_tiles(
        partition_plane(spec.output_height, spec.output_width, rows, cols),
        pe_rows,
        pe_cols,
        rows,
        cols,
    )
    return TilingPlan(
        spec=spec,
        pe_rows=pe_rows,
        pe_cols=pe_cols,
        group_size=group_size,
        input_tiles=tuple(input_tiles),
        output_tiles=tuple(output_tiles),
        halo_width=halo_extent(spec.filter_width, spec.stride),
        halo_height=halo_extent(spec.filter_height, spec.stride),
    )


def _padded_tiles(
    tiles: List[TileExtent],
    pe_rows: int,
    pe_cols: int,
    used_rows: int,
    used_cols: int,
) -> List[TileExtent]:
    """Expand a ``used_rows x used_cols`` tile list to the full PE grid.

    PEs outside the used sub-grid receive empty tiles so every per-PE array
    in the cycle model has one entry per physical PE.
    """
    if used_rows == pe_rows and used_cols == pe_cols:
        return tiles
    grid: List[TileExtent] = []
    for r in range(pe_rows):
        for c in range(pe_cols):
            if r < used_rows and c < used_cols:
                grid.append(tiles[r * used_cols + c])
            else:
                grid.append(TileExtent(row=r, col=c, x_lo=0, x_hi=0, y_lo=0, y_hi=0))
    return grid


def _integral_image(mask: np.ndarray) -> np.ndarray:
    """Exclusive 2-D prefix sums of a ``(C, H, W)`` mask: shape ``(C, H+1, W+1)``.

    ``S[:, y, x]`` is the number of non-zeros in ``mask[:, :y, :x]``, so any
    rectangle count is four lookups — the key to evaluating all per-PE tile
    counts at once instead of slicing per tile.
    """
    padded = np.zeros(
        (mask.shape[0], mask.shape[1] + 1, mask.shape[2] + 1), dtype=np.int64
    )
    inner = padded[:, 1:, 1:]
    np.cumsum(mask, axis=1, dtype=np.int64, out=inner)
    np.cumsum(inner, axis=2, out=inner)
    return padded


def _tile_bounds(plan: TilingPlan) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-PE ``(y_lo, y_hi, x_lo, x_hi)`` arrays of the plan's input tiles."""
    y_lo = np.array([tile.y_lo for tile in plan.input_tiles], dtype=np.int64)
    y_hi = np.array([tile.y_hi for tile in plan.input_tiles], dtype=np.int64)
    x_lo = np.array([tile.x_lo for tile in plan.input_tiles], dtype=np.int64)
    x_hi = np.array([tile.x_hi for tile in plan.input_tiles], dtype=np.int64)
    return y_lo, y_hi, x_lo, x_hi


def _rectangle_counts(
    integral: np.ndarray,
    y_lo: np.ndarray,
    y_hi: np.ndarray,
    x_lo: np.ndarray,
    x_hi: np.ndarray,
) -> np.ndarray:
    """Count non-zeros of every (channel, rectangle) pair: shape ``(tiles, C)``."""
    counts = (
        integral[:, y_hi, x_hi]
        - integral[:, y_lo, x_hi]
        - integral[:, y_hi, x_lo]
        + integral[:, y_lo, x_lo]
    )
    return counts.T


def activation_phase_nonzeros(
    activations: np.ndarray, plan: TilingPlan, stride: int, padding: int = 0
) -> np.ndarray:
    """Non-zero activations per (PE, input channel, stride phase).

    For a strided convolution the Cartesian product is decomposed by stride
    phase: an activation at column ``x`` can only produce valid outputs with
    filter columns ``r`` satisfying ``(x + pad - r) % stride == 0``, so the
    activation stream of each (PE, channel) block is split into
    ``stride * stride`` phase sub-streams that each pair with exactly one
    weight phase sub-stream.  For ``stride == 1`` there is a single phase and
    this reduces to :func:`activation_tile_nonzeros`.

    All PEs are counted at once from a per-phase integral image, so the cost
    is independent of the PE-array size.

    Returns:
        Integer array of shape ``(num_pes, C, stride * stride)`` where the
        phase index is ``(y % stride) * stride + (x % stride)``.
    """
    activations = np.asarray(activations)
    if activations.ndim != 3:
        raise ValueError(f"expected (C, H, W) activations, got {activations.shape}")
    if stride <= 0:
        raise ValueError("stride must be positive")
    num_c = activations.shape[0]
    phases = stride * stride
    counts = np.zeros((plan.num_pes, num_c, phases), dtype=np.int64)
    if stride == 1:
        counts[:, :, 0] = activation_tile_nonzeros(activations, plan)
        return counts
    mask = activations != 0
    y_lo, y_hi, x_lo, x_hi = _tile_bounds(plan)
    for py in range(stride):
        for px in range(stride):
            # Rows y = py + stride*j of the tile map to rows [j0, j1) of the
            # phase-decimated plane; ceil divisions pick the first/last
            # decimated row inside [y_lo, y_hi) (and likewise for columns).
            decimated = _integral_image(mask[:, py::stride, px::stride])
            j0 = (y_lo - py + stride - 1) // stride
            j1 = (y_hi - py + stride - 1) // stride
            i0 = (x_lo - px + stride - 1) // stride
            i1 = (x_hi - px + stride - 1) // stride
            counts[:, :, py * stride + px] = _rectangle_counts(
                decimated, j0, np.maximum(j0, j1), i0, np.maximum(i0, i1)
            )
    return counts


def weight_phase_nonzeros(
    weights: np.ndarray,
    group_size: int,
    stride: int,
    padding: int = 0,
) -> np.ndarray:
    """Non-zero weights per (output-channel group, input channel, *activation* phase).

    The phase axis is indexed by the activation phase each weight sub-stream
    pairs with, so the cycle model can match activation and weight phase
    sub-streams element-wise: an activation at phase ``(py, px)`` pairs with
    weights whose filter offsets satisfy ``r % stride == (px + pad) % stride``
    and ``s % stride == (py + pad) % stride``.

    Returns:
        Integer array of shape ``(num_groups, C', stride * stride)``.
    """
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise ValueError(f"expected (K, C, S, R) weights, got {weights.shape}")
    if stride <= 0:
        raise ValueError("stride must be positive")
    num_k, num_c, filt_h, filt_w = weights.shape
    num_groups = -(-num_k // group_size)
    phases = stride * stride
    counts = np.zeros((num_groups, num_c, phases), dtype=np.int64)
    if stride == 1:
        counts[:, :, 0] = weight_group_nonzeros(weights, group_size)
        return counts
    mask = weights != 0
    for py in range(stride):
        for px in range(stride):
            s_phase = (py + padding) % stride
            r_phase = (px + padding) % stride
            sub = mask[:, :, s_phase::stride, r_phase::stride]
            per_channel = sub.reshape(num_k, num_c, -1).sum(axis=2)
            counts[:, :, py * stride + px] = _group_sums(per_channel, group_size)
    return counts


def weight_group_nonzeros(weights: np.ndarray, group_size: int) -> np.ndarray:
    """Non-zero weight count per (output-channel group, input channel).

    Args:
        weights: dense weights of shape ``(K, C', S, R)``.
        group_size: output-channel group size ``Kc``.

    Returns:
        Integer array of shape ``(num_groups, C')``.
    """
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise ValueError(f"expected (K, C, S, R) weights, got {weights.shape}")
    if group_size <= 0:
        raise ValueError("group size must be positive")
    num_k, num_c = weights.shape[:2]
    per_channel = np.count_nonzero(weights.reshape(num_k, num_c, -1), axis=2)
    return _group_sums(per_channel, group_size)


def _group_sums(per_channel: np.ndarray, group_size: int) -> np.ndarray:
    """Sum a ``(K, ...)`` array over output-channel groups: ``(ceil(K/Kc), ...)``.

    The K axis is zero-padded to a multiple of the group size so one reshape
    replaces the per-group Python loop.
    """
    num_k = per_channel.shape[0]
    num_groups = -(-num_k // group_size)
    pad = num_groups * group_size - num_k
    if pad:
        widths = [(0, pad)] + [(0, 0)] * (per_channel.ndim - 1)
        per_channel = np.pad(per_channel, widths)
    grouped = per_channel.reshape((num_groups, group_size) + per_channel.shape[1:])
    return grouped.sum(axis=1, dtype=np.int64)


def activation_tile_nonzeros(
    activations: np.ndarray, plan: TilingPlan
) -> np.ndarray:
    """Non-zero activation count per (PE, input channel).

    Args:
        activations: dense input activations of shape ``(C, H, W)``.
        plan: tiling plan whose input tiles define the per-PE regions.

    Returns:
        Integer array of shape ``(num_pes, C)``.
    """
    activations = np.asarray(activations)
    if activations.ndim != 3:
        raise ValueError(f"expected (C, H, W) activations, got {activations.shape}")
    integral = _integral_image(activations != 0)
    return _rectangle_counts(integral, *_tile_bounds(plan))


def activation_tile_totals(activations: np.ndarray, plan: TilingPlan) -> np.ndarray:
    """Dense element count per (PE, input channel) — the denominator of density."""
    num_c = np.asarray(activations).shape[0]
    totals = np.zeros((plan.num_pes, num_c), dtype=np.int64)
    for pe_index, tile in enumerate(plan.input_tiles):
        totals[pe_index] = tile.size
    return totals
