"""Analysis helpers: network characteristics, density statistics, reporting."""

from repro.analysis.aggregate import geometric_mean, weighted_mean
from repro.analysis.metrics import (
    DensityRow,
    NetworkCharacteristics,
    density_table,
    network_characteristics,
)
from repro.analysis.reporting import format_table, format_value

__all__ = [
    "DensityRow",
    "NetworkCharacteristics",
    "density_table",
    "format_table",
    "format_value",
    "geometric_mean",
    "network_characteristics",
    "weighted_mean",
]
