"""Analysis helpers: network characteristics, density statistics, reporting,
and JSON serialization of simulation results for transport."""

from repro.analysis.aggregate import geometric_mean, weighted_mean
from repro.analysis.metrics import (
    DensityRow,
    NetworkCharacteristics,
    density_table,
    network_characteristics,
)
from repro.analysis.reporting import format_table, format_value
from repro.analysis.serialization import (
    design_point_payload,
    design_points_payload,
    engine_run_payload,
    layer_payload,
    simulation_payload,
    to_jsonable,
)

__all__ = [
    "DensityRow",
    "NetworkCharacteristics",
    "density_table",
    "design_point_payload",
    "design_points_payload",
    "engine_run_payload",
    "format_table",
    "format_value",
    "geometric_mean",
    "layer_payload",
    "network_characteristics",
    "simulation_payload",
    "to_jsonable",
    "weighted_mean",
]
