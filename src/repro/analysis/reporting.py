"""Plain-text table formatting for experiment output.

Every experiment driver prints the rows or series of the paper table/figure
it reproduces; this module keeps that output consistent and readable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}g}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 3,
    title: str = "",
) -> str:
    """Format a list of rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(_line(list(headers)))
    lines.append(_line(["-" * width for width in widths]))
    lines.extend(_line(row) for row in rendered_rows)
    return "\n".join(lines)
