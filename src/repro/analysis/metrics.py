"""Network-level metrics: Table I characteristics and Figure 1 density rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.densities import LayerSparsity, network_sparsity
from repro.nn.inference import LayerWorkload
from repro.nn.networks import Network


@dataclass(frozen=True)
class NetworkCharacteristics:
    """One row of the paper's Table I."""

    name: str
    conv_layers: int
    max_layer_weight_mb: float
    max_layer_activation_mb: float
    total_multiplies_billions: float


def network_characteristics(network: Network) -> NetworkCharacteristics:
    """Compute the Table I row of one catalogue network."""
    mb = 1024.0 * 1024.0
    return NetworkCharacteristics(
        name=network.name,
        conv_layers=network.conv_layer_count,
        max_layer_weight_mb=network.max_layer_weight_bytes / mb,
        max_layer_activation_mb=network.max_layer_activation_bytes / mb,
        total_multiplies_billions=network.total_multiplies / 1e9,
    )


@dataclass(frozen=True)
class DensityRow:
    """One bar group of the paper's Figure 1."""

    layer: str
    module: str
    weight_density: float
    activation_density: float
    work_fraction: float

    @property
    def work_reduction(self) -> float:
        if self.work_fraction <= 0:
            return float("inf")
        return 1.0 / self.work_fraction


def density_table(
    network: Network,
    workloads: Optional[Sequence[LayerWorkload]] = None,
) -> List[DensityRow]:
    """Per-layer density rows (Figure 1).

    With ``workloads`` given, the densities are *measured* from the generated
    tensors; otherwise the calibration table is reported directly.
    """
    rows: List[DensityRow] = []
    if workloads is not None:
        for workload in workloads:
            wd = workload.weight_density
            ad = workload.activation_density
            rows.append(
                DensityRow(
                    layer=workload.spec.name,
                    module=workload.spec.module or workload.spec.name,
                    weight_density=wd,
                    activation_density=ad,
                    work_fraction=wd * ad,
                )
            )
        return rows
    calibration = network_sparsity(network)
    for spec in network.layers:
        sparsity: LayerSparsity = calibration[spec.name]
        rows.append(
            DensityRow(
                layer=spec.name,
                module=spec.module or spec.name,
                weight_density=sparsity.weight_density,
                activation_density=sparsity.activation_density,
                work_fraction=sparsity.work_fraction,
            )
        )
    return rows


def average_work_reduction(rows: Sequence[DensityRow], network: Network) -> float:
    """Multiply-weighted average work reduction across a network's layers."""
    weights = []
    reductions = []
    for row in rows:
        spec = network.layer(row.layer)
        weights.append(spec.multiplies)
        reductions.append(row.work_fraction)
    weights_arr = np.asarray(weights, dtype=float)
    fractions = np.asarray(reductions, dtype=float)
    if weights_arr.sum() == 0:
        return 1.0
    overall_fraction = float((weights_arr * fractions).sum() / weights_arr.sum())
    if overall_fraction <= 0:
        return float("inf")
    return 1.0 / overall_fraction
