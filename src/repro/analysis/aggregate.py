"""Aggregation helpers shared by the experiments."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (ignores non-positive entries)."""
    filtered = [value for value in values if value > 0 and np.isfinite(value)]
    if not filtered:
        return 0.0
    return float(np.exp(np.mean(np.log(filtered))))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean."""
    values_arr = np.asarray(values, dtype=float)
    weights_arr = np.asarray(weights, dtype=float)
    if values_arr.size == 0 or weights_arr.sum() == 0:
        return 0.0
    return float((values_arr * weights_arr).sum() / weights_arr.sum())


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive values."""
    filtered = [value for value in values if value > 0 and np.isfinite(value)]
    if not filtered:
        return 0.0
    return float(len(filtered) / np.sum(1.0 / np.asarray(filtered)))
