"""JSON serialization of simulation results, for transport.

The simulation service (:mod:`repro.service`) returns results over HTTP, so
every result a scenario can produce needs a canonical JSON form.  Two rules
govern the payload builders here:

* **Lossless numbers.** Python's ``json`` round-trips ``float`` values
  exactly (``repr``-based), so a payload built on the server and parsed by
  the client compares *bitwise-equal* to one built from the same simulation
  locally.  The end-to-end tests rely on this.
* **Metrics travel, tensors don't.** A network simulation's operand tensors
  are megabytes of regenerable data; the payloads carry every metric the
  experiment drivers read (cycles, speedups, utilization, energy breakdowns)
  plus the slim workload recipe, never the raw arrays.  ``to_jsonable`` is
  the generic fallback and *will* expand small arrays (per-PE cycle counts)
  into lists — callers with large arrays should summarise first.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.scnn.simulator import LayerSimulation, NetworkSimulation
from repro.timeloop.dse import DesignPoint, pareto_frontier


def to_jsonable(value: Any) -> Any:
    """Recursively reduce ``value`` to JSON-compatible Python data.

    Dataclasses become plain field dicts (underscore-prefixed fields — in
    process state such as a workload handle's materialised tensors — are
    dropped), numpy scalars become Python scalars, numpy arrays become
    nested lists, and mappings/sequences recurse.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if not field.name.startswith("_")
        }
    if isinstance(value, np.ndarray):
        return to_jsonable(value.tolist())
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize value of type {type(value).__name__}")


def layer_payload(layer: LayerSimulation) -> Dict[str, Any]:
    """Every metric the figure drivers read from one layer simulation."""
    return {
        "name": layer.layer_name,
        "module": layer.module,
        "scnn_cycles": int(layer.scnn.cycles),
        "dcnn_cycles": int(layer.dcnn.cycles),
        "oracle_cycles": int(layer.oracle_cycles),
        "products": int(layer.scnn.products),
        "scnn_speedup": layer.scnn_speedup,
        "oracle_speedup": layer.oracle_speedup,
        "multiplier_utilization": layer.scnn.multiplier_utilization,
        "idle_fraction": layer.scnn.idle_fraction,
        "conflict_stall_cycles": int(layer.scnn.conflict_stall_cycles),
        "weight_density": layer.workload.weight_density,
        "activation_density": layer.workload.activation_density,
        "output_density": layer.output_density,
        "energy": {
            name: {
                "total": breakdown.total,
                "components": to_jsonable(breakdown.components),
            }
            for name, breakdown in layer.energy.items()
        },
    }


def simulation_payload(simulation: NetworkSimulation) -> Dict[str, Any]:
    """The transport form of one full network simulation."""
    energy_names = sorted(
        {name for layer in simulation.layers for name in layer.energy}
    )
    return {
        "network": simulation.network.name,
        "layers": [layer_payload(layer) for layer in simulation.layers],
        "modules": simulation.modules(),
        "total_cycles": {
            which: int(simulation.total_cycles(which))
            for which in ("SCNN", "DCNN", "oracle")
        },
        "network_speedup": simulation.network_speedup,
        "oracle_network_speedup": simulation.oracle_network_speedup,
        "total_energy": {
            name: simulation.total_energy(name) for name in energy_names
        },
        "energy_ratio": {
            name: simulation.network_energy_ratio(name) for name in energy_names
        },
    }


def design_point_payload(point: DesignPoint) -> Dict[str, Any]:
    """The transport form of one evaluated design point."""
    return {
        "name": point.name,
        "config": to_jsonable(point.config),
        "cycles": point.cycles,
        "energy": point.energy,
        "area_mm2": point.area_mm2,
        "energy_delay_product": point.energy_delay_product,
    }


def design_points_payload(points: Sequence[DesignPoint]) -> Dict[str, Any]:
    """A DSE sweep's design points plus its Pareto frontier, by name."""
    return {
        "points": [design_point_payload(point) for point in points],
        "pareto_frontier": [point.name for point in pareto_frontier(points)],
    }


def comparison_payload(comparison: Any) -> Dict[str, Any]:
    """The transport form of one cross-architecture comparison.

    ``comparison`` is a :class:`repro.arch.compare.NetworkComparison`; the
    payload carries per-architecture totals and ratios, the per-module
    speedup/energy breakdown, and the per-layer metric rows.
    """
    names = list(comparison.architectures)
    modules = comparison.modules()
    return {
        "network": comparison.network,
        "seed": comparison.seed,
        "baseline": comparison.baseline,
        "architectures": names,
        "total_cycles": {name: int(comparison.total_cycles(name)) for name in names},
        "speedup": {name: comparison.speedup(name) for name in names},
        "total_energy": {name: comparison.total_energy(name) for name in names},
        "energy_ratio": {name: comparison.energy_ratio(name) for name in names},
        "oracle": {
            "total_cycles": int(comparison.oracle_total_cycles),
            "speedup": comparison.oracle_speedup,
        },
        "modules": [
            {
                "module": module,
                "speedup": {
                    name: comparison.module_speedup(module, name) for name in names
                },
                "energy_ratio": {
                    name: comparison.module_energy_ratio(module, name)
                    for name in names
                },
            }
            for module in modules
        ],
        "layers": {
            name: [to_jsonable(metrics) for metrics in comparison.layers[name]]
            for name in names
        },
    }


def engine_run_payload(run: Any) -> Dict[str, Any]:
    """The transport form of one :class:`repro.engine.EngineRun` grid."""
    config_names: List[str] = [config.name for config in run.configs]
    return {
        "workloads": [workload.spec.name for workload in run.workloads],
        "configs": config_names,
        "cycles": [[int(cell.cycles) for cell in row] for row in run.results],
        "products": [[int(cell.products) for cell in row] for row in run.results],
        "total_cycles": {name: int(run.total_cycles(name)) for name in config_names},
    }
