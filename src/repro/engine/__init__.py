"""Batched simulation engine: caching + process-pool sharding + vectorised models.

Public surface:

* :class:`SimulationEngine` — ``run(workloads, configs, parallel=N)`` for
  batched layer evaluation, ``run_network`` for full per-network simulations
  (what the figure experiments consume), ``run_architectures`` for
  workload x architecture grids evaluated through the registry's simulator
  adapters (what the ``compare`` sweeps consume), and ``sweep`` for parallel
  design-space exploration.
* :func:`default_engine` / :func:`configure_default_engine` — the shared
  engine instance the experiment layer and CLI route through.
* :class:`ResultCache` and :class:`WorkloadHandle` — the content-addressed
  on-disk store and the lazy workload recipe the engine is built on.

See ``docs/architecture.md`` for the design (vectorisation strategy,
sharding rules, cache invalidation).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.engine.cache import ResultCache, SCHEMA_VERSION, default_cache_dir, fingerprint
from repro.engine.core import ArchitectureRun, EngineRun, SimulationEngine
from repro.engine.parallel import parallel_map, resolve_workers
from repro.engine.workloads import WorkloadHandle

_default_engine: Optional[SimulationEngine] = None


def _env_parallel() -> Optional[int]:
    import os

    raw = os.environ.get("REPRO_PARALLEL")
    return int(raw) if raw else None


def default_engine() -> SimulationEngine:
    """The process-wide engine instance (created on first use).

    Honours ``REPRO_CACHE_DIR`` (disk cache root) and ``REPRO_PARALLEL``
    (default pool size) unless :func:`configure_default_engine` replaced it.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = SimulationEngine(parallel=_env_parallel())
    return _default_engine


def configure_default_engine(
    cache_dir: Union[None, bool, str, Path] = None,
    parallel: Optional[int] = None,
) -> SimulationEngine:
    """Replace the shared engine (CLI flags, notebooks, tests).

    ``parallel=None`` falls back to ``REPRO_PARALLEL``, mirroring how
    ``cache_dir=None`` falls back to ``REPRO_CACHE_DIR`` — reconfiguring one
    knob never silently discards the other's environment default.
    """
    global _default_engine
    if parallel is None:
        parallel = _env_parallel()
    _default_engine = SimulationEngine(cache_dir=cache_dir, parallel=parallel)
    return _default_engine


__all__ = [
    "ArchitectureRun",
    "EngineRun",
    "ResultCache",
    "SCHEMA_VERSION",
    "SimulationEngine",
    "WorkloadHandle",
    "configure_default_engine",
    "default_cache_dir",
    "default_engine",
    "fingerprint",
    "parallel_map",
    "resolve_workers",
]
