"""Lazy, picklable workload handles.

A :class:`WorkloadHandle` stands in for a :class:`~repro.nn.inference.LayerWorkload`
everywhere the simulators and experiments read one, but carries only the
*recipe* for the operand tensors — network name, seed, layer index, spec and
target densities — plus the measured densities.  The tensors themselves are
regenerated deterministically on first access (``np.random.default_rng([seed,
index])``, exactly as :func:`repro.nn.inference.build_network_workloads`
seeds each layer) and are dropped again when the handle is pickled.

This is what keeps both the process-pool path and the on-disk cache cheap:
results cross process and disk boundaries at a few hundred bytes per layer
instead of tens of megabytes of activation tensors, while ablation studies
that do need the raw tensors (``handle.weights`` / ``handle.activations``)
still get bit-identical arrays on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.nn.densities import LayerSparsity
from repro.nn.inference import LayerWorkload, build_layer_workload
from repro.nn.layers import ConvLayerSpec


@dataclass
class WorkloadHandle:
    """Slim stand-in for one layer's :class:`LayerWorkload`.

    Duck-type compatible with ``LayerWorkload`` for every attribute the
    simulators, experiments and benchmarks read (``spec``, ``target``,
    ``weights``, ``activations``, ``weight_density``, ``activation_density``,
    ``nonzero_multiplies``, ``dense_multiplies``).
    """

    network_name: str
    seed: int
    index: int
    spec: ConvLayerSpec
    target: LayerSparsity
    weight_density: float
    activation_density: float
    _materialized: Optional[LayerWorkload] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def wrap(
        cls, workload: LayerWorkload, network_name: str, seed: int, index: int
    ) -> "WorkloadHandle":
        """Wrap an already-built workload, keeping its tensors in memory."""
        return cls(
            network_name=network_name,
            seed=seed,
            index=index,
            spec=workload.spec,
            target=workload.target,
            weight_density=workload.weight_density,
            activation_density=workload.activation_density,
            _materialized=workload,
        )

    @classmethod
    def build(
        cls, network_name: str, seed: int, index: int, spec: ConvLayerSpec,
        target: LayerSparsity,
    ) -> "WorkloadHandle":
        """Generate the workload now and wrap it (workers use this form)."""
        handle = cls(
            network_name=network_name,
            seed=seed,
            index=index,
            spec=spec,
            target=target,
            weight_density=0.0,
            activation_density=0.0,
        )
        workload = handle.materialize()
        handle.weight_density = workload.weight_density
        handle.activation_density = workload.activation_density
        return handle

    def materialize(self) -> LayerWorkload:
        """The full workload, regenerating the tensors if necessary."""
        if self._materialized is None:
            rng = np.random.default_rng([self.seed, self.index])
            self._materialized = build_layer_workload(
                self.network_name, self.spec, self.target, rng
            )
        return self._materialized

    # -- LayerWorkload duck-type surface ---------------------------------------

    @property
    def weights(self) -> np.ndarray:
        return self.materialize().weights

    @property
    def activations(self) -> np.ndarray:
        return self.materialize().activations

    @property
    def nonzero_multiplies(self) -> int:
        return self.materialize().nonzero_multiplies

    @property
    def dense_multiplies(self) -> int:
        return self.spec.multiplies

    # -- pickling: never ship the tensors --------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_materialized"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
