"""The batched simulation engine.

:class:`SimulationEngine` is the single entry point for running layer and
network simulations and design-space sweeps.  It composes three layers:

* the **vectorised models** (:mod:`repro.scnn.cycles` over the integral-image
  tile counts of :mod:`repro.dataflow.tiling`) evaluate one layer without any
  Python-level element iteration;
* **process-pool sharding** (:mod:`repro.engine.parallel`) spreads
  independent layer simulations and candidate configurations across CPU
  cores, with results always assembled in submission order so parallel runs
  are bitwise-identical to serial ones;
* a **content-addressed result cache** (:mod:`repro.engine.cache`) memoises
  finished metrics in memory and, when a cache directory is configured, on
  disk keyed by a fingerprint of every input.

Workloads move between processes and cache entries as lazy
:class:`~repro.engine.workloads.WorkloadHandle` recipes, so neither the pool
nor the cache ever ships multi-megabyte activation tensors.
"""

from __future__ import annotations

import dataclasses
import functools
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.engine.cache import ResultCache, default_cache_dir, describe, fingerprint
from repro.engine.parallel import parallel_map
from repro.engine.workloads import WorkloadHandle
from repro.nn.densities import LayerSparsity, network_sparsity
from repro.nn.inference import LayerWorkload
from repro.nn.networks import Network
from repro.scnn.config import (
    AcceleratorConfig,
    DCNN_CONFIG,
    DCNN_OPT_CONFIG,
    SCNN_CONFIG,
)
from repro.scnn.cycles import LayerCycleResult, simulate_layer_cycles
from repro.scnn.simulator import LayerSimulation, NetworkSimulation, simulate_layer
from repro.timeloop.dse import (
    DesignPoint,
    evaluate_config,
    evaluate_configs,
    sweep_densities,
)
from repro.timeloop.energy import DEFAULT_ENERGY_TABLE, EnergyTable

AnyWorkload = Union[LayerWorkload, WorkloadHandle]

_CACHE_REQUESTS = obs.counter(
    "repro_engine_cache_requests_total",
    "Engine cache lookups by answering tier (memory, disk, or none=miss).",
    ("tier", "outcome"),
)
_ENGINE_RUNS = obs.counter(
    "repro_engine_runs_total", "Engine entry-point invocations.", ("method",)
)
_ENGINE_SECONDS = obs.histogram(
    "repro_engine_run_seconds", "Engine entry-point duration, seconds.", ("method",)
)


def _instrumented(method_name: str):
    """Wrap an engine entry point with a run counter, duration histogram,
    and an ``engine.<method>`` span on the current trace.

    When observability is disabled the wrapper costs one extra call and one
    flag check — the contract pinned by ``BENCH_observability_overhead``.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            if not obs.enabled():
                return func(self, *args, **kwargs)
            _ENGINE_RUNS.inc(method=method_name)
            start = time.monotonic()
            with obs.span(f"engine.{method_name}"):
                result = func(self, *args, **kwargs)
            _ENGINE_SECONDS.observe(time.monotonic() - start, method=method_name)
            return result

        return wrapper

    return decorate


# -- picklable worker functions (module level so the process pool can import
# -- them by reference) --------------------------------------------------------


def _build_handle_task(
    task: Tuple[str, int, int, object, LayerSparsity]
) -> WorkloadHandle:
    network_name, seed, index, spec, target = task
    return WorkloadHandle.build(network_name, seed, index, spec, target)


def _simulate_layer_task(
    task: Tuple[
        AnyWorkload,
        Optional[float],
        AcceleratorConfig,
        AcceleratorConfig,
        AcceleratorConfig,
        EnergyTable,
    ]
) -> LayerSimulation:
    workload, output_density, scnn_config, dcnn_config, dcnn_opt_config, table = task
    simulation = simulate_layer(
        workload,
        scnn_config=scnn_config,
        dcnn_config=dcnn_config,
        dcnn_opt_config=dcnn_opt_config,
        energy_table=table,
        output_density=output_density,
    )
    if isinstance(workload, WorkloadHandle):
        # Keep the slim handle as the simulation's workload so pickling the
        # result (pool return, disk cache) never ships the tensors.
        simulation = dataclasses.replace(simulation, workload=workload)
    return simulation


def _layer_cycles_task(
    task: Tuple[AnyWorkload, AcceleratorConfig]
) -> LayerCycleResult:
    workload, config = task
    return simulate_layer_cycles(
        workload.spec, workload.weights, workload.activations, config
    )


def _design_point_task(
    task: Tuple[AcceleratorConfig, Network, Dict[str, LayerSparsity], EnergyTable]
) -> DesignPoint:
    config, network, sparsity, table = task
    return evaluate_config(config, network, sparsity=sparsity, energy_table=table)


def _resolve_network_and_sparsity(
    network: Union[str, "Network"],
    sparsity: Optional[Dict[str, LayerSparsity]],
) -> Tuple["Network", Dict[str, LayerSparsity]]:
    """Shared name/sparsity resolution of ``run_network`` and ``sweep``.

    A workload *name* resolves through the registry (the spec's density
    profile supplies the table unless the caller overrides it); a bare
    :class:`Network` falls back to the measured Figure 1 calibration.
    """
    if isinstance(network, str):
        from repro.workloads.registry import resolve_network, resolve_workload

        if sparsity is None:
            return resolve_workload(network)
        network = resolve_network(network)
    elif sparsity is None:
        sparsity = network_sparsity(network)
    missing = [spec.name for spec in network.layers if spec.name not in sparsity]
    if missing:
        raise KeyError(
            f"sparsity table assigns no density to layer(s) "
            f"{', '.join(map(repr, missing))} of {network.name}"
        )
    return network, sparsity


def _architecture_layer_task(task):
    """Evaluate one (workload, architecture spec) cell via the spec's adapter."""
    # Imported here: repro.arch.adapters pulls the simulators in, and the
    # engine must stay importable from the low layers that the architecture
    # registry itself feeds (see repro.arch.__init__).
    from repro.arch.adapters import get_adapter

    workload, spec = task
    return get_adapter(spec.adapter).simulate_layer(workload, spec.config)


@dataclass
class EngineRun:
    """Result grid of one :meth:`SimulationEngine.run` call.

    ``results[i][j]`` is the cycle-model result of ``workloads[i]`` on
    ``configs[j]``.
    """

    workloads: List[AnyWorkload]
    configs: List[AcceleratorConfig]
    results: List[List[LayerCycleResult]]

    def column(self, config_name: str) -> List[LayerCycleResult]:
        """All per-workload results of the named configuration."""
        for j, config in enumerate(self.configs):
            if config.name == config_name:
                return [row[j] for row in self.results]
        known = ", ".join(repr(config.name) for config in self.configs) or "(none)"
        raise KeyError(
            f"no evaluated configuration named {config_name!r}; "
            f"this run evaluated: {known}"
        )

    def total_cycles(self, config_name: str) -> int:
        """Summed cycles of the named configuration across every workload."""
        return sum(result.cycles for result in self.column(config_name))


@dataclass
class ArchitectureRun:
    """Result grid of one :meth:`SimulationEngine.run_architectures` call.

    ``results[i][j]`` is the adapter result
    (:class:`repro.arch.adapters.ArchLayerResult`) of ``workloads[i]`` on
    ``architectures[j]``.
    """

    workloads: List[AnyWorkload]
    architectures: List[object]  # List[repro.arch.spec.ArchitectureSpec]
    results: List[List[object]]

    def column(self, architecture: str) -> List[object]:
        """All per-workload results of the named architecture."""
        for j, spec in enumerate(self.architectures):
            if spec.name == architecture:
                return [row[j] for row in self.results]
        known = ", ".join(repr(spec.name) for spec in self.architectures) or "(none)"
        raise KeyError(
            f"no evaluated architecture named {architecture!r}; "
            f"this run evaluated: {known}"
        )

    def total_cycles(self, architecture: str) -> int:
        """Summed cycles of the named architecture across every workload."""
        return sum(result.cycles for result in self.column(architecture))


class SimulationEngine:
    """Cached, optionally parallel front end to every simulation model.

    The engine is safe to share between threads: the simulation models are
    pure functions, and the memo table, counters and disk cache are guarded
    by one lock.  That is the surface the simulation service
    (:mod:`repro.service`) multiplexes concurrent jobs onto — many worker
    threads, one warm engine, one shared cache.  (Concurrent identical
    requests may both compute before one wins the store; both results are
    identical, so the race is benign.)

    Args:
        cache_dir: on-disk cache root.  ``None`` (default) reads the
            ``REPRO_CACHE_DIR`` environment variable; ``False`` disables the
            disk cache outright; a path enables it there.
        parallel: default process-pool size for all ``run*`` methods
            (``None``/``0``/``1`` = serial, ``-1`` = one worker per CPU).
            Each call can override it.
        cache_max_entries: optional bound on the on-disk cache; beyond it
            the least-recently-used entries are evicted.
        memory_max_entries: optional bound on the in-memory memo table,
            also LRU.  Long-lived processes serving requests with
            caller-controlled inputs (the service foremost) should set
            this — every distinct fingerprint otherwise pins its result
            in memory for the process lifetime.
    """

    def __init__(
        self,
        cache_dir: Union[None, bool, str, Path] = None,
        parallel: Optional[int] = None,
        cache_max_entries: Optional[int] = None,
        memory_max_entries: Optional[int] = None,
    ) -> None:
        if memory_max_entries is not None and memory_max_entries < 1:
            raise ValueError(
                "memory_max_entries must be positive (or None for unbounded)"
            )
        if cache_dir is None:
            resolved = default_cache_dir()
        elif cache_dir is False:
            resolved = None
        else:
            resolved = Path(cache_dir)
        self.disk_cache: Optional[ResultCache] = (
            ResultCache(resolved, max_entries=cache_max_entries)
            if resolved is not None
            else None
        )
        self.parallel = parallel
        self.memory_max_entries = memory_max_entries
        # Python dicts preserve insertion order; _lookup/_store reinsert on
        # use, which makes iteration order the LRU order.
        self._memory: Dict[str, object] = {}
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.memory_misses = 0
        self.memory_evictions = 0

    # -- cache plumbing ---------------------------------------------------------

    def _lookup(self, key: str):
        # The engine lock guards only the memo table and counters; disk I/O
        # (multi-megabyte pickle reads, LRU eviction scans) happens outside
        # it so one worker's cache traffic never stalls the others.
        # ResultCache is itself safe for concurrent readers and writers.
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self.memory_hits += 1
                if self.memory_max_entries is not None:
                    # Reinsert so the hit entry becomes most recently used.
                    del self._memory[key]
                    self._memory[key] = value
        if value is not None:
            _CACHE_REQUESTS.inc(tier="memory", outcome="hit")
            return value
        if self.disk_cache is not None:
            with obs.span("cache.get") as span:
                value = self.disk_cache.get(key)
                span.annotate(outcome="hit" if value is not None else "miss")
            if value is not None:
                with self._lock:
                    self._remember(key, value)
                _CACHE_REQUESTS.inc(tier="disk", outcome="hit")
                return value
        with self._lock:
            self.memory_misses += 1
        _CACHE_REQUESTS.inc(tier="none", outcome="miss")
        return None

    def _remember(self, key: str, value) -> None:
        """Insert into the memo table, evicting LRU entries past the bound.

        Caller holds ``self._lock``.
        """
        self._memory.pop(key, None)
        self._memory[key] = value
        if self.memory_max_entries is not None:
            while len(self._memory) > self.memory_max_entries:
                del self._memory[next(iter(self._memory))]
                self.memory_evictions += 1

    def _store(self, key: str, value) -> None:
        with self._lock:
            self._remember(key, value)
        if self.disk_cache is not None:
            with obs.span("cache.put"):
                self.disk_cache.put(key, value)

    def clear_cache(self) -> None:
        """Drop the in-memory memo table and every on-disk entry."""
        with self._lock:
            self._memory.clear()
        if self.disk_cache is not None:
            self.disk_cache.clear()

    def stats(self) -> Dict[str, object]:
        """Cache counters and the combined hit rate, as one JSON-able dict.

        A lookup counts as a ``hit`` when either tier answers (a disk hit
        that populates the memo table is one hit, not two) and as a ``miss``
        only when both tiers miss; ``hit_rate`` is ``hits / (hits + misses)``
        or 0.0 before the first lookup.  The service's ``/stats`` endpoint
        reports this dict verbatim.
        """
        with self._lock:
            counters: Dict[str, object] = {
                "memory_hits": self.memory_hits,
                "memory_misses": self.memory_misses,
                "memory_entries": len(self._memory),
                "memory_evictions": self.memory_evictions,
                "memory_max_entries": self.memory_max_entries,
            }
            hits = self.memory_hits
            misses = self.memory_misses
            if self.disk_cache is not None:
                counters["disk_hits"] = self.disk_cache.hits
                counters["disk_misses"] = self.disk_cache.misses
                counters["disk_evictions"] = self.disk_cache.evictions
                counters["disk_write_failures"] = self.disk_cache.write_failures
                counters["disk_max_entries"] = self.disk_cache.max_entries
                hits += self.disk_cache.hits
            counters["hits"] = hits
            counters["misses"] = misses
            lookups = hits + misses
            counters["hit_rate"] = hits / lookups if lookups else 0.0
        return counters

    def _workers(self, parallel: Optional[int]) -> Optional[int]:
        return self.parallel if parallel is None else parallel

    # -- network simulation -----------------------------------------------------

    @_instrumented("run_network")
    def run_network(
        self,
        network: Union[str, Network],
        seed: int = 0,
        *,
        sparsity: Optional[Dict[str, LayerSparsity]] = None,
        parallel: Optional[int] = None,
        scnn_config: AcceleratorConfig = SCNN_CONFIG,
        dcnn_config: AcceleratorConfig = DCNN_CONFIG,
        dcnn_opt_config: AcceleratorConfig = DCNN_OPT_CONFIG,
        energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
    ) -> NetworkSimulation:
        """Simulate every layer of ``network`` (SCNN + DCNN + oracle + energy).

        Equivalent to :func:`repro.scnn.simulator.simulate_network` — the
        metrics are bitwise-identical — but cached and shardable: workload
        generation and the per-layer simulations fan out across the process
        pool, and a repeated request is served from the cache.

        ``network`` accepts any registered workload name (resolved through
        :mod:`repro.workloads.registry`, which also supplies the workload's
        density profile) or a :class:`Network` object (measured Figure 1
        calibration).  ``sparsity`` overrides the per-layer density table
        either way — the hook the density-profile sweeps use.
        """
        network, sparsity = _resolve_network_and_sparsity(network, sparsity)
        key = fingerprint(
            "network-simulation",
            network=network,
            seed=seed,
            sparsity=sparsity,
            scnn=scnn_config,
            dcnn=dcnn_config,
            dcnn_opt=dcnn_opt_config,
            energy=energy_table,
        )
        cached = self._lookup(key)
        if cached is not None:
            return cached

        workers = self._workers(parallel)
        build_tasks = [
            (network.name, seed, index, spec, sparsity[spec.name])
            for index, spec in enumerate(network.layers)
        ]
        handles = parallel_map(_build_handle_task, build_tasks, workers)
        simulate_tasks = []
        for index, handle in enumerate(handles):
            output_density = (
                handles[index + 1].activation_density
                if index + 1 < len(handles)
                else None
            )
            simulate_tasks.append(
                (
                    handle,
                    output_density,
                    scnn_config,
                    dcnn_config,
                    dcnn_opt_config,
                    energy_table,
                )
            )
        layers = parallel_map(_simulate_layer_task, simulate_tasks, workers)
        simulation = NetworkSimulation(network=network, layers=layers)
        self._store(key, simulation)
        return simulation

    # -- batched layer evaluation -----------------------------------------------

    @_instrumented("run")
    def run(
        self,
        workloads: Sequence[AnyWorkload],
        configs: Optional[Sequence[AcceleratorConfig]] = None,
        *,
        parallel: Optional[int] = None,
    ) -> EngineRun:
        """Evaluate every workload on every configuration with the cycle model.

        The (workload, config) grid is flattened into independent tasks and
        sharded across the pool; each cell is individually content-addressed
        in the disk cache (synthetic workloads by their generative recipe,
        raw workloads by a digest of their tensors).
        """
        workloads = list(workloads)
        configs = list(configs) if configs is not None else [SCNN_CONFIG]
        cells: List[List[Optional[LayerCycleResult]]] = [
            [None] * len(configs) for _ in workloads
        ]
        # Describe each workload and config once up front — a raw workload's
        # description digests its tensors, which must not be repeated per
        # grid cell.  describe() output is canonical JSON data, so feeding it
        # back through fingerprint() is idempotent.
        workload_parts = [describe(workload) for workload in workloads]
        config_parts = [describe(config) for config in configs]
        pending: List[Tuple[int, int, str]] = []
        for i, workload in enumerate(workloads):
            for j, config in enumerate(configs):
                key = fingerprint(
                    "layer-cycles", workload=workload_parts[i], config=config_parts[j]
                )
                cached = self._lookup(key)
                if cached is not None:
                    cells[i][j] = cached
                else:
                    pending.append((i, j, key))
        results = parallel_map(
            _layer_cycles_task,
            [(workloads[i], configs[j]) for i, j, _ in pending],
            self._workers(parallel),
        )
        for (i, j, key), result in zip(pending, results):
            cells[i][j] = result
            self._store(key, result)
        return EngineRun(workloads=workloads, configs=configs, results=cells)

    @_instrumented("run_architectures")
    def run_architectures(
        self,
        workloads: Sequence[AnyWorkload],
        architectures: Sequence[object],
        *,
        parallel: Optional[int] = None,
        batched: bool = True,
    ) -> ArchitectureRun:
        """Evaluate every workload on every registered architecture.

        Like :meth:`run`, but each cell is evaluated through the
        architecture's simulator adapter (the common ``simulate_layer``
        surface of :mod:`repro.arch.adapters`) instead of the raw SCNN cycle
        model, so sparse and dense architectures — and any future family —
        mix freely in one grid.  ``architectures`` accepts registered names
        or :class:`~repro.arch.spec.ArchitectureSpec` objects; cells are
        individually content-addressed in the cache and shard across the
        process pool.

        Dense (``dot-product-dense``) columns are shape-only, so their
        pending cells are evaluated in one batched grid pass
        (:func:`repro.grid.dense_cycle_grid`) instead of the pool — bitwise
        the same results, without ever touching the operand tensors.
        ``batched=False`` forces every cell through its adapter.
        """
        from repro.arch.registry import get_architecture
        from repro.arch.spec import ArchitectureSpec

        workloads = list(workloads)
        specs = [
            spec if isinstance(spec, ArchitectureSpec) else get_architecture(spec)
            for spec in architectures
        ]
        cells: List[List[object]] = [[None] * len(specs) for _ in workloads]
        workload_parts = [describe(workload) for workload in workloads]
        spec_parts = [describe(spec) for spec in specs]
        pending: List[Tuple[int, int, str]] = []
        for i, workload in enumerate(workloads):
            for j, spec in enumerate(specs):
                key = fingerprint(
                    "architecture-layer",
                    workload=workload_parts[i],
                    architecture=spec_parts[j],
                )
                cached = self._lookup(key)
                if cached is not None:
                    cells[i][j] = cached
                else:
                    pending.append((i, j, key))
        if batched:
            dense_pending = [
                cell for cell in pending if specs[cell[1]].adapter == "dot-product-dense"
            ]
            if dense_pending:
                self._run_dense_columns(workloads, specs, dense_pending, cells)
                pending = [
                    cell
                    for cell in pending
                    if specs[cell[1]].adapter != "dot-product-dense"
                ]
        results = parallel_map(
            _architecture_layer_task,
            [(workloads[i], specs[j]) for i, j, _ in pending],
            self._workers(parallel),
        )
        for (i, j, key), result in zip(pending, results):
            cells[i][j] = result
            self._store(key, result)
        return ArchitectureRun(workloads=workloads, architectures=specs, results=cells)

    def _run_dense_columns(
        self,
        workloads: List[AnyWorkload],
        specs: List[object],
        pending: List[Tuple[int, int, str]],
        cells: List[List[object]],
    ) -> None:
        """Fill pending dense-adapter cells from one grid pass per column."""
        # Imported lazily for the same reason as _architecture_layer_task.
        from repro.arch.adapters import ArchLayerResult
        from repro.grid import dense_cycle_grid

        by_column: Dict[int, List[Tuple[int, str]]] = {}
        for i, j, key in pending:
            by_column.setdefault(j, []).append((i, key))
        for j, items in by_column.items():
            config = specs[j].config
            layer_specs = [workloads[i].spec for i, _ in items]
            grid = dense_cycle_grid(layer_specs, config)
            for row, (i, key) in enumerate(items):
                result = ArchLayerResult(
                    architecture=config.name,
                    layer=layer_specs[row].name,
                    cycles=int(grid.cycles[row]),
                    operations=int(grid.products[row]),
                    multiplier_utilization=float(grid.multiplier_utilization[row]),
                    idle_fraction=float(grid.idle_fraction[row]),
                    weight_vector_fetches=None,
                )
                cells[i][j] = result
                self._store(key, result)

    # -- design-space exploration -----------------------------------------------

    @_instrumented("sweep")
    def sweep(
        self,
        configs: Sequence[AcceleratorConfig],
        network: Union[str, Network],
        *,
        sparsity: Optional[Dict[str, LayerSparsity]] = None,
        energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
        parallel: Optional[int] = None,
        batched: bool = True,
    ) -> List[DesignPoint]:
        """Evaluate candidate configurations on ``network``, in parallel.

        Drop-in replacement for :func:`repro.timeloop.dse.sweep`: the same
        analytical model evaluates each candidate, candidates that miss the
        cache are evaluated in one batched grid pass (itself cached under a
        grid-level key via :meth:`evaluate_grid`), and finished design points
        stay individually content-addressed.  ``batched=False`` falls back to
        sharding per-config evaluations across the pool; every path produces
        bitwise-identical points.  ``network`` accepts any registered
        workload name (whose density profile supplies ``sparsity`` unless
        overridden), like :meth:`run_network`.
        """
        network, sparsity = _resolve_network_and_sparsity(network, sparsity)
        configs = list(configs)
        points: List[Optional[DesignPoint]] = [None] * len(configs)
        pending: List[Tuple[int, str]] = []
        for index, config in enumerate(configs):
            key = fingerprint(
                "design-point",
                config=config,
                network=network,
                sparsity=sparsity,
                energy=energy_table,
            )
            cached = self._lookup(key)
            if cached is not None:
                points[index] = cached
            else:
                pending.append((index, key))
        if batched:
            pending_configs = [configs[index] for index, _ in pending]
            weight, activation, output = sweep_densities(network, sparsity)
            grid = self.evaluate_grid(
                list(network.layers),
                pending_configs,
                weight_density=weight,
                activation_density=activation,
                output_density=output,
                energy_table=energy_table,
                model="scnn",
            )
            results = evaluate_configs(
                pending_configs,
                network,
                sparsity=sparsity,
                energy_table=energy_table,
                grid=grid,
            )
        else:
            results = parallel_map(
                _design_point_task,
                [
                    (configs[index], network, sparsity, energy_table)
                    for index, _ in pending
                ],
                self._workers(parallel),
            )
        for (index, key), point in zip(pending, results):
            points[index] = point
            self._store(key, point)
        return points

    # -- whole-grid analytical evaluation -----------------------------------------

    @_instrumented("evaluate_grid")
    def evaluate_grid(
        self,
        specs: Sequence[object],
        configs: Sequence[AcceleratorConfig],
        *,
        weight_density,
        activation_density,
        output_density=None,
        energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
        model: str = "auto",
    ):
        """Cached front end to :func:`repro.grid.evaluate_grid`.

        The whole configs x layers x densities result
        (:class:`repro.grid.GridResult`) is content-addressed under one
        grid-level key, so a repeated sweep over the same axes is one cache
        hit instead of configs x layers x points model evaluations.
        """
        from repro.grid import evaluate_grid as grid_evaluate

        specs = list(specs)
        configs = list(configs)
        key = fingerprint(
            "analytical-grid",
            specs=specs,
            configs=configs,
            weight_density=np.asarray(weight_density, dtype=np.float64),
            activation_density=np.asarray(activation_density, dtype=np.float64),
            output_density=(
                None
                if output_density is None
                else np.asarray(output_density, dtype=np.float64)
            ),
            energy=energy_table,
            model=model,
        )
        cached = self._lookup(key)
        if cached is not None:
            return cached
        result = grid_evaluate(
            specs,
            configs,
            weight_density=weight_density,
            activation_density=activation_density,
            output_density=output_density,
            energy_table=energy_table,
            model=model,
        )
        self._store(key, result)
        return result
