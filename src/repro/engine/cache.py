"""Content-addressed on-disk result cache for the simulation engine.

Every cacheable unit of work (a layer simulation, a network simulation, a
DSE design point) is described by a *fingerprint*: a canonical JSON document
covering everything the result depends on — layer shapes, operand content
(either the generative coordinates of a synthetic workload or a digest of
the raw tensors), the full accelerator configuration, the energy table, and
a schema version bumped whenever the models change meaning.  The SHA-256 of
that document addresses a pickle file under the cache root, so

* two logically identical requests always share one entry, regardless of
  which entry point produced them;
* any change to an input produces a different key — there is no staleness
  to manage and never a need to "invalidate" entries by hand;
* bumping :data:`SCHEMA_VERSION` orphans (but does not delete) entries from
  older model revisions; ``ResultCache.clear()`` removes everything.

The cache is safe for concurrent writers — including writers in *different
processes* (the service's process-mode worker tier points every forked
worker at the same root): entries are written to a unique temporary file
and atomically renamed into place, so readers only ever see complete
entries.  Write failures (disk full, permissions, a vanished root) degrade
to cache-less operation: :meth:`ResultCache.put` swallows the ``OSError``
and counts it in ``write_failures`` rather than failing the simulation
that produced the value.

An optional ``max_entries`` bound turns the store into an LRU cache: every
hit touches the entry's mtime, and a put that pushes the store over the
bound evicts the least-recently-used entries.  Long-lived processes — the
simulation service foremost — can therefore leave the cache on without the
spool growing without bound.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any, Iterator, Optional

import numpy as np

from repro import obs

# Bump when a model change alters what any cached metric means.
SCHEMA_VERSION = 1

_log = obs.get_logger("repro.engine.cache")

_WRITE_FAILURES = obs.counter(
    "repro_cache_write_failures_total",
    "Disk cache writes that failed with OSError.",
    ("tier",),
)
_CORRUPT_ENTRIES = obs.counter(
    "repro_cache_corrupt_entries_total",
    "Unreadable disk cache entries deleted and treated as misses.",
)

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_DISABLED = {"", "0", "off", "none", "disabled"}


def default_cache_dir() -> Optional[Path]:
    """Cache root from the ``REPRO_CACHE_DIR`` environment variable.

    Unset (or set to ``0``/``off``/``none``) means the on-disk cache is
    disabled and the engine only memoises in memory.
    """
    raw = os.environ.get(_ENV_CACHE_DIR)
    if raw is None or raw.strip().lower() in _DISABLED:
        return None
    return Path(raw).expanduser()


def describe(value: Any) -> Any:
    """Reduce ``value`` to a canonical JSON-compatible description.

    Dataclasses become sorted field dicts, numpy scalars become Python
    scalars, and numpy arrays become a content digest (shape, dtype, SHA-256
    of the raw bytes) so large tensors are fingerprinted without being
    embedded in the key document.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Underscore-prefixed fields are in-process state (e.g. a workload
        # handle's materialised tensors), not part of the result's identity.
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                field.name: describe(getattr(value, field.name))
                for field in dataclasses.fields(value)
                if not field.name.startswith("_")
            },
        }
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(value).tobytes()
            ).hexdigest(),
            "shape": list(value.shape),
            "dtype": str(value.dtype),
        }
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(key): describe(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [describe(item) for item in value]
    if isinstance(value, float):
        # repr round-trips exactly, so equal floats hash equally and nothing
        # is lost to formatting.
        return repr(value)
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def fingerprint(kind: str, **parts: Any) -> str:
    """SHA-256 key of one cacheable unit of work."""
    document = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "parts": describe(parts),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-per-entry store addressed by :func:`fingerprint` keys.

    Entries live at ``root/<key[:2]>/<key>.pkl`` (the two-character shard
    keeps directories small).  Unreadable entries are treated as misses and
    deleted, so a truncated write or a pickle from an incompatible code
    revision degrades to recomputation, never to an error.

    ``max_entries`` (optional) bounds the store: hits refresh an entry's
    mtime and a put beyond the bound evicts least-recently-used entries,
    counted in ``evictions``.  The entry count is tracked incrementally
    (one full scan at construction), and eviction clears 10% headroom
    below the bound, so the full-tree scan amortises over many puts
    instead of running on every one.
    """

    def __init__(self, root: Path | str, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.root = Path(root).expanduser()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_failures = 0
        # Guards the counters, the entry count and eviction — never the
        # get/put payload I/O itself, which is already safe concurrently
        # (reads of complete files, writes via tempfile + atomic rename).
        self._lock = threading.Lock()
        # Approximate when other processes write the same root concurrently;
        # every eviction scan resets it to the true count.
        self._approx_entries = (
            sum(1 for _ in self._entries()) if max_entries is not None else 0
        )

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The cached value under ``key``, or ``None`` on a miss.

        Unreadable entries (truncated writes, incompatible pickles) are
        deleted and reported as misses, never raised.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except Exception as error:
            path.unlink(missing_ok=True)
            with self._lock:
                self.misses += 1
            _CORRUPT_ENTRIES.inc()
            _log.warning(
                "cache_entry_corrupt", key=key, path=str(path), error=str(error)
            )
            return None
        with self._lock:
            self.hits += 1
        if self.max_entries is not None:
            # Touch the entry so LRU eviction sees it as recently used.
            try:
                os.utime(path)
            except OSError as error:
                # Losing one LRU touch only skews eviction order slightly.
                _log.debug("cache_touch_failed", key=key, error=str(error))
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic rename; LRU-evicts past the bound).

        An ``OSError`` (disk full, permissions, root removed underneath a
        long-lived worker) is swallowed and counted in ``write_failures``:
        losing one cache entry is recoverable, failing the job that
        computed the value is not.  Pickling errors still raise — they are
        caller bugs, not environment weather.
        """
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError as error:
            with self._lock:
                self.write_failures += 1
            _WRITE_FAILURES.inc(tier="disk")
            _log.warning(
                "cache_write_failed", key=key, path=str(path), error=str(error)
            )
            return
        is_new = self.max_entries is not None and not path.exists()
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except OSError as error:
            Path(tmp_name).unlink(missing_ok=True)
            with self._lock:
                self.write_failures += 1
            _WRITE_FAILURES.inc(tier="disk")
            _log.warning(
                "cache_write_failed", key=key, path=str(path), error=str(error)
            )
            return
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        if self.max_entries is not None:
            with self._lock:
                if is_new:
                    self._approx_entries += 1
                over = self._approx_entries > self.max_entries
            if over:
                self._evict(keep=path)

    def _evict(self, keep: Optional[Path] = None) -> None:
        """Delete LRU entries down to the bound minus 10% headroom.

        The headroom means the next ``max_entries // 10`` puts proceed
        without rescanning the tree — the scan cost amortises instead of
        recurring on every put at capacity.  One evictor runs at a time;
        the engine's hot paths never wait on it.
        """
        with self._lock:
            self._do_evict(keep)

    def _do_evict(self, keep: Optional[Path]) -> None:
        entries = []
        for entry in self._entries():
            try:
                entries.append((entry.stat().st_mtime, entry))
            # Raced with another writer's eviction: the entry is simply
            # gone, which is the outcome eviction wanted anyway (and
            # self._lock is held here, so no log call either).
            except OSError:  # lint-ok: no-silent-except
                continue
        target = max(1, (self.max_entries or 0) - (self.max_entries or 0) // 10)
        excess = len(entries) - target
        remaining = len(entries)
        if excess > 0:
            entries.sort()
            for _, entry in entries:
                if excess <= 0:
                    break
                if keep is not None and entry == keep:
                    continue
                entry.unlink(missing_ok=True)
                self.evictions += 1
                remaining -= 1
                excess -= 1
        self._approx_entries = remaining

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def _entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return iter(())
        return self.root.glob("??/*.pkl")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            removed += 1
        with self._lock:
            self._approx_entries = 0
        return removed
