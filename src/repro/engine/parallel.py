"""Process-pool sharding for the simulation engine.

Independent units of work — layer simulations, (workload, config) cycle
evaluations, DSE candidate configurations — are mapped over a
``concurrent.futures`` process pool.  Three rules keep the parallel path
bitwise-identical to the serial one:

* every worker function is a pure function of its (picklable) task tuple;
* results are collected in submission order, never completion order;
* workloads cross the process boundary as :class:`~repro.engine.workloads.WorkloadHandle`
  recipes and are regenerated inside the worker from the same per-layer seed
  stream the serial path uses.

``parallel_map`` degrades to the plain serial loop for ``workers in (None,
0, 1)`` or when there is a single task, so callers never need two code
paths.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")


def resolve_workers(workers: Optional[int], num_tasks: int) -> int:
    """Number of pool processes to use for ``num_tasks`` tasks.

    ``None``, ``0`` and ``1`` mean serial; ``-1`` means one worker per
    available CPU.  The result is never larger than the task count.
    """
    if not num_tasks:
        return 0
    if workers is None or workers == 0 or workers == 1:
        return 0
    if workers < 0:
        workers = os.cpu_count() or 1
    return max(0, min(workers, num_tasks))


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (fast, inherits sys.path) where it is actually safe.

    macOS lists ``fork`` as available but forking after the Objective-C /
    Accelerate runtimes initialise is unsafe (the reason CPython switched
    the macOS default to ``spawn``), so only Linux opts in.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(
    function: Callable[[Task], Result],
    tasks: Sequence[Task],
    workers: Optional[int] = None,
) -> List[Result]:
    """``[function(task) for task in tasks]``, optionally across processes.

    The output order always matches the input order, so serial and parallel
    runs are interchangeable.
    """
    tasks = list(tasks)
    pool_size = resolve_workers(workers, len(tasks))
    if pool_size <= 1:
        return [function(task) for task in tasks]
    chunksize = max(1, len(tasks) // (pool_size * 4))
    with ProcessPoolExecutor(
        max_workers=pool_size, mp_context=_pool_context()
    ) as pool:
        return list(pool.map(function, tasks, chunksize=chunksize))
