"""Vectorised cycle-level performance model of the SCNN PE array.

The model reproduces, without touching individual data elements, the cycle
count the functional simulator measures:

* for every (PE, input channel) the number of ``I``-wide compressed
  activation vectors, and for every (output-channel group, input channel) the
  number of ``F``-wide compressed weight vectors, are computed from non-zero
  counts;
* a PE's busy cycles for one output-channel group are the sum over input
  channels of ``act_vectors x weight_vectors`` (each pair is one Cartesian-
  product issue step), plus accumulator-bank stalls and the drain of the
  accumulator buffers into the OARAM;
* the PEs synchronise at the end of every output-channel group (halo
  exchange), so the layer's cycle count is the sum over groups of the
  *maximum* per-PE busy count — the difference between a PE's busy cycles and
  that maximum is the idle (barrier) time reported in Figure 9.

Everything is a handful of numpy matrix products over the integral-image
tile counts from :mod:`repro.dataflow.tiling` — no Python-level element
iteration anywhere on the hot path — so whole networks simulate in
milliseconds, and the simulation engine can batch layers freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dataflow.tiling import (
    TilingPlan,
    activation_phase_nonzeros,
    plan_layer,
    weight_phase_nonzeros,
)
from repro.nn.layers import ConvLayerSpec
from repro.scnn.accumulator import expected_conflict_cycles
from repro.scnn.config import AcceleratorConfig, SCNN_CONFIG


@dataclass
class LayerCycleResult:
    """Cycle-level statistics of one layer on the SCNN array."""

    spec: ConvLayerSpec
    config_name: str
    cycles: int
    busy_cycles_per_pe: np.ndarray
    group_cycles: np.ndarray
    issue_steps: int
    products: int
    multiplier_utilization: float
    busy_utilization: float
    idle_fraction: float
    conflict_stall_cycles: int
    weight_vector_fetches: int
    activation_vector_fetches: int
    weight_nonzeros: int
    activation_nonzeros: int

    @property
    def busy_cycles(self) -> int:
        return int(self.busy_cycles_per_pe.sum())


def _group_channel_weight_counts(
    weights: np.ndarray, spec: ConvLayerSpec, group_size: int
) -> np.ndarray:
    """Non-zero weights per (output-channel group, *global* input channel, phase).

    For grouped convolutions (AlexNet conv2/4/5) the returned array is zero
    for (group, channel) pairs that are not connected, which makes the
    downstream matrix products automatically honour group connectivity.  The
    trailing axis is the stride-phase decomposition (a single phase for
    stride-1 layers).
    """
    counts_local = weight_phase_nonzeros(
        weights, group_size, spec.stride, spec.padding
    )  # (G, C/groups, phases)
    num_groups, c_local, phases = counts_local.shape
    if spec.groups == 1:
        return counts_local
    counts = np.zeros((num_groups, spec.in_channels, phases), dtype=np.int64)
    k_per_filter_group = spec.out_channels // spec.groups
    for group in range(num_groups):
        k_lo = group * group_size
        filter_group = min(k_lo // k_per_filter_group, spec.groups - 1)
        c_lo = filter_group * c_local
        counts[group, c_lo : c_lo + c_local] = counts_local[group]
    return counts


def simulate_layer_cycles(
    spec: ConvLayerSpec,
    weights: np.ndarray,
    activations: np.ndarray,
    config: AcceleratorConfig = SCNN_CONFIG,
    *,
    plan: Optional[TilingPlan] = None,
) -> LayerCycleResult:
    """Estimate SCNN cycles for one layer from its actual operand sparsity."""
    weights = np.asarray(weights)
    activations = np.asarray(activations)
    if plan is None:
        pe_rows, pe_cols = config.pe_grid
        plan = plan_layer(
            spec,
            num_pes=config.num_pes,
            group_size=config.output_channel_group,
            pe_rows=pe_rows,
            pe_cols=pe_cols,
        )

    f_width = config.multipliers_f
    i_width = config.multipliers_i

    weight_counts = _group_channel_weight_counts(
        weights, spec, config.output_channel_group
    )  # (G, C, phases)
    act_counts = activation_phase_nonzeros(
        activations, plan, spec.stride, spec.padding
    )  # (P, C, phases)

    weight_vectors = -(-weight_counts // f_width)  # ceil division
    act_vectors = -(-act_counts // i_width)

    # Issue steps per (PE, group): every activation vector meets every weight
    # vector of the same input channel *and matching stride phase*.
    steps = np.einsum("pcs,gcs->pg", act_vectors, weight_vectors)
    products = np.einsum("pcs,gcs->pg", act_counts, weight_counts)

    # Accumulator-bank contention: with the default provisioning
    # (banks = 2 x F x I) the per-step stall is zero; smaller bank counts add
    # an expected stall per issue step (see the banking ablation).
    stall_per_step = expected_conflict_cycles(
        f_width * i_width, config.accumulator_banks
    )
    conflict_stalls = steps * stall_per_step

    busy = steps + conflict_stalls
    # Drain + PPU overhead once per (PE, group) that did any work.
    busy = busy + (steps > 0) * config.drain_overhead_cycles

    group_cycles = busy.max(axis=0)  # (G,)
    group_cycles = group_cycles + (group_cycles > 0) * config.barrier_overhead_cycles
    total_cycles = int(np.ceil(group_cycles.sum()))

    busy_per_pe = busy.sum(axis=1)
    total_products = int(products.sum())
    total_steps = int(steps.sum())
    busy_utilization = 0.0
    if busy_per_pe.sum() > 0:
        busy_utilization = total_products / (
            float(busy_per_pe.sum()) * config.multipliers_per_pe
        )
    # Figure 9 reports utilization against wall-clock time across the whole
    # array, which folds barrier idling and unoccupied PEs into the number.
    utilization = 0.0
    if total_cycles > 0:
        utilization = total_products / (
            float(total_cycles) * plan.num_pes * config.multipliers_per_pe
        )
    idle = 0.0
    denom = total_cycles * plan.num_pes
    if denom > 0:
        idle = 1.0 - float(busy_per_pe.sum()) / denom
        idle = max(0.0, min(1.0, idle))

    # Buffer traffic the energy model consumes.
    weight_fifo_fetches = total_steps
    activation_fetches = int(act_vectors.sum()) * weight_counts.shape[0]

    return LayerCycleResult(
        spec=spec,
        config_name=config.name,
        cycles=total_cycles,
        busy_cycles_per_pe=np.asarray(np.ceil(busy_per_pe), dtype=np.int64),
        group_cycles=np.asarray(np.ceil(group_cycles), dtype=np.int64),
        issue_steps=total_steps,
        products=total_products,
        multiplier_utilization=float(utilization),
        busy_utilization=float(busy_utilization),
        idle_fraction=float(idle),
        conflict_stall_cycles=int(np.ceil(conflict_stalls.sum())),
        weight_vector_fetches=weight_fifo_fetches,
        activation_vector_fetches=activation_fetches,
        weight_nonzeros=int(np.count_nonzero(weights)),
        activation_nonzeros=int(np.count_nonzero(activations)),
    )
