"""Dense baseline accelerators: DCNN and DCNN-opt (PT-IS-DP-dense).

The dense baseline provisions the same 1,024 multipliers as SCNN but operates
on uncompressed data with a dot-product inner operation: every weight and
activation — zero or not — occupies a multiplier slot.  DCNN-opt adds two
energy optimisations (zero-operand gating and DRAM activation compression)
that do not change the cycle count, so both share this performance model.

A well-provisioned dense accelerator keeps its multipliers busy except for
edge effects: each PE processes its planar tile's output pixels, and for
every (output pixel, output channel) pair it streams ``ceil(C' * R * S / F)``
dot-product steps; the ``I`` lanes of the multiplier array are filled across
(pixel, output-channel) pairs by the layer sequencer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.arch.registry import resolve_config
from repro.dataflow.tiling import TilingPlan, plan_layer
from repro.nn.layers import ConvLayerSpec
from repro.scnn.config import AcceleratorConfig, DCNN_CONFIG


@dataclass
class DenseLayerResult:
    """Cycle statistics of one layer on the dense DCNN baseline."""

    spec: ConvLayerSpec
    config_name: str
    cycles: int
    busy_cycles_per_pe: np.ndarray
    multiplies: int
    multiplier_utilization: float
    idle_fraction: float


def simulate_dcnn_layer(
    spec: ConvLayerSpec,
    config: Union[AcceleratorConfig, str] = DCNN_CONFIG,
    *,
    plan: Optional[TilingPlan] = None,
) -> DenseLayerResult:
    """Cycle count of one layer on the dense baseline.

    Only the layer shape matters — the dense dataflow performs every multiply
    regardless of operand values.  ``config`` accepts a registered
    architecture name (e.g. ``"DCNN-opt"``) in place of a config object.
    """
    config = resolve_config(config)
    if plan is None:
        pe_rows, pe_cols = config.pe_grid
        plan = plan_layer(
            spec,
            num_pes=config.num_pes,
            group_size=config.output_channel_group,
            pe_rows=pe_rows,
            pe_cols=pe_cols,
        )
    f_width = config.multipliers_f
    i_width = config.multipliers_i
    c_per_group = spec.in_channels // spec.groups
    dot_steps_per_output = -(
        -(c_per_group * spec.filter_height * spec.filter_width) // f_width
    )

    busy = np.zeros(plan.num_pes, dtype=np.int64)
    for pe_index, tile in enumerate(plan.output_tiles):
        if tile.size == 0:
            continue
        outputs = tile.size * spec.out_channels
        busy[pe_index] = -(-outputs * dot_steps_per_output // i_width)

    cycles = int(busy.max()) if busy.size else 0
    multiplies = spec.multiplies
    utilization = 0.0
    if cycles > 0:
        utilization = multiplies / (
            float(cycles) * plan.num_pes * config.multipliers_per_pe
        )
    idle = 0.0
    denom = cycles * plan.num_pes
    if denom > 0:
        idle = max(0.0, 1.0 - float(busy.sum()) / denom)
    return DenseLayerResult(
        spec=spec,
        config_name=config.name,
        cycles=cycles,
        busy_cycles_per_pe=busy,
        multiplies=multiplies,
        multiplier_utilization=float(utilization),
        idle_fraction=float(idle),
    )
