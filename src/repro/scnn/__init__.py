"""SCNN core: architecture configuration, functional and cycle-level models.

This package implements the paper's primary contribution:

* :mod:`repro.scnn.config` — the SCNN / DCNN / DCNN-opt configurations of
  Tables II and IV.
* :mod:`repro.scnn.functional` — an element-exact functional simulator of the
  PT-IS-CP-sparse dataflow (Cartesian-product multiplier array, coordinate
  computation, scatter into banked accumulators, halo handling, PPU),
  validated against the dense reference convolution.
* :mod:`repro.scnn.cycles` — the vectorised cycle-level performance model
  used for the per-layer results (Figures 8 and 9).
* :mod:`repro.scnn.dcnn` — the dense DCNN / DCNN-opt baseline performance
  model (PT-IS-DP-dense).
* :mod:`repro.scnn.oracle` — the SCNN(oracle) upper bound.
* :mod:`repro.scnn.simulator` — layer- and network-level drivers combining
  the above into the result records the experiments consume.
"""

from repro.scnn.config import (
    DCNN_CONFIG,
    DCNN_OPT_CONFIG,
    SCNN_CONFIG,
    AcceleratorConfig,
    scnn_with_pe_count,
)
from repro.scnn.cycles import LayerCycleResult, simulate_layer_cycles
from repro.scnn.dcnn import simulate_dcnn_layer
from repro.scnn.functional import FunctionalResult, run_functional_layer
from repro.scnn.oracle import oracle_cycles
from repro.scnn.ppu import PPUResult, apply_ppu
from repro.scnn.simulator import (
    LayerSimulation,
    NetworkSimulation,
    simulate_layer,
    simulate_network,
)

__all__ = [
    "AcceleratorConfig",
    "DCNN_CONFIG",
    "DCNN_OPT_CONFIG",
    "FunctionalResult",
    "LayerCycleResult",
    "LayerSimulation",
    "NetworkSimulation",
    "PPUResult",
    "SCNN_CONFIG",
    "apply_ppu",
    "oracle_cycles",
    "run_functional_layer",
    "scnn_with_pe_count",
    "simulate_dcnn_layer",
    "simulate_layer",
    "simulate_layer_cycles",
    "simulate_network",
]
