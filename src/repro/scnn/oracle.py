"""SCNN(oracle): the upper bound on sparse speedup.

The paper derives the oracle's performance "by dividing the number of
multiplication operations required for Cartesian product-based convolution
with the number of multipliers available on-chip" — i.e. a machine with
perfect load balance, no fragmentation, and no barriers, performing exactly
the multiplies whose two operands are both non-zero.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import ConvLayerSpec
from repro.nn.reference import conv2d_layer
from repro.scnn.config import AcceleratorConfig, SCNN_CONFIG


def nonzero_multiplies(
    spec: ConvLayerSpec, weights: np.ndarray, activations: np.ndarray
) -> int:
    """Exact count of multiplies with both operands non-zero.

    Computed by convolving the operand non-zero masks, which accounts for
    border effects (products that never contribute to a real output are not
    counted, matching what the real dataflow would skip).
    """
    weight_mask = (np.asarray(weights) != 0).astype(float)
    act_mask = (np.asarray(activations) != 0).astype(float)
    return int(round(conv2d_layer(act_mask, weight_mask, spec).sum()))


def oracle_cycles(
    spec: ConvLayerSpec,
    weights: np.ndarray,
    activations: np.ndarray,
    config: AcceleratorConfig = SCNN_CONFIG,
    *,
    products: int | None = None,
) -> int:
    """Cycles an oracular SCNN would need for one layer."""
    if products is None:
        products = nonzero_multiplies(spec, weights, activations)
    return max(1, -(-products // config.total_multipliers))
