"""Element-exact functional simulator of the PT-IS-CP-sparse dataflow.

This simulator performs the actual computation the SCNN hardware would
perform, step by step:

1. the layer is planar-tiled across the PE array,
2. each PE walks output-channel groups, and within a group walks its input
   channels, fetching vectors of ``I`` non-zero activations and ``F`` non-zero
   weights from the compressed streams,
3. each fetch pair issues an ``F x I`` Cartesian product whose output
   coordinates are computed from the operand coordinates,
4. the products are scattered into the PE's banked accumulator (bank
   conflicts are measured), with products that fall into the output halo
   tracked separately,
5. at the end of each group the accumulators are drained, halo regions are
   exchanged (summed) with neighbouring PEs, and the post-processing unit
   applies ReLU and re-compresses the output activations.

Because it is element-exact it is slow; it exists to *validate* the dataflow
(its output must match the dense reference convolution bit-for-bit in double
precision) and to measure microarchitectural statistics (conflict histograms,
halo traffic) on small layers.  The fast model in :mod:`repro.scnn.cycles`
reproduces its cycle counts without touching individual elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataflow.tiling import TilingPlan, plan_layer
from repro.nn.layers import ConvLayerSpec
from repro.scnn.accumulator import BankedAccumulator, ConflictStatistics
from repro.scnn.config import AcceleratorConfig, SCNN_CONFIG
from repro.tensor.coordinates import output_coordinate
from repro.tensor.formats import CompressedActivations


@dataclass
class FunctionalResult:
    """Outcome of one functional-simulation run of a single layer."""

    spec: ConvLayerSpec
    output: np.ndarray
    output_pre_activation: np.ndarray
    cycles: int
    pe_cycles: np.ndarray
    busy_cycles: np.ndarray
    multiplies: int
    multiplier_utilization: float
    conflict_statistics: ConflictStatistics
    halo_products: int
    output_density: float
    oaram_bits: int
    group_cycles: List[int] = field(default_factory=list)

    @property
    def idle_fraction(self) -> float:
        """Fraction of PE-cycles spent waiting at inter-PE barriers."""
        total = self.cycles * len(self.pe_cycles)
        if total == 0:
            return 0.0
        return 1.0 - float(self.busy_cycles.sum()) / total


def _weight_stream(
    weights: np.ndarray,
    spec: ConvLayerSpec,
    group_size: int,
) -> Dict[Tuple[int, int, int], List[Tuple[int, int, int, float]]]:
    """Compressed weight streams keyed by (group, input channel, stride phase).

    Each stream lists ``(k, s, r, value)`` for the non-zero weights in raster
    order (k-major, then filter row, then filter column), i.e. the order the
    weight FIFO would deliver them in.  Channel-group connectivity (AlexNet's
    grouped convolutions) is honoured: a stream is empty when the input
    channel does not feed the output channels of the group.  For strided
    layers the stream is split by stride phase so that every Cartesian
    product pairs an activation only with weights that can produce a valid
    output for it; the phase index is the *activation* phase the sub-stream
    pairs with.
    """
    num_k = spec.out_channels
    c_per_group = spec.in_channels // spec.groups
    k_per_group = num_k // spec.groups
    num_groups = -(-num_k // group_size)
    stride = spec.stride
    streams: Dict[Tuple[int, int, int], List[Tuple[int, int, int, float]]] = {}
    for group in range(num_groups):
        k_lo = group * group_size
        k_hi = min(num_k, k_lo + group_size)
        for c in range(spec.in_channels):
            for phase in range(stride * stride):
                streams[(group, c, phase)] = []
            for k in range(k_lo, k_hi):
                filter_group = k // k_per_group
                c_lo = filter_group * c_per_group
                if not c_lo <= c < c_lo + c_per_group:
                    continue
                local_c = c - c_lo
                plane = weights[k, local_c]
                for s in range(spec.filter_height):
                    for r in range(spec.filter_width):
                        value = plane[s, r]
                        if value == 0:
                            continue
                        # The activation phase (py, px) this weight pairs
                        # with must satisfy (p + pad - offset) % stride == 0.
                        py = (s - spec.padding) % stride
                        px = (r - spec.padding) % stride
                        phase = py * stride + px
                        streams[(group, c, phase)].append((k, s, r, float(value)))
    return streams


def _activation_stream(
    activations: np.ndarray, plan: TilingPlan, stride: int
) -> Dict[Tuple[int, int, int], List[Tuple[int, int, float]]]:
    """Compressed activation streams keyed by (PE, input channel, stride phase).

    Each stream lists ``(y, x, value)`` in raster order with *absolute* plane
    coordinates (the PE knows its tile offset, so coordinates embedded in the
    compressed format are equivalent to these).
    """
    streams: Dict[Tuple[int, int, int], List[Tuple[int, int, float]]] = {}
    num_c = activations.shape[0]
    for pe_index, tile in enumerate(plan.input_tiles):
        for c in range(num_c):
            for phase in range(stride * stride):
                streams[(pe_index, c, phase)] = []
            if not tile.size:
                continue
            block = activations[c, tile.y_lo : tile.y_hi, tile.x_lo : tile.x_hi]
            ys, xs = np.nonzero(block)
            for y, x in zip(ys, xs):
                abs_y = int(y) + tile.y_lo
                abs_x = int(x) + tile.x_lo
                phase = (abs_y % stride) * stride + (abs_x % stride)
                streams[(pe_index, c, phase)].append(
                    (abs_y, abs_x, float(block[y, x]))
                )
    return streams


def _chunks(sequence: Sequence, width: int) -> List[Sequence]:
    return [sequence[i : i + width] for i in range(0, len(sequence), width)]


def run_functional_layer(
    spec: ConvLayerSpec,
    weights: np.ndarray,
    activations: np.ndarray,
    config: AcceleratorConfig = SCNN_CONFIG,
    *,
    apply_relu: bool = True,
) -> FunctionalResult:
    """Run one layer through the element-exact PT-IS-CP-sparse simulator."""
    weights = np.asarray(weights, dtype=float)
    activations = np.asarray(activations, dtype=float)
    if weights.shape != spec.weight_shape:
        raise ValueError(
            f"weights shape {weights.shape} does not match spec {spec.weight_shape}"
        )
    if activations.shape != spec.input_shape:
        raise ValueError(
            f"activations shape {activations.shape} does not match spec "
            f"{spec.input_shape}"
        )

    pe_rows, pe_cols = config.pe_grid
    plan = plan_layer(
        spec,
        num_pes=config.num_pes,
        group_size=config.output_channel_group,
        pe_rows=pe_rows,
        pe_cols=pe_cols,
    )
    weight_streams = _weight_stream(weights, spec, config.output_channel_group)
    activation_streams = _activation_stream(activations, plan, spec.stride)
    num_phases = spec.stride * spec.stride

    out_k, out_h, out_w = spec.output_shape
    output = np.zeros(spec.output_shape, dtype=float)
    num_pes = plan.num_pes
    busy_cycles = np.zeros(num_pes, dtype=np.int64)
    pe_cycles = np.zeros(num_pes, dtype=np.int64)
    conflicts = ConflictStatistics()
    group_cycles: List[int] = []
    total_products = 0
    halo_products = 0

    def _acc_bounds(lo: int, hi: int, filter_size: int, limit: int) -> Tuple[int, int]:
        """Output-coordinate range reachable from input columns ``[lo, hi)``.

        A product from input column ``x`` and filter offset ``r`` lands at
        ``(x + pad - r) / stride``; the accumulator of a PE must cover every
        coordinate reachable from its input tile (owned region plus halo).
        """
        if hi <= lo:
            return 0, 1
        least = (lo + spec.padding - (filter_size - 1)) // spec.stride
        most = (hi - 1 + spec.padding) // spec.stride
        return max(0, least), min(limit, most + 1)

    for group in range(plan.num_groups):
        k_lo = group * config.output_channel_group
        group_channels = plan.group_channels(group)
        per_pe_group_cycles = np.zeros(num_pes, dtype=np.int64)
        for pe_index, out_tile in enumerate(plan.output_tiles):
            if plan.input_tiles[pe_index].size == 0:
                continue
            in_tile = plan.input_tiles[pe_index]
            acc_x_lo, acc_x_hi = _acc_bounds(
                in_tile.x_lo, in_tile.x_hi, spec.filter_width, out_w
            )
            acc_y_lo, acc_y_hi = _acc_bounds(
                in_tile.y_lo, in_tile.y_hi, spec.filter_height, out_h
            )
            acc_w = max(1, acc_x_hi - acc_x_lo)
            acc_h = max(1, acc_y_hi - acc_y_lo)
            accumulator = BankedAccumulator(
                group_size=len(group_channels),
                acc_height=acc_h,
                acc_width=acc_w,
                banks=config.accumulator_banks,
                bank_entries=config.accumulator_bank_entries,
            )
            cycles_this_group = 0
            for c in range(spec.in_channels):
              for phase in range(num_phases):
                acts = activation_streams[(pe_index, c, phase)]
                wts = weight_streams[(group, c, phase)]
                if not acts or not wts:
                    continue
                act_vectors = _chunks(acts, config.multipliers_i)
                weight_vectors = _chunks(wts, config.multipliers_f)
                for act_vec in act_vectors:
                    for wt_vec in weight_vectors:
                        products = []
                        for act_y, act_x, act_value in act_vec:
                            for k, s, r, wt_value in wt_vec:
                                coords = output_coordinate(
                                    act_x,
                                    act_y,
                                    r,
                                    s,
                                    stride=spec.stride,
                                    pad=spec.padding,
                                )
                                if coords is None:
                                    continue
                                out_x, out_y = coords
                                if not (0 <= out_x < out_w and 0 <= out_y < out_h):
                                    continue
                                if not (
                                    out_tile.x_lo <= out_x < out_tile.x_hi
                                    and out_tile.y_lo <= out_y < out_tile.y_hi
                                ):
                                    halo_products += 1
                                products.append(
                                    (
                                        k - k_lo,
                                        out_y - acc_y_lo,
                                        out_x - acc_x_lo,
                                        act_value * wt_value,
                                    )
                                )
                        accumulator.scatter(products)
                        # One issue step per (activation vector, weight vector)
                        # pair: the per-bank FIFOs behind the scatter crossbar
                        # absorb transient conflicts (the measured conflict
                        # distribution is reported in ``conflict_statistics``),
                        # so sustained throughput is one Cartesian product per
                        # cycle — the same assumption the cycle model makes.
                        cycles_this_group += 1
                        total_products += len(products)
            # Halo exchange: the drained accumulator (owned region plus halo)
            # is summed into the global output plane; overlapping halo entries
            # from neighbouring PEs accumulate, which is exactly the neighbour
            # exchange the PPU performs.
            drained = accumulator.drain()
            output[
                k_lo : k_lo + len(group_channels),
                acc_y_lo:acc_y_hi,
                acc_x_lo:acc_x_hi,
            ] += drained
            for peak, count in accumulator.statistics.load_histogram.items():
                for _ in range(count):
                    conflicts.record([peak])
            per_pe_group_cycles[pe_index] = cycles_this_group + (
                config.drain_overhead_cycles if cycles_this_group else 0
            )
        group_max = int(per_pe_group_cycles.max()) if num_pes else 0
        if group_max:
            group_max += config.barrier_overhead_cycles
        group_cycles.append(group_max)
        busy_cycles += per_pe_group_cycles
        pe_cycles += group_max

    total_cycles = int(sum(group_cycles))
    pre_activation = output.copy()
    if apply_relu:
        output = np.maximum(output, 0.0)
    density = float(np.count_nonzero(output)) / output.size if output.size else 0.0
    compressed = CompressedActivations(output, index_bits=max(config.index_bits, 1))
    utilization = 0.0
    busy_total = int(busy_cycles.sum())
    if busy_total:
        utilization = total_products / (busy_total * config.multipliers_per_pe)
    return FunctionalResult(
        spec=spec,
        output=output,
        output_pre_activation=pre_activation,
        cycles=total_cycles,
        pe_cycles=pe_cycles,
        busy_cycles=busy_cycles,
        multiplies=total_products,
        multiplier_utilization=utilization,
        conflict_statistics=conflicts,
        halo_products=halo_products,
        output_density=density,
        oaram_bits=compressed.storage_bits(),
        group_cycles=group_cycles,
    )
