"""Layer- and network-level simulation drivers.

``simulate_layer`` runs one layer workload through the SCNN cycle model, the
dense DCNN baseline, the oracle bound and the energy model;
``simulate_network`` does so for every layer of a catalogue network and
aggregates the per-layer results the way the paper's figures do (per layer,
per inception module, and network-wide).

Both functions are pure: the same workload and configuration always yield
the same metrics, with no hidden state.  That is what lets the batched
simulation engine (:mod:`repro.engine`) shard ``simulate_layer`` calls
across a process pool and cache finished :class:`LayerSimulation` /
:class:`NetworkSimulation` objects content-addressed on disk — parallel,
cached runs are bitwise-identical to calling ``simulate_network`` directly.
Experiments should prefer ``SimulationEngine.run_network`` over calling
``simulate_network`` in a loop; this module stays the serial reference
implementation the engine is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.registry import get_architecture, resolve_config
from repro.arch.spec import AcceleratorConfig
from repro.nn.inference import LayerWorkload, build_network_workloads
from repro.nn.networks import Network

# The canonical trio, consumed from the architecture registry — the same
# objects `repro.scnn.config` re-exports, so fingerprints and results are
# unchanged.
SCNN_CONFIG = get_architecture("SCNN").config
DCNN_CONFIG = get_architecture("DCNN").config
DCNN_OPT_CONFIG = get_architecture("DCNN-opt").config
from repro.scnn.cycles import LayerCycleResult, simulate_layer_cycles
from repro.scnn.dcnn import DenseLayerResult, simulate_dcnn_layer
from repro.scnn.oracle import nonzero_multiplies, oracle_cycles
from repro.timeloop.energy import (
    DEFAULT_ENERGY_TABLE,
    EnergyBreakdown,
    EnergyTable,
    layer_energy_from_densities,
)

# Post-ReLU output density assumed when the caller provides no measurement
# and no next-layer calibration is available (roughly half the outputs of a
# zero-mean pre-activation distribution are clamped).
DEFAULT_OUTPUT_DENSITY = 0.55


@dataclass
class LayerSimulation:
    """All simulation results of one layer."""

    workload: LayerWorkload
    scnn: LayerCycleResult
    dcnn: DenseLayerResult
    oracle_cycles: int
    output_density: float
    energy: Dict[str, EnergyBreakdown] = field(default_factory=dict)

    @property
    def layer_name(self) -> str:
        return self.workload.spec.name

    @property
    def module(self) -> str:
        return self.workload.spec.module or self.workload.spec.name

    @property
    def scnn_speedup(self) -> float:
        """SCNN speedup over the dense DCNN baseline."""
        if self.scnn.cycles == 0:
            return float("inf")
        return self.dcnn.cycles / self.scnn.cycles

    @property
    def oracle_speedup(self) -> float:
        if self.oracle_cycles == 0:
            return float("inf")
        return self.dcnn.cycles / self.oracle_cycles

    def energy_relative_to_dcnn(self, name: str) -> float:
        baseline = self.energy["DCNN"].total
        if baseline == 0:
            return float("inf")
        return self.energy[name].total / baseline


@dataclass
class NetworkSimulation:
    """Per-layer and aggregated results of one network."""

    network: Network
    layers: List[LayerSimulation]

    def layer(self, name: str) -> LayerSimulation:
        for sim in self.layers:
            if sim.layer_name == name:
                return sim
        raise KeyError(f"no simulated layer named {name!r}")

    # -- aggregation -----------------------------------------------------------

    def total_cycles(self, which: str) -> int:
        if which == "SCNN":
            return sum(sim.scnn.cycles for sim in self.layers)
        if which in ("DCNN", "DCNN-opt"):
            return sum(sim.dcnn.cycles for sim in self.layers)
        if which == "oracle":
            return sum(sim.oracle_cycles for sim in self.layers)
        raise KeyError(f"unknown accelerator {which!r}")

    @property
    def network_speedup(self) -> float:
        scnn = self.total_cycles("SCNN")
        if scnn == 0:
            return float("inf")
        return self.total_cycles("DCNN") / scnn

    @property
    def oracle_network_speedup(self) -> float:
        oracle = self.total_cycles("oracle")
        if oracle == 0:
            return float("inf")
        return self.total_cycles("DCNN") / oracle

    def total_energy(self, which: str) -> float:
        return sum(sim.energy[which].total for sim in self.layers)

    def network_energy_ratio(self, which: str) -> float:
        """Energy of ``which`` relative to DCNN (lower is better)."""
        baseline = self.total_energy("DCNN")
        if baseline == 0:
            return float("inf")
        return self.total_energy(which) / baseline

    def modules(self) -> List[str]:
        seen: List[str] = []
        for sim in self.layers:
            if sim.module not in seen:
                seen.append(sim.module)
        return seen

    def module_speedup(self, module: str) -> Dict[str, float]:
        """Aggregate speedups of one module (used for GoogLeNet's IC_xx bars)."""
        members = [sim for sim in self.layers if sim.module == module]
        dcnn = sum(sim.dcnn.cycles for sim in members)
        scnn = sum(sim.scnn.cycles for sim in members)
        oracle = sum(sim.oracle_cycles for sim in members)
        return {
            "DCNN": 1.0,
            "SCNN": dcnn / scnn if scnn else float("inf"),
            "SCNN (oracle)": dcnn / oracle if oracle else float("inf"),
        }

    def module_utilization(self, module: str) -> Dict[str, float]:
        """Cycle-weighted multiplier utilization and idle fraction of a module."""
        members = [sim for sim in self.layers if sim.module == module]
        total = sum(sim.scnn.cycles for sim in members)
        if total == 0:
            return {"multiplier_utilization": 0.0, "idle_fraction": 0.0}
        util = sum(sim.scnn.multiplier_utilization * sim.scnn.cycles for sim in members)
        idle = sum(sim.scnn.idle_fraction * sim.scnn.cycles for sim in members)
        return {
            "multiplier_utilization": util / total,
            "idle_fraction": idle / total,
        }


def simulate_layer(
    workload: LayerWorkload,
    *,
    scnn_config: AcceleratorConfig = SCNN_CONFIG,
    dcnn_config: AcceleratorConfig = DCNN_CONFIG,
    dcnn_opt_config: AcceleratorConfig = DCNN_OPT_CONFIG,
    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
    output_density: Optional[float] = None,
    include_oracle: bool = True,
) -> LayerSimulation:
    """Simulate one layer on SCNN, DCNN and DCNN-opt.

    The three ``*_config`` parameters also accept registered architecture
    names (resolved through :mod:`repro.arch.registry`), so callers can say
    ``scnn_config="SCNN-SparseA"`` without touching config objects.
    """
    scnn_config = resolve_config(scnn_config, parameter="scnn_config")
    dcnn_config = resolve_config(dcnn_config, parameter="dcnn_config")
    dcnn_opt_config = resolve_config(dcnn_opt_config, parameter="dcnn_opt_config")
    spec = workload.spec
    scnn = simulate_layer_cycles(
        spec, workload.weights, workload.activations, scnn_config
    )
    dcnn = simulate_dcnn_layer(spec, dcnn_config)
    if include_oracle:
        products = nonzero_multiplies(spec, workload.weights, workload.activations)
    else:
        products = scnn.products
    oracle = oracle_cycles(
        spec, workload.weights, workload.activations, scnn_config, products=products
    )
    if output_density is None:
        output_density = DEFAULT_OUTPUT_DENSITY

    energy: Dict[str, EnergyBreakdown] = {}
    for config, cycles in (
        (scnn_config, scnn.cycles),
        (dcnn_config, dcnn.cycles),
        (dcnn_opt_config, dcnn.cycles),
    ):
        energy[config.name] = layer_energy_from_densities(
            spec,
            config,
            weight_density=workload.weight_density,
            activation_density=workload.activation_density,
            output_density=output_density,
            cycles=cycles,
            products=products,
            weight_buffer_reads=(
                scnn.weight_vector_fetches * scnn_config.multipliers_f
                if config.is_sparse
                else None
            ),
            table=energy_table,
        )
    return LayerSimulation(
        workload=workload,
        scnn=scnn,
        dcnn=dcnn,
        oracle_cycles=oracle,
        output_density=output_density,
        energy=energy,
    )


def simulate_network(
    network: Network,
    *,
    workloads: Optional[Sequence[LayerWorkload]] = None,
    seed: int = 0,
    scnn_config: AcceleratorConfig = SCNN_CONFIG,
    dcnn_config: AcceleratorConfig = DCNN_CONFIG,
    dcnn_opt_config: AcceleratorConfig = DCNN_OPT_CONFIG,
    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
    include_oracle: bool = True,
) -> NetworkSimulation:
    """Simulate every layer of ``network`` at its calibrated densities.

    A layer's output activations are the next layer's input activations, so
    each layer's output density is taken from its successor workload's
    measured input activation density (the last layer falls back to the
    default post-ReLU estimate).  This is how activation sparsity propagates
    between layers in the paper's flow: the compressed output of one layer is
    the next layer's input.
    """
    if workloads is None:
        workloads = build_network_workloads(network, seed=seed)
    workloads = list(workloads)
    simulations = []
    for index, workload in enumerate(workloads):
        output_density = None
        if index + 1 < len(workloads):
            output_density = workloads[index + 1].activation_density
        simulations.append(
            simulate_layer(
                workload,
                scnn_config=scnn_config,
                dcnn_config=dcnn_config,
                dcnn_opt_config=dcnn_opt_config,
                energy_table=energy_table,
                output_density=output_density,
                include_oracle=include_oracle,
            )
        )
    return NetworkSimulation(network=network, layers=list(simulations))
