"""Banked accumulator array and scatter-crossbar contention model.

The F x I products of one Cartesian-product step are scattered through an
arbitrated crossbar into ``A`` accumulator banks, indexed by the output
coordinate of each product.  The paper sets ``A = 2 x F x I`` and reports that
this "sufficiently reduces accumulator bank contention"; this module models
both the address-to-bank mapping (used by the functional simulator, which
also reports the measured conflict distribution) and the throughput impact
of contention (used by the cycle model and the banking ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def bank_for_coordinate(
    k: int, x: int, y: int, banks: int, accumulator_width: int
) -> int:
    """Map an output coordinate to an accumulator bank.

    Addresses are interleaved across banks at word granularity so that
    spatially adjacent partial sums land in different banks — the same
    low-order interleaving a hardware scatter crossbar would use.
    """
    address = (k * accumulator_width + y) * accumulator_width + x
    return address % banks


@dataclass
class ConflictStatistics:
    """Measured crossbar conflict behaviour of one functional-simulation run."""

    issue_steps: int = 0
    total_products: int = 0
    conflict_cycles: int = 0
    max_bank_load: int = 0
    _load_histogram: Dict[int, int] = field(default_factory=dict)

    def record(self, bank_loads: Sequence[int]) -> None:
        loads = [load for load in bank_loads if load > 0]
        if not loads:
            return
        peak = max(loads)
        self.issue_steps += 1
        self.total_products += sum(loads)
        self.conflict_cycles += peak - 1
        self.max_bank_load = max(self.max_bank_load, peak)
        self._load_histogram[peak] = self._load_histogram.get(peak, 0) + 1

    @property
    def average_conflict_cycles(self) -> float:
        if self.issue_steps == 0:
            return 0.0
        return self.conflict_cycles / self.issue_steps

    @property
    def load_histogram(self) -> Dict[int, int]:
        return dict(sorted(self._load_histogram.items()))


class BankedAccumulator:
    """Functional model of one PE's accumulator buffer array.

    The accumulator maps a dense ``Kc x H_acc x W_acc`` partial-sum range,
    physically split across ``banks`` banks.  ``scatter`` applies one
    Cartesian-product step worth of products and records how many cycles the
    most-loaded bank would have needed to absorb them.
    """

    def __init__(
        self,
        group_size: int,
        acc_height: int,
        acc_width: int,
        banks: int,
        bank_entries: int,
    ) -> None:
        if banks <= 0 or bank_entries <= 0:
            raise ValueError("bank count and entries must be positive")
        self.group_size = group_size
        self.acc_height = acc_height
        self.acc_width = acc_width
        self.banks = banks
        self.bank_entries = bank_entries
        self.values = np.zeros((group_size, acc_height, acc_width), dtype=float)
        self.statistics = ConflictStatistics()

    def clear(self) -> None:
        self.values.fill(0.0)

    def scatter(
        self, products: Iterable[Tuple[int, int, int, float]]
    ) -> int:
        """Accumulate one step of ``(k, y, x, value)`` products.

        Returns the number of cycles the step occupies the accumulator array
        (1 plus any serialisation caused by bank conflicts).
        """
        bank_loads = [0] * self.banks
        count = 0
        for k, y, x, value in products:
            if not (
                0 <= k < self.group_size
                and 0 <= y < self.acc_height
                and 0 <= x < self.acc_width
            ):
                raise IndexError(
                    f"product coordinate ({k}, {y}, {x}) outside accumulator range "
                    f"({self.group_size}, {self.acc_height}, {self.acc_width})"
                )
            self.values[k, y, x] += value
            bank = bank_for_coordinate(k, x, y, self.banks, self.acc_width)
            bank_loads[bank] += 1
            count += 1
        if count == 0:
            return 0
        self.statistics.record(bank_loads)
        return max(bank_loads)

    def drain(self) -> np.ndarray:
        """Return (a copy of) the accumulated partial sums and clear the banks."""
        snapshot = self.values.copy()
        self.clear()
        return snapshot


def expected_conflict_cycles(
    products: int,
    banks: int,
    *,
    queue_depth: int = 4,
    samples: int = 2048,
    seed: int = 0,
) -> float:
    """Expected extra cycles per issue step from accumulator-bank conflicts.

    The scatter crossbar places per-bank FIFOs in front of the accumulators,
    so short bursts of conflicting products are absorbed; a step only stalls
    the multiplier array when a bank receives more products than its queue
    can hide.  With the paper's provisioning (``banks = 2 x products``) the
    expected stall is negligible, which is what the paper reports.  The Monte
    Carlo estimate below is used by the banking ablation, where smaller bank
    counts do cause visible stalls.
    """
    if products <= 0:
        return 0.0
    if banks <= 0:
        raise ValueError("bank count must be positive")
    guaranteed = max(0, -(-products // banks) - 1)
    if banks >= products and queue_depth >= 2:
        return float(guaranteed)
    rng = np.random.default_rng(seed)
    assignments = rng.integers(0, banks, size=(samples, products))
    # All samples at once: offset each row into its own bank range so a single
    # bincount yields the (samples, banks) load matrix.
    offsets = assignments + np.arange(samples)[:, None] * banks
    loads = np.bincount(offsets.ravel(), minlength=samples * banks).reshape(
        samples, banks
    )
    overflow = np.maximum(loads - queue_depth, 0).sum(axis=1)
    if queue_depth <= 1:
        per_sample = np.maximum(loads.max(axis=1) - 1, overflow)
    else:
        per_sample = overflow
    return float(guaranteed) + float(per_sample.sum()) / samples
