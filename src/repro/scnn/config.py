"""Accelerator configurations (paper Tables II and IV) — registry views.

This module is the historical home of :class:`AcceleratorConfig` and of the
SCNN / DCNN / DCNN-opt constants; both now live in the architecture
subsystem (:mod:`repro.arch`), where every evaluated accelerator is declared
once as an :class:`~repro.arch.spec.ArchitectureSpec` and served from the
:func:`~repro.arch.registry.default_registry`.  The names below are straight
re-exports of those registry-owned objects, so existing imports — and every
cache fingerprint built from them — are unchanged.
"""

from __future__ import annotations

from repro.arch.registry import (
    DCNN_CONFIG,
    DCNN_OPT_CONFIG,
    SCNN_CONFIG,
    SCNN_SPARSE_A_CONFIG,
    SCNN_SPARSE_W_CONFIG,
)
from repro.arch.spec import AcceleratorConfig

__all__ = [
    "AcceleratorConfig",
    "DCNN_CONFIG",
    "DCNN_OPT_CONFIG",
    "SCNN_CONFIG",
    "SCNN_SPARSE_A_CONFIG",
    "SCNN_SPARSE_W_CONFIG",
    "scnn_with_pe_count",
]


def scnn_with_pe_count(num_pes: int) -> AcceleratorConfig:
    """SCNN configuration rescaled to ``num_pes`` at 1,024 total multipliers."""
    return SCNN_CONFIG.with_pe_count(num_pes)
