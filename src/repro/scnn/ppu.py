"""Post-processing unit (PPU) model.

When a PE finishes an output-channel group, its PPU (paper Section IV):

1. exchanges the halo partial sums with the neighbouring PEs,
2. applies the point-wise non-linear activation (ReLU), and optionally
   pooling and dropout, and
3. compresses the resulting output activations into the run-length sparse
   format and writes them to the OARAM.

The functional simulator performs step 1 implicitly (it sums each PE's
drained accumulator, halo included, into the global output plane); this
module models steps 2 and 3 explicitly — including the amount of OARAM
traffic and the cycles a PPU with a given throughput needs — so the drain
phase can be studied on its own and reused by the end-to-end inference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.reference import max_pool2d, relu
from repro.scnn.config import AcceleratorConfig, SCNN_CONFIG
from repro.tensor.formats import CompressedActivations


@dataclass(frozen=True)
class PPUResult:
    """Outcome of post-processing one layer's output activations."""

    output: np.ndarray
    output_density: float
    compressed_bits: int
    dense_bits: int
    oaram_values_written: int
    drain_cycles: int
    fits_in_oaram: bool

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bits == 0:
            return float("inf")
        return self.dense_bits / self.compressed_bits


def apply_ppu(
    accumulated: np.ndarray,
    config: AcceleratorConfig = SCNN_CONFIG,
    *,
    apply_relu: bool = True,
    pool_window: int = 0,
    pool_stride: int = 2,
    dropout_keep: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    values_per_cycle: int = 4,
) -> PPUResult:
    """Post-process one layer's accumulated partial sums.

    Args:
        accumulated: dense pre-activation output of shape ``(K, H, W)`` (the
            concatenation of all PEs' drained accumulators after halo
            exchange).
        config: accelerator configuration (supplies the OARAM capacity and
            index width used for the compression accounting).
        apply_relu: apply the ReLU non-linearity (the paper's default).
        pool_window: if non-zero, apply ``pool_window x pool_window`` max
            pooling with ``pool_stride`` before compression.
        dropout_keep: inference-time dropout keep probability; values are
            scaled by it (the paper lists dropout among the PPU functions;
            at inference it is a pure scaling).
        rng: unused unless a future stochastic dropout mode is requested;
            accepted so callers can thread a generator through uniformly.
        values_per_cycle: PPU drain throughput used for the cycle estimate.

    Returns:
        A :class:`PPUResult` with the post-processed tensor, its compressed
        OARAM footprint and the drain cycle estimate.
    """
    accumulated = np.asarray(accumulated, dtype=float)
    if accumulated.ndim != 3:
        raise ValueError(f"expected (K, H, W) output, got shape {accumulated.shape}")
    if not 0.0 < dropout_keep <= 1.0:
        raise ValueError(f"dropout_keep must be in (0, 1], got {dropout_keep}")
    if values_per_cycle <= 0:
        raise ValueError("values_per_cycle must be positive")

    output = accumulated
    if apply_relu:
        output = relu(output)
    if pool_window:
        output = max_pool2d(output, pool_window, pool_stride)
    if dropout_keep < 1.0:
        output = output * dropout_keep

    compressed = CompressedActivations(output, index_bits=max(config.index_bits, 1))
    density = float(np.count_nonzero(output)) / output.size if output.size else 0.0
    stored_values = compressed.statistics.stored_elements
    # The PPU must read every accumulator entry once (dense drain) and write
    # only the stored (compressed) values to the OARAM.
    drain_cycles = -(-(accumulated.size + stored_values) // values_per_cycle)
    oaram_capacity_bits = config.oaram_bytes * 8 * config.num_pes
    return PPUResult(
        output=output,
        output_density=density,
        compressed_bits=compressed.storage_bits(),
        dense_bits=compressed.dense_storage_bits(),
        oaram_values_written=stored_values,
        drain_cycles=int(drain_cycles),
        fits_in_oaram=compressed.storage_bits() <= oaram_capacity_bits,
    )
