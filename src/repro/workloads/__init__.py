"""The workload subsystem: registry, density profiles, synthetic generators.

Mirrors the architecture subsystem (:mod:`repro.arch`) on the workload axis:
every network the repository can simulate is declared as a
:class:`WorkloadSpec` — a network builder bound to a named density profile
plus provenance — and registered in the :class:`WorkloadRegistry`.  The
paper's Table I trio is defined here (built by the unchanged
:mod:`repro.nn.networks` builders); parametric synthetic generators and a
density-profile library widen the evaluated space far beyond it, making both
topology *and* sparsity swept axes.

Public surface:

* :func:`default_registry` / :func:`get_workload` /
  :func:`available_workloads` / :func:`register_workload` /
  :func:`resolve_network` / :func:`resolve_workload` — the catalogue
  (see :mod:`repro.workloads.registry`).
* :class:`WorkloadSpec` — the declarative description
  (see :mod:`repro.workloads.spec`).
* :class:`DensityProfile` / :func:`get_profile` / :func:`register_profile` /
  :func:`available_profiles` / :func:`uniform_profile` /
  :func:`decay_profile` / :func:`sweep_profiles` — sparsity as data
  (see :mod:`repro.workloads.profiles`).
* :func:`plain_cnn` / :func:`resnet_style` / :func:`wide_shallow` /
  :func:`bottleneck_stack` — the synthetic generators
  (see :mod:`repro.workloads.synthetic`).

``repro.nn.networks.get_network`` and ``available_networks`` are shims over
this registry, so every consumer of those entry points — engine, comparison
sweeps, service scenarios, CLI — accepts registered workload names.
"""

from __future__ import annotations

from repro.workloads.profiles import (
    DensityProfile,
    available_profiles,
    decay_profile,
    get_profile,
    measured_profile,
    register_profile,
    sweep_profiles,
    uniform_profile,
)
from repro.workloads.registry import (
    WorkloadRegistry,
    available_workloads,
    default_registry,
    get_workload,
    register_workload,
    resolve_network,
    resolve_workload,
)
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import (
    bottleneck_stack,
    plain_cnn,
    resnet_style,
    wide_shallow,
)

__all__ = [
    "DensityProfile",
    "WorkloadRegistry",
    "WorkloadSpec",
    "available_profiles",
    "available_workloads",
    "bottleneck_stack",
    "decay_profile",
    "default_registry",
    "get_profile",
    "get_workload",
    "measured_profile",
    "plain_cnn",
    "register_profile",
    "register_workload",
    "resnet_style",
    "resolve_network",
    "resolve_workload",
    "sweep_profiles",
    "uniform_profile",
    "wide_shallow",
]
