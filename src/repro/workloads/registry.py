"""The workload registry: every network the repo can simulate.

One place declares every workload as a :class:`~repro.workloads.spec.WorkloadSpec`.
The paper's Table I trio (AlexNet, GoogLeNet, VGGNet) is defined here —
built by the very same :mod:`repro.nn.networks` builders as before, pinned
bitwise-identical by ``tests/test_workloads_equivalence.py`` — together with
the ``googlenet-stem`` builder variant and a zoo of parametric synthetic
networks (:mod:`repro.workloads.synthetic`).

Adding a workload is a data change, not a code change::

    from repro.workloads import WorkloadSpec, default_registry
    from repro.workloads.synthetic import plain_cnn

    default_registry().register(WorkloadSpec(
        name="deep-thin-24",
        builder=lambda: plain_cnn(depth=24, channels=16, name="DeepThin-24"),
        density_profile="uniform-25",
        description="24 thin layers at a quarter density",
    ))

and the new name is immediately accepted by ``get_network``, the engine's
``run_network``/``sweep``, ``repro compare --network deep-thin-24`` and the
service's scenarios — whose parameter choices resolve against this registry
*at validation time*, not at service boot.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Dict, Iterator, List, Tuple, Union

from repro.nn.densities import LayerSparsity
from repro.nn import networks as _networks
from repro.nn.networks import Network
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import (
    bottleneck_stack,
    plain_cnn,
    resnet_style,
    wide_shallow,
)


class WorkloadRegistry:
    """Name → :class:`WorkloadSpec` mapping with a JSON-able catalogue.

    Safe for concurrent readers and writers: the service validates requests
    on HTTP handler threads while the headline flow of this subsystem —
    registering a workload *into a running service* — mutates the catalogue,
    so every read snapshots and every write locks.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, WorkloadSpec] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str) -> str:
        return name.strip().lower()

    def register(self, spec: WorkloadSpec) -> WorkloadSpec:
        """Add ``spec`` to the catalogue; duplicate names are rejected."""
        key = self._key(spec.name)
        with self._lock:
            if key in self._specs:
                raise ValueError(f"workload {spec.name!r} is already registered")
            self._specs[key] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Drop a registered workload (tests clean up runtime registrations)."""
        with self._lock:
            self._specs.pop(self._key(name), None)

    def get(self, name: str) -> WorkloadSpec:
        """The spec registered under ``name`` (case-insensitive).

        An unknown name raises a :class:`KeyError` that lists every known
        workload, mirroring :meth:`repro.engine.EngineRun.column`.
        """
        with self._lock:
            spec = self._specs.get(self._key(name))
        if spec is None:
            known = ", ".join(map(repr, self.names())) or "(none)"
            raise KeyError(
                f"unknown workload {name!r}; registered workloads: {known}"
            )
        return spec

    def _snapshot(self) -> List[WorkloadSpec]:
        with self._lock:
            return list(self._specs.values())

    def names(self) -> List[str]:
        """Registered workload names, in registration order."""
        return [spec.name for spec in self._snapshot()]

    def describe(self) -> List[Dict[str, object]]:
        """JSON-able catalogue view, one entry per registered spec."""
        return [spec.describe() for spec in self._snapshot()]

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        with self._lock:
            return self._key(name) in self._specs

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    def __iter__(self) -> Iterator[WorkloadSpec]:
        return iter(self._snapshot())


def _built_in_specs() -> List[WorkloadSpec]:
    """The default workload catalogue: paper trio, stem variant, synthetics."""
    return [
        WorkloadSpec(
            name="alexnet",
            builder=_networks.alexnet,
            density_profile="measured",
            description="AlexNet's five convolutional layers "
            "(Caffe BVLC reference, 227x227 input).",
            paper_reference="Table I",
            source="paper",
            tags=("table1", "paper"),
        ),
        WorkloadSpec(
            name="googlenet",
            builder=_networks.googlenet,
            density_profile="measured",
            description="GoogLeNet's 54 inception convolutions "
            "(9 modules x 6 layers).",
            paper_reference="Table I",
            source="paper",
            tags=("table1", "paper"),
        ),
        WorkloadSpec(
            name="googlenet-stem",
            # Same layer catalogue as googlenet(include_stem=True), under a
            # distinct display name: comparison sweeps and figure reports key
            # results by the network's display name, so the variant must not
            # shadow plain GoogLeNet when both are requested together.
            builder=lambda: replace(
                _networks.googlenet(include_stem=True), name="GoogLeNet-stem"
            ),
            density_profile="measured",
            description="GoogLeNet including the three stem convolutions "
            "the paper's Table I excludes (57 layers).",
            paper_reference="Table I (stem excluded there)",
            source="paper",
            tags=("paper", "variant"),
        ),
        WorkloadSpec(
            name="vggnet",
            builder=_networks.vggnet,
            density_profile="measured",
            description="VGG-16's thirteen 3x3 convolutional layers "
            "(224x224 input).",
            paper_reference="Table I",
            source="paper",
            tags=("table1", "paper"),
        ),
        WorkloadSpec(
            name="plain-cnn-8",
            builder=lambda: plain_cnn(depth=8, channels=32, extent=32),
            density_profile="uniform-50",
            description="Constant-width chain: eight 3x3 layers of 32 "
            "channels at 32x32, both operands half dense.",
            source="synthetic",
            tags=("synthetic", "chain"),
        ),
        WorkloadSpec(
            name="resnet-style-13",
            builder=lambda: resnet_style(blocks=(2, 2, 2), base_channels=16,
                                         extent=32),
            density_profile="decay-90-30",
            description="Staged backbone: stem plus three stages of 3x3 "
            "pairs, extent halving and channels doubling per stage.",
            source="synthetic",
            tags=("synthetic", "staged"),
        ),
        WorkloadSpec(
            name="wide-shallow-3",
            builder=lambda: wide_shallow(layers=3, channels=256, extent=56),
            density_profile="uniform-25",
            description="Three very wide 3x3 layers (256 channels at 56x56): "
            "the accumulator-bank pressure corner.",
            source="synthetic",
            tags=("synthetic", "wide"),
        ),
        WorkloadSpec(
            name="bottleneck-stack-4",
            builder=lambda: bottleneck_stack(blocks=4, channels=32, extent=28),
            density_profile="uniform-50",
            description="Four 1x1/3x3/1x1 bottleneck triplets: unit-filter "
            "layers sandwiching 3x3 convolutions.",
            source="synthetic",
            tags=("synthetic", "bottleneck"),
        ),
    ]


_default_registry: Union[WorkloadRegistry, None] = None
_default_registry_lock = threading.Lock()


def default_registry() -> WorkloadRegistry:
    """The process-wide workload catalogue (created on first use)."""
    global _default_registry
    if _default_registry is None:
        with _default_registry_lock:
            if _default_registry is None:
                registry = WorkloadRegistry()
                for spec in _built_in_specs():
                    registry.register(spec)
                _default_registry = registry
    return _default_registry


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Register ``spec`` in the default registry (runtime registration)."""
    return default_registry().register(spec)


def get_workload(name: str) -> WorkloadSpec:
    """Spec of the named workload from the default registry."""
    return default_registry().get(name)


def available_workloads() -> List[str]:
    """Names the default registry knows, in registration order."""
    return default_registry().names()


def resolve_network(network: Union[str, Network]) -> Network:
    """Accept a workload name anywhere a :class:`Network` is.

    Network objects pass through untouched; unknown names raise the
    registry's catalogue-listing :class:`KeyError`.
    """
    if isinstance(network, str):
        return get_workload(network).build()
    if not isinstance(network, Network):
        raise TypeError(
            f"network must be a Network or a registered workload name, "
            f"got {type(network).__name__}"
        )
    return network


def resolve_workload(
    name: Union[str, Network]
) -> Tuple[Network, Dict[str, LayerSparsity]]:
    """Network plus per-layer sparsity table of one workload.

    The single resolution point the engine, the comparison sweeps and the
    service scenarios share: a workload *name* resolves through the registry
    (network built by the spec's builder, densities from its profile), while
    a bare :class:`Network` falls back to the measured Figure 1 calibration —
    exactly what the pre-registry code paths computed.
    """
    if isinstance(name, str):
        spec = get_workload(name)
        network = spec.build()
        return network, spec.sparsity(network)
    network = resolve_network(name)
    from repro.nn.densities import network_sparsity

    return network, network_sparsity(network)
