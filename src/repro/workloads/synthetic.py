"""Parametric synthetic network generators.

The paper evaluates exactly three hand-catalogued networks (Table I).  These
generators widen the workload space: each one emits a
:class:`~repro.nn.networks.Network` — a plain chain of
:class:`~repro.nn.layers.ConvLayerSpec` — from a handful of shape parameters,
so the existing cycle/energy models (which consume layer specs, not weights)
cover every generated topology with no new simulator code.

Four families, spanning the axes that change accelerator behaviour:

* :func:`plain_cnn` — constant-width chains (depth axis);
* :func:`resnet_style` — staged 3x3 pairs with extent halving and channel
  doubling per stage (the modern classification backbone shape);
* :func:`wide_shallow` — few layers, many channels (accumulator/bank
  pressure axis);
* :func:`bottleneck_stack` — 1x1 reduce / 3x3 / 1x1 expand triplets (the
  mixed-kernel shape that stresses the Cartesian-product dataflow's
  handling of unit filters).

Every generator chains extents exactly (layer *i*+1's input extent is layer
*i*'s output extent), so any parameter combination that constructs is a
valid, simulatable network — degenerate 1x1 kernels and single-channel
layers included.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network


def _require_positive(**values: int) -> None:
    for label, value in values.items():
        if value <= 0:
            raise ValueError(f"{label} must be positive, got {value}")


def plain_cnn(
    depth: int = 8,
    channels: int = 32,
    extent: int = 32,
    kernel: int = 3,
    in_channels: int = 3,
    name: Optional[str] = None,
) -> Network:
    """A constant-width chain of ``depth`` convolutions.

    Every layer keeps ``channels`` output channels and (for odd kernels) the
    spatial extent; the first layer lifts ``in_channels`` (image planes by
    default) up to ``channels``.
    """
    _require_positive(
        depth=depth, channels=channels, extent=extent, kernel=kernel,
        in_channels=in_channels,
    )
    name = name or f"PlainCNN-{depth}"
    padding = (kernel - 1) // 2
    layers: List[ConvLayerSpec] = []
    current_in, current_extent = in_channels, extent
    for index in range(depth):
        spec = ConvLayerSpec(
            f"conv{index + 1}",
            current_in,
            channels,
            current_extent,
            current_extent,
            kernel,
            kernel,
            stride=1,
            padding=padding,
        )
        layers.append(spec)
        current_in, current_extent = channels, spec.output_height
    return Network(name, tuple(layers))


def resnet_style(
    blocks: Sequence[int] = (2, 2, 2),
    base_channels: int = 16,
    extent: int = 32,
    in_channels: int = 3,
    name: Optional[str] = None,
) -> Network:
    """A staged residual-network-style backbone (convolutions only).

    One 3x3 stem, then ``len(blocks)`` stages; stage *s* runs ``blocks[s]``
    two-convolution blocks at ``base_channels * 2**s`` channels, entering
    with a stride-2 convolution (after the first stage) that halves the
    extent while the channel count doubles — the classic pyramid.  Only the
    convolutional layers are modelled (skip connections are additions, which
    the paper's evaluation excludes), so block count maps to
    ``1 + 2 * sum(blocks)`` layers.
    """
    if not blocks:
        raise ValueError("resnet_style needs at least one stage")
    for count in blocks:
        _require_positive(blocks_entry=count)
    _require_positive(
        base_channels=base_channels, extent=extent, in_channels=in_channels
    )
    name = name or f"ResNetStyle-{1 + 2 * sum(blocks)}"
    stem = ConvLayerSpec(
        "stem", in_channels, base_channels, extent, extent, 3, 3,
        stride=1, padding=1, module="stem",
    )
    layers: List[ConvLayerSpec] = [stem]
    current_in, current_extent = base_channels, stem.output_height
    for stage, count in enumerate(blocks):
        channels = base_channels * (2 ** stage)
        module = f"stage{stage + 1}"
        for block in range(count):
            downsample = stage > 0 and block == 0
            first = ConvLayerSpec(
                f"{module}/block{block + 1}a",
                current_in,
                channels,
                current_extent,
                current_extent,
                3,
                3,
                stride=2 if downsample else 1,
                padding=1,
                module=module,
            )
            layers.append(first)
            second = ConvLayerSpec(
                f"{module}/block{block + 1}b",
                channels,
                channels,
                first.output_height,
                first.output_width,
                3,
                3,
                stride=1,
                padding=1,
                module=module,
            )
            layers.append(second)
            current_in, current_extent = channels, second.output_height
    return Network(name, tuple(layers))


def wide_shallow(
    layers: int = 3,
    channels: int = 256,
    extent: int = 56,
    kernel: int = 3,
    in_channels: int = 3,
    name: Optional[str] = None,
) -> Network:
    """Few layers, many channels: the accumulator-pressure corner.

    Wide layers maximise the output-channel group count (``K/Kc``) and the
    number of distinct accumulator banks touched per input, which is exactly
    where banked-accumulator contention and the PPU drain show up.
    """
    _require_positive(layers=layers)  # plain_cnn validates the rest
    return plain_cnn(
        depth=layers,
        channels=channels,
        extent=extent,
        kernel=kernel,
        in_channels=in_channels,
        name=name or f"WideShallow-{layers}",
    )


def bottleneck_stack(
    blocks: int = 4,
    channels: int = 32,
    extent: int = 28,
    expansion: int = 4,
    in_channels: int = 3,
    name: Optional[str] = None,
) -> Network:
    """Stacked 1x1-reduce / 3x3 / 1x1-expand bottleneck triplets.

    Unit-filter layers have no halo and a weight-register footprint of one
    value per channel pair, so they exercise the opposite corner of the
    Cartesian-product dataflow from the 3x3 layers they sandwich.  Block
    *i*'s expand output (``channels * expansion``) feeds block *i*+1's
    reduce, mirroring bottleneck residual stages.
    """
    _require_positive(
        blocks=blocks, channels=channels, extent=extent, expansion=expansion,
        in_channels=in_channels,
    )
    name = name or f"BottleneckStack-{blocks}"
    layers: List[ConvLayerSpec] = []
    current_in = in_channels
    expanded = channels * expansion
    for block in range(blocks):
        module = f"block{block + 1}"
        reduce_spec = ConvLayerSpec(
            f"{module}/reduce", current_in, channels, extent, extent, 1, 1,
            module=module,
        )
        mid_spec = ConvLayerSpec(
            f"{module}/conv3x3", channels, channels, extent, extent, 3, 3,
            padding=1, module=module,
        )
        expand_spec = ConvLayerSpec(
            f"{module}/expand", channels, expanded, extent, extent, 1, 1,
            module=module,
        )
        layers.extend((reduce_spec, mid_spec, expand_spec))
        current_in = expanded
    return Network(name, tuple(layers))
