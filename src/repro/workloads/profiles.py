"""The density-profile library: sparsity as a swept axis.

The paper bakes one sparsity assumption into its evaluation — the per-layer
weight/activation densities measured on pruned networks (Figure 1).  This
module makes that assumption *one profile among many*: a
:class:`DensityProfile` maps any network to a per-layer
:class:`~repro.nn.densities.LayerSparsity` table, and a process-wide profile
registry lets workloads, scenarios and the CLI name the profile they want.

Built-in profiles:

* ``measured`` — the Figure 1 calibration
  (:func:`repro.nn.densities.network_sparsity`); what the paper networks use.
* ``dense`` — both operands fully dense (the no-sparsity baseline).
* ``uniform-10`` / ``uniform-25`` / ``uniform-50`` / ``uniform-75`` —
  uniform densities, the grid Figure 7 sweeps.
* ``decay-90-30`` — densities decaying linearly with depth from 0.9 to 0.3,
  the shape pruning typically produces on deep networks.

Parametric constructors (:func:`uniform_profile`, :func:`decay_profile`,
:func:`sweep_profiles`) mint further profiles at any density, and
:func:`register_profile` publishes them so scenario validation, ``repro
workloads --profiles`` and workload specs can resolve them by name.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.nn.densities import (
    MIN_DENSITY,
    LayerSparsity,
    network_sparsity,
    uniform_sparsity,
)
from repro.nn.networks import Network


def clamp_density(value: float) -> float:
    """Clamp a density into the representable ``[MIN_DENSITY, 1.0]`` band.

    The floor is :data:`repro.nn.densities.MIN_DENSITY` — the same one the
    measured calibration clamps to, so profiles and the Figure 1 tables can
    never diverge on what "as sparse as representable" means.
    """
    return max(MIN_DENSITY, min(1.0, float(value)))


@dataclass(frozen=True)
class DensityProfile:
    """A named rule assigning operand densities to every layer of a network.

    ``fn`` receives the :class:`~repro.nn.networks.Network` and returns the
    per-layer table keyed by layer name — exactly the shape
    :func:`repro.nn.densities.network_sparsity` produces, so profiles and the
    measured calibration are interchangeable everywhere sparsity flows
    (engine, comparison sweeps, service scenarios).
    """

    name: str
    fn: Callable[[Network], Dict[str, LayerSparsity]] = field(compare=False)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a density profile needs a non-empty name")
        if not callable(self.fn):
            raise TypeError(f"profile {self.name!r}: fn must be callable")

    def table(self, network: Network) -> Dict[str, LayerSparsity]:
        """Per-layer sparsity table for ``network``, keyed by layer name."""
        table = self.fn(network)
        missing = [spec.name for spec in network.layers if spec.name not in table]
        if missing:
            raise KeyError(
                f"profile {self.name!r} assigned no density to layer(s) "
                f"{', '.join(map(repr, missing))} of {network.name}"
            )
        return table

    def describe(self) -> Dict[str, str]:
        """JSON-able catalogue entry."""
        return {"name": self.name, "description": self.description}


# -- parametric constructors ------------------------------------------------------


def measured_profile() -> DensityProfile:
    """The paper's Figure 1 calibration as a profile."""
    return DensityProfile(
        name="measured",
        fn=network_sparsity,
        description="Per-layer densities measured on pruned networks "
        "(paper Figure 1); unknown networks fall back to 0.40/0.45.",
    )


def uniform_profile(
    density: float,
    *,
    activation_density: Optional[float] = None,
    name: Optional[str] = None,
) -> DensityProfile:
    """Every layer at one weight density (and optionally another for activations).

    This is the axis the Figure 7 sensitivity study sweeps; densities outside
    ``(0, 1]`` are rejected rather than clamped so sweep grids fail loudly.
    """
    activation = density if activation_density is None else activation_density
    for label, value in (("density", density), ("activation_density", activation)):
        if not 0.0 < value <= 1.0:
            raise ValueError(f"{label} must be in (0, 1], got {value}")
    if name is None:
        name = (
            f"uniform-{round(density * 100):d}"
            if activation == density
            else f"uniform-w{round(density * 100):d}-a{round(activation * 100):d}"
        )
    table = LayerSparsity(density, activation)

    def fn(network: Network) -> Dict[str, LayerSparsity]:
        if activation == density:
            # The Figure 7 sweep helper already builds exactly this table.
            return uniform_sparsity(network, density)
        return {spec.name: table for spec in network.layers}

    return DensityProfile(
        name=name,
        fn=fn,
        description=f"Uniform densities: weights {density:.2f}, "
        f"activations {activation:.2f} on every layer.",
    )


def decay_profile(
    start: float, end: float, *, name: Optional[str] = None
) -> DensityProfile:
    """Densities interpolated linearly with depth from ``start`` to ``end``.

    Pruned networks keep early layers denser than late ones (Figure 1 shows
    exactly this shape); the profile reproduces that trend parametrically.
    Both endpoints are clamped into the representable band, so ``end=0.0``
    degrades to :data:`MIN_DENSITY` instead of an invalid zero density.
    """
    start = clamp_density(start)
    end = clamp_density(end)
    if name is None:
        name = f"decay-{round(start * 100):d}-{round(end * 100):d}"

    def fn(network: Network) -> Dict[str, LayerSparsity]:
        count = len(network.layers)
        table: Dict[str, LayerSparsity] = {}
        for index, spec in enumerate(network.layers):
            fraction = index / (count - 1) if count > 1 else 0.0
            density = clamp_density(start + (end - start) * fraction)
            table[spec.name] = LayerSparsity(density, density)
        return table

    return DensityProfile(
        name=name,
        fn=fn,
        description=f"Densities decaying linearly with depth from "
        f"{start:.2f} to {end:.2f}.",
    )


def sweep_profiles(
    start: float = 0.9, stop: float = 0.1, steps: int = 9
) -> List[DensityProfile]:
    """A grid of uniform profiles from ``start`` down to ``stop``.

    The parametric generalisation of the Figure 7 density sweep.  Hand the
    profiles' tables straight to the engine (``engine.run_network(network,
    sparsity=profile.table(network))``), or publish the grid points the
    built-in catalogue does not already carry::

        for profile in sweep_profiles():
            if profile.name not in available_profiles():
                register_profile(profile)

    (The default grid includes ``uniform-50`` and ``uniform-10``, which are
    built in — blanket registration would collide with them.)
    """
    if steps < 1:
        raise ValueError(f"steps must be positive, got {steps}")
    if steps == 1:
        return [uniform_profile(clamp_density(start))]
    stride = (stop - start) / (steps - 1)
    return [
        uniform_profile(clamp_density(start + stride * index))
        for index in range(steps)
    ]


# -- the process-wide profile registry --------------------------------------------

_profiles: Union[Dict[str, DensityProfile], None] = None
# One lock covers catalogue creation and every mutation/snapshot: profiles
# register at runtime while service threads resolve them during validation.
_profiles_lock = threading.Lock()


def _built_in_profiles() -> List[DensityProfile]:
    """The default profile catalogue, in presentation order."""
    return [
        measured_profile(),
        uniform_profile(1.0, name="dense"),
        uniform_profile(0.75),
        uniform_profile(0.50),
        uniform_profile(0.25),
        uniform_profile(0.10),
        decay_profile(0.9, 0.3),
    ]


def _key(name: str) -> str:
    """Catalogue key: lookups are case-insensitive, like the workload registry."""
    return name.strip().lower()


def _catalogue() -> Dict[str, DensityProfile]:
    """The live catalogue dict.  Caller holds ``_profiles_lock``."""
    global _profiles
    if _profiles is None:
        _profiles = {}
        for profile in _built_in_profiles():
            _profiles[_key(profile.name)] = profile
    return _profiles


def register_profile(profile: DensityProfile) -> DensityProfile:
    """Publish ``profile`` under its name; duplicate names are rejected."""
    key = _key(profile.name)
    with _profiles_lock:
        catalogue = _catalogue()
        if key in catalogue:
            raise ValueError(
                f"density profile {profile.name!r} is already registered"
            )
        catalogue[key] = profile
    return profile


def unregister_profile(name: str) -> None:
    """Remove a registered profile (tests clean up runtime registrations)."""
    with _profiles_lock:
        _catalogue().pop(_key(name), None)


def get_profile(name: str) -> DensityProfile:
    """The profile registered under ``name`` (case-insensitive).

    An unknown name raises a :class:`KeyError` that lists the catalogue,
    mirroring :meth:`repro.engine.EngineRun.column`.
    """
    with _profiles_lock:
        profile = _catalogue().get(_key(name))
    if profile is None:
        known = ", ".join(map(repr, available_profiles())) or "(none)"
        raise KeyError(
            f"unknown density profile {name!r}; registered profiles: {known}"
        )
    return profile


def available_profiles() -> List[str]:
    """Registered profile names, in registration order."""
    with _profiles_lock:
        return [profile.name for profile in _catalogue().values()]
