"""Declarative workload descriptions.

A :class:`WorkloadSpec` is to networks what
:class:`~repro.arch.spec.ArchitectureSpec` is to accelerators: one registered
workload as *data* — a network builder, the name of the density profile its
operands are generated at, and provenance metadata (paper table, synthetic
family, tags).  Registering a spec (see :mod:`repro.workloads.registry`) is
all it takes for a workload to be accepted by ``get_network``, the engine's
``run_network``/``sweep``, the comparison sweeps, the service scenarios and
the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.nn.densities import LayerSparsity
from repro.nn.networks import Network
from repro.workloads.profiles import get_profile


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: network builder + density profile + provenance.

    Attributes:
        name: registry key (lower-case by convention, e.g. ``alexnet``,
            ``plain-cnn-8``); what every ``network`` parameter accepts.
        builder: zero-argument callable producing the
            :class:`~repro.nn.networks.Network`.  Builder *options* are
            frozen into the spec (``googlenet-stem`` pins
            ``include_stem=True``), so every variant is reachable by name.
        density_profile: name of the registered
            :class:`~repro.workloads.profiles.DensityProfile` the operand
            tensors are generated at; resolved live, so a profile registered
            after the spec still applies.
        description: one-line human-readable summary.
        paper_reference: where the workload comes from in the paper, if
            anywhere (``Table I`` for the evaluated trio).
        source: provenance family — ``paper``, ``synthetic`` or ``user``.
        tags: free-form labels the catalogue views filter on.
    """

    name: str
    builder: Callable[[], Network] = field(compare=False)
    density_profile: str = "measured"
    description: str = ""
    paper_reference: str = ""
    source: str = "user"
    tags: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("a workload spec needs a non-empty name")
        if not callable(self.builder):
            raise TypeError(f"workload {self.name!r}: builder must be callable")
        if not self.density_profile:
            raise ValueError(f"workload {self.name!r} names no density profile")

    def build(self) -> Network:
        """Construct the network (a fresh object on every call)."""
        return self.builder()

    def sparsity(self, network: Network = None) -> Dict[str, LayerSparsity]:
        """Per-layer density table from the spec's profile.

        ``network`` avoids rebuilding when the caller already holds one;
        the profile is resolved against the live profile registry.
        """
        if network is None:
            network = self.build()
        return get_profile(self.density_profile).table(network)

    def describe(self) -> Dict[str, Any]:
        """JSON-able catalogue entry (what ``repro workloads --list`` shows)."""
        network = self.build()
        return {
            "name": self.name,
            "network": network.name,
            "description": self.description,
            "density_profile": self.density_profile,
            "paper_reference": self.paper_reference,
            "source": self.source,
            "tags": list(self.tags),
            "conv_layers": network.conv_layer_count,
            "total_multiplies": network.total_multiplies,
            "max_weight_bytes": network.max_layer_weight_bytes,
            "max_activation_bytes": network.max_layer_activation_bytes,
        }
