"""``python -m repro`` — regenerate the paper's tables and figures.

Also the front door to the simulation service: ``python -m repro serve``
boots the HTTP service (one warm engine, shared result cache) and
``python -m repro submit SCENARIO`` sends it work.  See
:mod:`repro.experiments.cli` for the experiment drivers and
:mod:`repro.service.cli` for the service subcommands.
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
