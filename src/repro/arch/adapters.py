"""Simulator adapters: the common evaluation interface behind every spec.

An adapter knows how to evaluate one *family* of architectures with the
repository's performance models; a spec names its adapter
(:attr:`~repro.arch.spec.ArchitectureSpec.adapter`) and the registry resolves
it at simulation time.  Every adapter exposes the same
``simulate_layer(workload, config) -> ArchLayerResult`` surface, so the
engine's comparison sweeps (and anything else that iterates architectures)
never branch on accelerator family.

Two adapters cover the paper's catalogue:

* ``cartesian-sparse`` — the vectorised PT-IS-CP cycle model
  (:func:`repro.scnn.cycles.simulate_layer_cycles`).  The dataflow's
  ``skips_zero_weights`` / ``skips_zero_activations`` flags decide which
  operands the architecture observes compressed: an operand the dataflow
  cannot skip is presented fully dense (the cycle model consumes only the
  non-zero *structure* of its operands, so an all-ones stand-in models an
  uncompressed stream exactly).  This one adapter therefore covers SCNN and
  both single-operand ablations.
* ``dot-product-dense`` — the dense PT-IS-DP baseline model
  (:func:`repro.scnn.dcnn.simulate_dcnn_layer`); only the layer shape
  matters, so the operand tensors are never materialised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.arch.spec import AcceleratorConfig
from repro.scnn.cycles import simulate_layer_cycles
from repro.scnn.dcnn import simulate_dcnn_layer


@dataclass(frozen=True)
class ArchLayerResult:
    """One layer evaluated on one architecture, adapter-independent.

    ``operations`` counts the multiplier slots the layer actually occupied —
    non-zero products for a sparse architecture, all multiplies for a dense
    one.  ``weight_vector_fetches`` is only reported by the sparse adapter
    (the energy model turns it into weight-buffer reads); dense adapters
    leave it ``None``.
    """

    architecture: str
    layer: str
    cycles: int
    operations: int
    multiplier_utilization: float
    idle_fraction: float
    weight_vector_fetches: Optional[int] = None


class SimulatorAdapter:
    """Common interface every architecture family implements."""

    #: Registry key (the value a spec's ``adapter`` field names).
    name: str = ""

    def simulate_layer(self, workload, config: AcceleratorConfig) -> ArchLayerResult:
        """Evaluate one layer workload on ``config``.

        ``workload`` is anything duck-typed like
        :class:`repro.nn.inference.LayerWorkload` (``spec`` / ``weights`` /
        ``activations``); adapters that do not need the operand tensors must
        not touch them, so lazy :class:`~repro.engine.workloads.WorkloadHandle`
        recipes stay cheap.
        """
        raise NotImplementedError


class CartesianSparseAdapter(SimulatorAdapter):
    """PT-IS-CP architectures: SCNN and its single-operand ablations."""

    name = "cartesian-sparse"

    def simulate_layer(self, workload, config: AcceleratorConfig) -> ArchLayerResult:
        """Run the vectorised sparse cycle model, densifying unskipped operands."""
        dataflow = config.dataflow
        weights = workload.weights
        activations = workload.activations
        if not dataflow.skips_zero_weights:
            # The cycle model only reads the non-zero structure; an all-ones
            # tensor is exactly an uncompressed operand stream.
            weights = np.ones_like(weights)
        if not dataflow.skips_zero_activations:
            activations = np.ones_like(activations)
        result = simulate_layer_cycles(workload.spec, weights, activations, config)
        return ArchLayerResult(
            architecture=config.name,
            layer=workload.spec.name,
            cycles=int(result.cycles),
            operations=int(result.products),
            multiplier_utilization=result.multiplier_utilization,
            idle_fraction=result.idle_fraction,
            weight_vector_fetches=int(result.weight_vector_fetches),
        )


class DotProductDenseAdapter(SimulatorAdapter):
    """PT-IS-DP architectures: the DCNN / DCNN-opt dense baselines."""

    name = "dot-product-dense"

    def simulate_layer(self, workload, config: AcceleratorConfig) -> ArchLayerResult:
        """Run the dense baseline model (layer shape only, no tensors)."""
        result = simulate_dcnn_layer(workload.spec, config)
        return ArchLayerResult(
            architecture=config.name,
            layer=workload.spec.name,
            cycles=int(result.cycles),
            operations=int(result.multiplies),
            multiplier_utilization=result.multiplier_utilization,
            idle_fraction=result.idle_fraction,
            weight_vector_fetches=None,
        )


_ADAPTERS: Dict[str, SimulatorAdapter] = {
    adapter.name: adapter
    for adapter in (CartesianSparseAdapter(), DotProductDenseAdapter())
}


def available_adapters() -> List[str]:
    """Names of every registered simulator adapter."""
    return sorted(_ADAPTERS)


def get_adapter(name: str) -> SimulatorAdapter:
    """Adapter registered under ``name``; unknown names list the catalogue."""
    try:
        return _ADAPTERS[name]
    except KeyError:
        known = ", ".join(map(repr, available_adapters())) or "(none)"
        raise KeyError(
            f"unknown simulator adapter {name!r}; available adapters: {known}"
        ) from None


def register_adapter(adapter: SimulatorAdapter) -> SimulatorAdapter:
    """Add a custom adapter (a new architecture family) to the catalogue."""
    if not adapter.name:
        raise ValueError("an adapter needs a non-empty name")
    if adapter.name in _ADAPTERS:
        raise ValueError(f"adapter {adapter.name!r} is already registered")
    _ADAPTERS[adapter.name] = adapter
    return adapter


def effective_densities(
    config: AcceleratorConfig,
    weight_density: float,
    activation_density: float,
    output_density: float,
) -> Tuple[float, float, float]:
    """Densities as observed by ``config``'s dataflow.

    An operand the dataflow cannot skip is observed fully dense (density
    1.0); output activations follow the activation operand, since one layer's
    outputs are the next layer's input activations.  The energy model is fed
    these *effective* densities so a single-operand ablation is charged for
    the dense stream it actually moves.
    """
    dataflow = config.dataflow
    effective_weight = weight_density if dataflow.skips_zero_weights else 1.0
    if dataflow.skips_zero_activations:
        return effective_weight, activation_density, output_density
    return effective_weight, 1.0, 1.0
