"""The architecture subsystem: registry, adapters, comparison sweeps.

Every accelerator the repository can simulate is declared here as an
:class:`ArchitectureSpec` — hardware parameterization plus a simulator
adapter binding plus paper provenance — and registered in the
:class:`ArchitectureRegistry`.  The canonical Table II / Table IV
configurations are *defined* in :mod:`repro.arch.registry` (and re-exported
by :mod:`repro.scnn.config` for compatibility); the sparsity ablations and
granularity variants ride along as further entries.  New variants are a data
change: register a spec and it is immediately comparable everywhere.

Public surface:

* :func:`default_registry` / :func:`get_architecture` /
  :func:`available_architectures` / :func:`resolve_config` — the catalogue.
* :class:`ArchitectureSpec` / :class:`AcceleratorConfig` — the declarative
  descriptions (see :mod:`repro.arch.spec`).
* :func:`get_adapter` / :class:`SimulatorAdapter` — the common
  ``simulate_layer`` evaluation interface (see :mod:`repro.arch.adapters`).
* :func:`compare_network` / :func:`compare_networks` /
  :class:`NetworkComparison` — cross-architecture comparison sweeps through
  the cached, parallel simulation engine (see :mod:`repro.arch.compare`).

The adapter and comparison modules import the simulators and the engine, so
they load lazily (PEP 562) — importing :mod:`repro.arch` from low layers
(``repro.scnn.config`` consumes the registry at import time) never drags the
engine in.
"""

from __future__ import annotations

from repro.arch.registry import (
    ArchitectureRegistry,
    DCNN_CONFIG,
    DCNN_OPT_CONFIG,
    SCNN_CONFIG,
    SCNN_SPARSE_A_CONFIG,
    SCNN_SPARSE_W_CONFIG,
    available_architectures,
    default_registry,
    get_architecture,
    resolve_config,
)
from repro.arch.spec import AcceleratorConfig, ArchitectureSpec

# Names served lazily from the heavier modules (they import the simulators
# and the engine, which in turn import this package).
_LAZY = {
    "ArchLayerResult": "repro.arch.adapters",
    "SimulatorAdapter": "repro.arch.adapters",
    "available_adapters": "repro.arch.adapters",
    "effective_densities": "repro.arch.adapters",
    "get_adapter": "repro.arch.adapters",
    "register_adapter": "repro.arch.adapters",
    "ArchLayerMetrics": "repro.arch.compare",
    "NetworkComparison": "repro.arch.compare",
    "compare_network": "repro.arch.compare",
    "compare_networks": "repro.arch.compare",
}

__all__ = [
    "AcceleratorConfig",
    "ArchitectureRegistry",
    "ArchitectureSpec",
    "DCNN_CONFIG",
    "DCNN_OPT_CONFIG",
    "SCNN_CONFIG",
    "SCNN_SPARSE_A_CONFIG",
    "SCNN_SPARSE_W_CONFIG",
    "available_architectures",
    "default_registry",
    "get_architecture",
    "resolve_config",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    """Resolve adapter / comparison names on first use (lazy import)."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
