"""Cross-architecture comparison sweeps.

:func:`compare_network` evaluates one network on any set of registered
architectures and returns a :class:`NetworkComparison` — per-layer cycles and
energy for every architecture, with per-module and network-wide speedup /
energy-ratio aggregations relative to a baseline (DCNN by default, any
registered name via ``baseline=``; a spec's ``baseline`` field is provenance
metadata, not a sweep default).  The paper's headline comparisons are thin views over this:
Figure 8 is the speedup column, Figure 10 the energy column, Table IV the
configuration metadata.

Two evaluation paths feed one comparison, both through the shared
:class:`~repro.engine.SimulationEngine` (cached, parallel):

* the canonical trio (SCNN, DCNN, DCNN-opt) is *derived from the very same*
  ``engine.run_network`` simulation the figure experiments consume, so a
  comparison's SCNN/DCNN/DCNN-opt numbers are bitwise-identical to the
  pre-existing Figure 8 / Figure 10 paths (pinned by
  ``tests/test_compare_equivalence.py``);
* every other registered architecture (the sparsity ablations, granularity
  variants, anything a user registers) is evaluated through
  ``engine.run_architectures`` — the registry's simulator adapters — with
  energy accounted at the *effective* densities its dataflow observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.arch.adapters import effective_densities
from repro.arch.registry import get_architecture
from repro.arch.spec import ArchitectureSpec
from repro.nn.networks import Network
from repro.timeloop.energy import (
    DEFAULT_ENERGY_TABLE,
    EnergyTable,
    layer_energy_from_densities,
)

#: The paper's headline comparison (Figures 8 and 10).
DEFAULT_COMPARISON = ("DCNN", "DCNN-opt", "SCNN")

#: Architectures whose metrics are views over the canonical network
#: simulation rather than separate adapter runs.
_CORE = ("SCNN", "DCNN", "DCNN-opt")


@dataclass(frozen=True)
class ArchLayerMetrics:
    """One layer of one architecture inside a comparison."""

    architecture: str
    layer: str
    module: str
    cycles: int
    operations: int
    multiplier_utilization: float
    idle_fraction: float
    energy_total: float


@dataclass
class NetworkComparison:
    """Per-layer, per-module and network-wide cross-architecture metrics.

    Aggregations deliberately mirror the arithmetic of
    :class:`repro.scnn.simulator.NetworkSimulation` and of the Figure 8 / 10
    drivers (same member ordering, same summation order, same guards), so a
    comparison reproduces those figures bitwise.
    """

    network: str
    seed: int
    baseline: str
    architectures: List[str]
    layers: Dict[str, List[ArchLayerMetrics]]
    oracle_cycles: List[int] = field(default_factory=list)

    def _column(self, architecture: str) -> List[ArchLayerMetrics]:
        try:
            return self.layers[architecture]
        except KeyError:
            known = ", ".join(map(repr, self.architectures)) or "(none)"
            raise KeyError(
                f"no compared architecture named {architecture!r}; "
                f"this comparison evaluated: {known}"
            ) from None

    # -- network-wide aggregation ----------------------------------------------

    def modules(self) -> List[str]:
        """Distinct module labels in first-appearance (layer) order."""
        seen: List[str] = []
        for metrics in self._column(self.baseline):
            if metrics.module not in seen:
                seen.append(metrics.module)
        return seen

    def total_cycles(self, architecture: str) -> int:
        """Summed cycles of one architecture across every layer."""
        return sum(metrics.cycles for metrics in self._column(architecture))

    def total_energy(self, architecture: str) -> float:
        """Summed energy (picojoules) of one architecture across every layer."""
        return sum(metrics.energy_total for metrics in self._column(architecture))

    def speedup(self, architecture: str) -> float:
        """Network speedup of ``architecture`` over the baseline."""
        cycles = self.total_cycles(architecture)
        if cycles == 0:
            return float("inf")
        return self.total_cycles(self.baseline) / cycles

    def energy_ratio(self, architecture: str) -> float:
        """Network energy relative to the baseline (lower is better)."""
        baseline = self.total_energy(self.baseline)
        if baseline == 0:
            return float("inf")
        return self.total_energy(architecture) / baseline

    @property
    def oracle_total_cycles(self) -> int:
        """Summed oracle-bound cycles across every layer."""
        return sum(self.oracle_cycles)

    @property
    def oracle_speedup(self) -> float:
        """Network speedup of the oracular SCNN over the baseline."""
        oracle = self.oracle_total_cycles
        if oracle == 0:
            return float("inf")
        return self.total_cycles(self.baseline) / oracle

    # -- per-module aggregation -------------------------------------------------

    def _module_members(
        self, architecture: str, module: str
    ) -> List[ArchLayerMetrics]:
        return [m for m in self._column(architecture) if m.module == module]

    def module_cycles(self, module: str, architecture: str) -> int:
        """Summed cycles of one module on one architecture."""
        return sum(m.cycles for m in self._module_members(architecture, module))

    def module_speedup(self, module: str, architecture: str) -> float:
        """Module speedup over the baseline (Figure 8's bar groups)."""
        cycles = self.module_cycles(module, architecture)
        if cycles == 0:
            return float("inf")
        return self.module_cycles(module, self.baseline) / cycles

    def module_oracle_speedup(self, module: str) -> float:
        """Module speedup of the oracular SCNN over the baseline."""
        members = [
            self.oracle_cycles[index]
            for index, metrics in enumerate(self._column(self.baseline))
            if metrics.module == module
        ]
        oracle = sum(members)
        if oracle == 0:
            return float("inf")
        return self.module_cycles(module, self.baseline) / oracle

    def module_energy_ratio(self, module: str, architecture: str) -> float:
        """Module energy relative to the baseline (Figure 10's bar groups).

        Returns 0.0 when the baseline module energy is zero, matching the
        Figure 10 driver's guard.
        """
        baseline = sum(
            m.energy_total for m in self._module_members(self.baseline, module)
        )
        if not baseline:
            return 0.0
        total = sum(
            m.energy_total for m in self._module_members(architecture, module)
        )
        return total / baseline


def _core_layer_metrics(name: str, simulation) -> List[ArchLayerMetrics]:
    """Trio metrics as views over one canonical network simulation."""
    metrics = []
    for layer in simulation.layers:
        if name == "SCNN":
            cycles = int(layer.scnn.cycles)
            operations = int(layer.scnn.products)
            utilization = layer.scnn.multiplier_utilization
            idle = layer.scnn.idle_fraction
        else:  # DCNN and DCNN-opt share the dense performance model.
            cycles = int(layer.dcnn.cycles)
            operations = int(layer.dcnn.multiplies)
            utilization = layer.dcnn.multiplier_utilization
            idle = layer.dcnn.idle_fraction
        metrics.append(
            ArchLayerMetrics(
                architecture=name,
                layer=layer.layer_name,
                module=layer.module,
                cycles=cycles,
                operations=operations,
                multiplier_utilization=utilization,
                idle_fraction=idle,
                energy_total=layer.energy[name].total,
            )
        )
    return metrics


def _variant_layer_metrics(
    spec: ArchitectureSpec,
    results,
    simulation,
    energy_table: EnergyTable,
) -> List[ArchLayerMetrics]:
    """Adapter results plus effective-density energy for one variant."""
    metrics = []
    for index, (layer, result) in enumerate(zip(simulation.layers, results)):
        workload = layer.workload
        weight_density, activation_density, output_density = effective_densities(
            spec.config,
            workload.weight_density,
            workload.activation_density,
            layer.output_density,
        )
        weight_buffer_reads = None
        if spec.config.is_sparse and result.weight_vector_fetches is not None:
            weight_buffer_reads = (
                result.weight_vector_fetches * spec.config.multipliers_f
            )
        energy = layer_energy_from_densities(
            workload.spec,
            spec.config,
            weight_density=weight_density,
            activation_density=activation_density,
            output_density=output_density,
            cycles=result.cycles,
            products=result.operations,
            weight_buffer_reads=weight_buffer_reads,
            table=energy_table,
        )
        metrics.append(
            ArchLayerMetrics(
                architecture=spec.name,
                layer=layer.layer_name,
                module=layer.module,
                cycles=result.cycles,
                operations=result.operations,
                multiplier_utilization=result.multiplier_utilization,
                idle_fraction=result.idle_fraction,
                energy_total=energy.total,
            )
        )
    return metrics


def compare_network(
    network: Union[str, Network],
    architectures: Optional[Sequence[str]] = None,
    *,
    seed: int = 0,
    baseline: str = "DCNN",
    density_profile: Optional[str] = None,
    engine=None,
    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
    parallel: Optional[int] = None,
) -> NetworkComparison:
    """Evaluate ``network`` on every requested architecture.

    ``network`` accepts any registered workload name — the paper catalogue,
    the synthetic zoo, or anything registered at runtime (see
    :mod:`repro.workloads`) — or a :class:`Network` object.
    ``architectures`` defaults to the paper's headline trio
    (:data:`DEFAULT_COMPARISON`); any registered name is accepted, and the
    baseline is always evaluated even when not listed.  ``density_profile``
    names a registered :class:`~repro.workloads.profiles.DensityProfile`
    that overrides the workload's own densities — the hook that makes
    sparsity a swept axis of the comparison.  ``engine`` overrides the
    shared default :class:`~repro.engine.SimulationEngine` (the service's
    ``compare`` scenario passes its own warm engine).
    """
    from repro.engine import default_engine

    if engine is None:
        engine = default_engine()
    names = list(architectures) if architectures else list(DEFAULT_COMPARISON)
    if baseline not in names:
        names.insert(0, baseline)
    # Fail fast (with the registry's catalogue-listing error) before any
    # simulation work starts.
    specs = {name: get_architecture(name) for name in names}

    sparsity = None
    if density_profile is not None:
        from repro.workloads.profiles import get_profile
        from repro.workloads.registry import resolve_network

        network = resolve_network(network)
        sparsity = get_profile(density_profile).table(network)
    simulation = engine.run_network(
        network, seed=seed, sparsity=sparsity, energy_table=energy_table
    )
    variant_names = [name for name in names if name not in _CORE]
    variant_runs = {}
    if variant_names:
        workloads = [layer.workload for layer in simulation.layers]
        grid = engine.run_architectures(
            workloads,
            [specs[name] for name in variant_names],
            parallel=parallel,
        )
        variant_runs = {name: grid.column(name) for name in variant_names}

    layers: Dict[str, List[ArchLayerMetrics]] = {}
    for name in names:
        if name in _CORE:
            layers[name] = _core_layer_metrics(name, simulation)
        else:
            layers[name] = _variant_layer_metrics(
                specs[name], variant_runs[name], simulation, energy_table
            )
    return NetworkComparison(
        network=simulation.network.name,
        seed=seed,
        baseline=baseline,
        architectures=names,
        layers=layers,
        oracle_cycles=[int(layer.oracle_cycles) for layer in simulation.layers],
    )


def compare_networks(
    networks: Sequence[Union[str, Network]],
    architectures: Optional[Sequence[str]] = None,
    *,
    seed: int = 0,
    baseline: str = "DCNN",
    density_profile: Optional[str] = None,
    engine=None,
    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
    parallel: Optional[int] = None,
) -> Dict[str, NetworkComparison]:
    """Run :func:`compare_network` over several networks, keyed by name.

    Results are keyed by each network's *display* name (what the reports
    print).  Repeated requests for the same workload are deduplicated
    (harmless, as before); two *distinct* workloads whose builders produce
    the same display name would silently shadow each other, so that
    collision is an error — give the builders distinct ``Network`` names.
    """
    seen_requests = set()
    unique = []
    for network in networks:
        request_key = (
            network.strip().lower() if isinstance(network, str) else id(network)
        )
        if request_key in seen_requests:
            continue
        seen_requests.add(request_key)
        unique.append(network)
    comparisons: Dict[str, NetworkComparison] = {}
    for network in unique:
        comparison = compare_network(
            network,
            architectures,
            seed=seed,
            baseline=baseline,
            density_profile=density_profile,
            engine=engine,
            energy_table=energy_table,
            parallel=parallel,
        )
        existing = comparisons.get(comparison.network)
        if existing is not None:
            if existing == comparison:
                # Same workload requested under two spellings (name and
                # Network object, or two equal objects): a harmless repeat.
                continue
            raise ValueError(
                f"two requested workloads share the display name "
                f"{comparison.network!r}; results would overwrite each other "
                "— give their builders distinct Network names"
            )
        comparisons[comparison.network] = comparison
    return comparisons
