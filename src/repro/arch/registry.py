"""The architecture registry: every accelerator the repo can simulate.

One place declares every evaluated accelerator as an
:class:`~repro.arch.spec.ArchitectureSpec`.  The canonical configurations of
the paper's Tables II and IV (SCNN, DCNN, DCNN-opt) are *defined* here and
re-exported by :mod:`repro.scnn.config` for compatibility; the sparsity
ablations (SCNN-SparseW / SCNN-SparseA) and the Section VI-C granularity
variants ride along as further registry entries.

Adding an accelerator variant is a data change, not a code change::

    from dataclasses import replace
    from repro.arch import ArchitectureSpec, default_registry

    spec = ArchitectureSpec(
        name="SCNN-A64",
        config=replace(SCNN_CONFIG, name="SCNN-A64", accumulator_banks=64),
        adapter="cartesian-sparse",
        description="SCNN with doubled accumulator banking",
        baseline="DCNN",
    )
    default_registry().register(spec)

and the new name is immediately accepted by ``repro compare``, the service's
``compare`` scenario and every registry-resolving entry point
(:func:`resolve_config` lets any simulator parameter accept an architecture
name in place of a config object).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Union

from repro.arch.spec import AcceleratorConfig, ArchitectureSpec
from repro.dataflow.dataflows import (
    PT_IS_CP_SPARSE,
    PT_IS_CP_SPARSE_A,
    PT_IS_CP_SPARSE_W,
    PT_IS_DP_DENSE,
    PT_IS_DP_DENSE_OPT,
)

# -- canonical configurations (paper Tables II and IV) --------------------------
#
# All evaluated accelerators provision the same 1,024 multipliers so the
# comparison isolates the dataflow; they differ in on-chip storage, sparsity
# support and area.

SCNN_CONFIG = AcceleratorConfig(name="SCNN", dataflow=PT_IS_CP_SPARSE)

DCNN_CONFIG = AcceleratorConfig(
    name="DCNN",
    dataflow=PT_IS_DP_DENSE,
    iaram_bytes=0,
    oaram_bytes=0,
    weight_fifo_entries=50,
    dense_sram_bytes=2 * 1024 * 1024,
    index_bits=0,
)

DCNN_OPT_CONFIG = AcceleratorConfig(
    name="DCNN-opt",
    dataflow=PT_IS_DP_DENSE_OPT,
    iaram_bytes=0,
    oaram_bytes=0,
    weight_fifo_entries=50,
    dense_sram_bytes=2 * 1024 * 1024,
    index_bits=0,
)

# Single-operand sparsity ablations: identical provisioning to SCNN (again so
# the comparison isolates the dataflow), but the dataflow compresses — and
# skips the zeros of — only one operand.
SCNN_SPARSE_W_CONFIG = AcceleratorConfig(
    name="SCNN-SparseW", dataflow=PT_IS_CP_SPARSE_W
)

SCNN_SPARSE_A_CONFIG = AcceleratorConfig(
    name="SCNN-SparseA", dataflow=PT_IS_CP_SPARSE_A
)


class ArchitectureRegistry:
    """Name → :class:`ArchitectureSpec` mapping with a JSON-able catalogue."""

    def __init__(self) -> None:
        self._specs: Dict[str, ArchitectureSpec] = {}

    def register(self, spec: ArchitectureSpec) -> ArchitectureSpec:
        """Add ``spec`` to the catalogue; duplicate names are rejected."""
        if spec.name in self._specs:
            raise ValueError(f"architecture {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ArchitectureSpec:
        """The spec registered under ``name``.

        An unknown name raises a :class:`KeyError` that lists every known
        architecture, mirroring :meth:`repro.engine.EngineRun.column`.
        """
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(map(repr, self.names())) or "(none)"
            raise KeyError(
                f"unknown architecture {name!r}; registered architectures: {known}"
            ) from None

    def names(self) -> List[str]:
        """Registered architecture names, in registration order."""
        return list(self._specs)

    def describe(self) -> List[Dict[str, object]]:
        """JSON-able catalogue view, one entry per registered spec."""
        return [spec.describe() for spec in self._specs.values()]

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ArchitectureSpec]:
        return iter(self._specs.values())


def _built_in_specs() -> List[ArchitectureSpec]:
    """The paper's accelerator catalogue, in presentation order."""
    specs = [
        ArchitectureSpec(
            name="DCNN",
            config=DCNN_CONFIG,
            adapter="dot-product-dense",
            description="Dense baseline: PT-IS-DP-dense over uncompressed "
            "operands; every multiply occupies a slot.",
            paper_reference="Table IV; Figures 8 and 10 baseline",
            baseline="",
            tags=("table4", "baseline"),
        ),
        ArchitectureSpec(
            name="DCNN-opt",
            config=DCNN_OPT_CONFIG,
            adapter="dot-product-dense",
            description="Dense baseline with zero-operand gating and DRAM "
            "activation compression (energy only — cycles match DCNN).",
            paper_reference="Table IV; Figure 10",
            baseline="DCNN",
            tags=("table4", "baseline"),
        ),
        ArchitectureSpec(
            name="SCNN",
            config=SCNN_CONFIG,
            adapter="cartesian-sparse",
            description="The paper's design point: PT-IS-CP-sparse, 8x8 PEs "
            "of 4x4 multipliers, 32 accumulator banks, Kc=8.",
            paper_reference="Tables II and IV; Figures 8-10",
            baseline="DCNN",
            tags=("table2", "table4"),
        ),
        ArchitectureSpec(
            name="SCNN-SparseW",
            config=SCNN_SPARSE_W_CONFIG,
            adapter="cartesian-sparse",
            description="Sparsity ablation: compresses and skips zero "
            "weights only; activations are delivered dense.",
            paper_reference="Table IV variants (sparsity ablation)",
            baseline="DCNN",
            tags=("ablation",),
        ),
        ArchitectureSpec(
            name="SCNN-SparseA",
            config=SCNN_SPARSE_A_CONFIG,
            adapter="cartesian-sparse",
            description="Sparsity ablation: compresses and skips zero "
            "activations only; weights are delivered dense.",
            paper_reference="Table IV variants (sparsity ablation)",
            baseline="DCNN",
            tags=("ablation",),
        ),
    ]
    for num_pes in (16, 4):
        config = SCNN_CONFIG.with_pe_count(num_pes)
        specs.append(
            ArchitectureSpec(
                name=config.name,
                config=config,
                adapter="cartesian-sparse",
                description=f"Section VI-C granularity variant: {num_pes} PEs "
                f"of {config.multipliers_f}x{config.multipliers_i} multipliers "
                "at a constant 1,024 chip-wide multipliers.",
                paper_reference="Section VI-C (PE granularity)",
                baseline="SCNN",
                tags=("sec6c",),
            )
        )
    return specs


_default_registry: Union[ArchitectureRegistry, None] = None


def default_registry() -> ArchitectureRegistry:
    """The process-wide architecture catalogue (created on first use)."""
    global _default_registry
    if _default_registry is None:
        registry = ArchitectureRegistry()
        for spec in _built_in_specs():
            registry.register(spec)
        _default_registry = registry
    return _default_registry


def get_architecture(name: str) -> ArchitectureSpec:
    """Spec of the named architecture from the default registry."""
    return default_registry().get(name)


def available_architectures() -> List[str]:
    """Names the default registry knows, in registration order."""
    return default_registry().names()


def resolve_config(
    config: Union[str, AcceleratorConfig], *, parameter: str = "config"
) -> AcceleratorConfig:
    """Accept an architecture name anywhere an :class:`AcceleratorConfig` is.

    Simulator entry points route their ``config`` arguments through this
    helper, so ``simulate_dcnn_layer(spec, "DCNN-opt")`` and
    ``estimate_scnn_layer(spec, config="SCNN-SparseA", ...)`` resolve through
    the registry.  Config objects pass through untouched; unknown names raise
    the registry's catalogue-listing :class:`KeyError`.
    """
    if isinstance(config, str):
        return get_architecture(config).config
    if not isinstance(config, AcceleratorConfig):
        raise TypeError(
            f"{parameter} must be an AcceleratorConfig or a registered "
            f"architecture name, got {type(config).__name__}"
        )
    return config
