"""Declarative architecture descriptions.

Two dataclasses carry everything the simulators need to know about an
accelerator:

* :class:`AcceleratorConfig` — the hardware parameterization (PE geometry,
  multiplier array shape, accumulator banking, buffer sizes, dataflow).
  Historically this lived in :mod:`repro.scnn.config`, which still re-exports
  it; the definition moved here so architecture descriptions are owned by the
  architecture subsystem rather than by one simulator.
* :class:`ArchitectureSpec` — one *registered architecture*: a config bound
  to a simulator adapter (by name, see :mod:`repro.arch.adapters`) plus the
  provenance metadata (paper table/figure, baseline it is compared against)
  the docs and the comparison sweeps surface.

Both are frozen, hashable and picklable, so specs travel unchanged through
the engine's process pool and content-addressed cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

from repro.dataflow.dataflows import Dataflow
from repro.dataflow.tiling import pe_grid_for


@dataclass(frozen=True)
class AcceleratorConfig:
    """Parameters of one accelerator instance.

    The defaults of the SCNN instance follow Table II: an 8x8 array of PEs,
    each with a 4x4 multiplier array, 32 accumulator banks of 32 entries,
    10KB IARAM + 10KB OARAM, and a 50-entry weight FIFO.
    """

    name: str
    dataflow: Dataflow
    num_pes: int = 64
    multipliers_f: int = 4
    multipliers_i: int = 4
    output_channel_group: int = 8
    accumulator_banks: int = 32
    accumulator_bank_entries: int = 32
    iaram_bytes: int = 10 * 1024
    oaram_bytes: int = 10 * 1024
    weight_fifo_entries: int = 50
    weight_fifo_bytes: int = 500
    multiplier_bits: int = 16
    accumulator_bits: int = 24
    index_bits: int = 4
    clock_ghz: float = 1.0
    dense_sram_bytes: int = 0  # dense accelerators: monolithic activation SRAM
    # Fixed per-output-channel-group costs.  The paper treats the PPU drain,
    # compression and halo exchange as fully hidden behind the (double
    # buffered) compute of the next group, so both default to zero; they are
    # exposed as parameters for sensitivity studies.
    barrier_overhead_cycles: int = 0
    drain_overhead_cycles: int = 0

    def __post_init__(self) -> None:
        positive_fields = (
            "num_pes",
            "multipliers_f",
            "multipliers_i",
            "output_channel_group",
            "accumulator_banks",
            "accumulator_bank_entries",
        )
        for field_name in positive_fields:
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    # -- derived quantities -----------------------------------------------------

    @property
    def multipliers_per_pe(self) -> int:
        return self.multipliers_f * self.multipliers_i

    @property
    def total_multipliers(self) -> int:
        return self.num_pes * self.multipliers_per_pe

    @property
    def pe_grid(self) -> Tuple[int, int]:
        return pe_grid_for(self.num_pes)

    @property
    def activation_sram_bytes(self) -> int:
        """Total on-chip activation storage (both RAMs, across all PEs)."""
        if self.dense_sram_bytes:
            return self.dense_sram_bytes
        return self.num_pes * (self.iaram_bytes + self.oaram_bytes)

    @property
    def activation_index_bytes(self) -> int:
        """Index (coordinate) storage carried alongside the activation RAMs.

        The run-length encoding stores one ``index_bits``-wide zero-run count
        per stored 16-bit value, i.e. ``index_bits / 16`` of the data
        capacity — reported as 0.2MB for the ~1MB of activation data in the
        paper's Table II.
        """
        if self.dense_sram_bytes:
            return 0
        return int(self.activation_sram_bytes * self.index_bits / 16)

    @property
    def is_sparse(self) -> bool:
        return self.dataflow.is_sparse

    @property
    def peak_ops_per_cycle(self) -> int:
        """Multiply + add pairs issued per cycle at full utilization."""
        return self.total_multipliers

    def with_pe_count(self, num_pes: int) -> "AcceleratorConfig":
        """Rescale the PE count at constant total multiplier throughput.

        Used by the Section VI-C granularity study: the chip-wide multiplier
        count stays at ``total_multipliers`` while the PE count changes, so
        each PE's F x I array grows or shrinks accordingly (square-ish F x I
        split, biased towards F when the split is uneven).
        """
        total = self.total_multipliers
        if total % num_pes:
            raise ValueError(
                f"{total} multipliers cannot be split evenly across {num_pes} PEs"
            )
        per_pe = total // num_pes
        f = int(per_pe**0.5)
        while per_pe % f:
            f -= 1
        i = per_pe // f
        if f < i:
            f, i = i, f
        return replace(
            self,
            name=f"{self.name}-{num_pes}PE",
            num_pes=num_pes,
            multipliers_f=f,
            multipliers_i=i,
            accumulator_banks=2 * per_pe,
        )


@dataclass(frozen=True)
class ArchitectureSpec:
    """One registered accelerator architecture.

    A spec is purely declarative: the hardware parameterization
    (:attr:`config`), the name of the simulator adapter that knows how to
    evaluate it (:attr:`adapter`, resolved through
    :func:`repro.arch.adapters.get_adapter`), and provenance metadata.
    Registering a new spec — one :func:`repro.arch.registry` entry — is all
    it takes for an architecture to show up in the comparison sweeps, the
    ``repro compare`` CLI and the service's ``compare`` scenario.
    """

    name: str
    config: AcceleratorConfig
    adapter: str
    description: str = ""
    paper_reference: str = ""
    baseline: str = ""
    tags: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an architecture spec needs a non-empty name")
        if self.name != self.config.name:
            raise ValueError(
                f"spec name {self.name!r} must match its config name "
                f"{self.config.name!r} — the config name is what results and "
                f"cache fingerprints carry"
            )
        if not self.adapter:
            raise ValueError(f"architecture {self.name!r} names no adapter")

    @property
    def dataflow(self) -> Dataflow:
        """The dataflow of the underlying configuration."""
        return self.config.dataflow

    @property
    def is_sparse(self) -> bool:
        """Whether the architecture skips compute for zero operands."""
        return self.config.is_sparse

    def describe(self) -> Dict[str, Any]:
        """JSON-able catalogue entry (what ``GET /scenarios`` style views show)."""
        return {
            "name": self.name,
            "adapter": self.adapter,
            "dataflow": self.config.dataflow.name,
            "description": self.description,
            "paper_reference": self.paper_reference,
            "baseline": self.baseline,
            "tags": list(self.tags),
            "num_pes": self.config.num_pes,
            "multipliers": self.config.total_multipliers,
            "multiplier_array": f"{self.config.multipliers_f}x{self.config.multipliers_i}",
            "accumulator_banks": self.config.accumulator_banks,
            "sram_bytes": self.config.activation_sram_bytes,
        }
