"""Stacked model constants: one config across a whole stack of layers.

The analytical formulas in :mod:`repro.timeloop.model`,
:mod:`repro.timeloop.energy` and :mod:`repro.scnn.dcnn` mix two kinds of
inputs: *density-dependent* quantities (swept per grid point) and
*shape-derived constants* — tiling plans, phase block sizes, event-count
footprints — that depend only on the (layer, config) pair.  This module
hoists the latter into numpy arrays, one :class:`ConfigLayerStack` per
config covering every layer at once, so the grid evaluator's broadcast
arithmetic never re-derives a plan or a footprint per density point.

Stacks are memoised on ``(specs, config)``: a warm grid evaluation (the
second sweep over the same arch x workload axes) skips straight to the
broadcast arithmetic.  The tiling plans underneath are additionally shared
with the scalar path through :func:`repro.dataflow.tiling.plan_layer`'s own
memo, so batched and per-config evaluations agree on every tile extent by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.dataflow.tiling import plan_layer
from repro.nn.layers import ConvLayerSpec
from repro.scnn.accumulator import expected_conflict_cycles
from repro.scnn.config import AcceleratorConfig


@dataclass(frozen=True)
class ConfigLayerStack:
    """Shape-derived constants of every layer under one accelerator config.

    All per-layer attributes are int64 arrays of shape ``(layers,)`` except
    ``phase_sizes`` and ``dense_busy`` which carry the per-PE axis:
    ``(layers, num_pes)``.  The arrays are exactly the values the scalar
    models derive call-by-call, stacked.
    """

    config: AcceleratorConfig
    specs: Tuple[ConvLayerSpec, ...]
    num_pes: int
    #: Output-channel groups per layer (``ceil(K / Kc)``).
    num_groups: np.ndarray
    #: Connected input channels per output (``C / groups``).
    c_connected: np.ndarray
    #: Stride-phase sub-streams per layer (``stride ** 2``).
    phases: np.ndarray
    #: Expected weight elements per (group, channel, phase) block.
    weight_phase_block: np.ndarray
    #: Per-(PE, phase) activation block sizes, ``(layers, num_pes)``.
    phase_sizes: np.ndarray
    #: Dense-baseline busy cycles per PE, ``(layers, num_pes)``.
    dense_busy: np.ndarray
    #: Expected accumulator-conflict stall cycles per issue step.
    stall_per_step: float
    # -- energy-model footprints (per layer) -----------------------------------
    dense_macs: np.ndarray
    weight_values: np.ndarray
    input_values: np.ndarray
    output_values: np.ndarray
    in_channels: np.ndarray

    @property
    def layer_count(self) -> int:
        """Number of stacked layers."""
        return len(self.specs)


def config_layer_stack(
    specs: Tuple[ConvLayerSpec, ...], config: AcceleratorConfig
) -> ConfigLayerStack:
    """The (memoised) stacked constants of ``specs`` under ``config``."""
    return _config_layer_stack(tuple(specs), config)


@lru_cache(maxsize=256)
def _config_layer_stack(
    specs: Tuple[ConvLayerSpec, ...], config: AcceleratorConfig
) -> ConfigLayerStack:
    pe_rows, pe_cols = config.pe_grid
    f_width = config.multipliers_f
    i_width = config.multipliers_i
    count = len(specs)
    num_pes = pe_rows * pe_cols
    num_groups = np.empty(count, dtype=np.int64)
    c_connected = np.empty(count, dtype=np.int64)
    phases = np.empty(count, dtype=np.int64)
    weight_phase_block = np.empty(count, dtype=np.int64)
    phase_sizes = np.zeros((count, num_pes), dtype=np.int64)
    dense_busy = np.zeros((count, num_pes), dtype=np.int64)
    dense_macs = np.empty(count, dtype=np.int64)
    weight_values = np.empty(count, dtype=np.int64)
    input_values = np.empty(count, dtype=np.int64)
    output_values = np.empty(count, dtype=np.int64)
    in_channels = np.empty(count, dtype=np.int64)
    for index, spec in enumerate(specs):
        plan = plan_layer(
            spec,
            num_pes=config.num_pes,
            group_size=config.output_channel_group,
            pe_rows=pe_rows,
            pe_cols=pe_cols,
        )
        layer_phases = spec.stride * spec.stride
        group_channels = min(config.output_channel_group, spec.out_channels)
        weight_block = group_channels * spec.filter_height * spec.filter_width
        num_groups[index] = plan.num_groups
        c_connected[index] = spec.in_channels // spec.groups
        phases[index] = layer_phases
        weight_phase_block[index] = max(1, int(round(weight_block / layer_phases)))
        tile_sizes = np.array(
            [tile.size for tile in plan.input_tiles], dtype=np.int64
        )
        phase_sizes[index] = np.maximum(
            tile_sizes // layer_phases, (tile_sizes > 0).astype(np.int64)
        )
        dot_steps = -(
            -(c_connected[index] * spec.filter_height * spec.filter_width)
            // f_width
        )
        output_sizes = np.array(
            [tile.size for tile in plan.output_tiles], dtype=np.int64
        )
        outputs = output_sizes * spec.out_channels
        dense_busy[index] = np.where(
            output_sizes > 0, -(-outputs * dot_steps // i_width), 0
        )
        dense_macs[index] = spec.multiplies
        weight_values[index] = spec.weight_count
        input_values[index] = spec.input_activation_count
        output_values[index] = spec.output_activation_count
        in_channels[index] = spec.in_channels
    return ConfigLayerStack(
        config=config,
        specs=tuple(specs),
        num_pes=num_pes,
        num_groups=num_groups,
        c_connected=c_connected,
        phases=phases,
        weight_phase_block=weight_phase_block,
        phase_sizes=phase_sizes,
        dense_busy=dense_busy,
        stall_per_step=expected_conflict_cycles(
            f_width * i_width, config.accumulator_banks
        ),
        dense_macs=dense_macs,
        weight_values=weight_values,
        input_values=input_values,
        output_values=output_values,
        in_channels=in_channels,
    )


def clear_stack_cache() -> None:
    """Drop every memoised stack (benchmarks use this to time cold runs)."""
    _config_layer_stack.cache_clear()
