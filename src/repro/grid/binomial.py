"""Vectorised binomial ceiling-expectations for whole grids of blocks.

The analytical cycle model's inner kernel is
``E[ceil(X / width)]`` with ``X ~ Binomial(elements, density)`` — the
expected number of operand-vector fetches a compressed block needs.  The
scalar path (:func:`repro.timeloop.model._expected_vector_count`) computes it
one lru-cached call at a time; a whole-grid evaluation needs it for an
entire *matrix* of ``(elements, density, width)`` triples at once.

:func:`expected_vector_counts` does exactly that: the triples are packed
into int64 keys, deduplicated with one 1-D sort, looked up in a module-level
memo, and only the still-unsolved triples are grouped by block size and
evaluated in broadcast pmf passes.  Because every row of a pass has the same
length as the scalar path's pmf vector — and numpy's last-axis reductions of
a C-contiguous matrix are bitwise-identical to the same-length 1-D
reductions — the results match the scalar kernel bit for bit, which is what
lets the batched grid evaluator stand in for the per-config oracle without
any tolerance.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.timeloop.model import _log_comb

# Packed triple key: (elements * 1000 + density_milli) << 16 | width.  The
# bounds below keep the packing collision-free inside int64.
_WIDTH_BITS = 16
_MAX_WIDTH = (1 << _WIDTH_BITS) - 1
# elements * 1000 + 999 must stay below 2**(63 - _WIDTH_BITS).
_MAX_ELEMENTS = 10**11
#: Solved (elements, density_milli, width) triples, keyed by packed int64.
_solved: Dict[int, float] = {}
#: Memo bound — ~8 MB of floats; past it the memo resets rather than grows.
_SOLVED_MAX = 1 << 20


def expected_vector_counts(
    elements: np.ndarray, density_milli: np.ndarray, width: np.ndarray
) -> np.ndarray:
    """``E[ceil(X / width)]``, ``X ~ Binomial(elements, density)``, elementwise.

    Accepts integer arrays (or scalars) broadcastable against each other;
    ``density_milli`` is the density in thousandths, exactly as the scalar
    kernel's cache key quantises it.  Returns a float array of the broadcast
    shape whose every element is bitwise-equal to
    ``repro.timeloop.model._expected_vector_count`` of that triple.

    Distinct triples are deduplicated first (one 1-D sort over packed int64
    keys) and served from a module-level memo of solved triples; only the
    remaining triples are grouped by block size and evaluated in broadcast
    pmf passes — a warm fig7-style grid collapses to array arithmetic plus
    memo lookups, with no pmf work at all.
    """
    el, dm, w = np.broadcast_arrays(
        np.asarray(elements, dtype=np.int64),
        np.asarray(density_milli, dtype=np.int64),
        np.asarray(width, dtype=np.int64),
    )
    shape = el.shape
    el = el.reshape(-1)
    dm = dm.reshape(-1)
    w = w.reshape(-1)
    if np.any(w <= 0):
        raise ValueError("vector width must be positive")
    out = np.zeros(el.shape, dtype=np.float64)
    live = el > 0
    # Saturated densities: the block is fully dense, so the expectation is
    # the exact ceiling division (scalar path: float(-(-elements // width))).
    full = live & (dm >= 1000)
    if full.any():
        out[full] = (-(-el[full] // w[full])).astype(np.float64)
    partial = live & (dm > 0) & (dm < 1000)
    if partial.any():
        el_p = el[partial]
        dm_p = dm[partial]
        w_p = w[partial]
        if np.any(w_p > _MAX_WIDTH) or np.any(el_p > _MAX_ELEMENTS):
            raise ValueError(
                f"triple out of packing range (width <= {_MAX_WIDTH}, "
                f"elements <= {_MAX_ELEMENTS})"
            )
        keys = ((el_p * 1000 + dm_p) << np.int64(_WIDTH_BITS)) | w_p
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        values = np.empty(len(unique_keys), dtype=np.float64)
        pending: Dict[int, List[int]] = {}
        for position, key in enumerate(unique_keys.tolist()):
            solved = _solved.get(key)
            if solved is None:
                pending.setdefault((key >> _WIDTH_BITS) // 1000, []).append(
                    position
                )
            else:
                values[position] = solved
        for block, positions in pending.items():
            rows = np.asarray(positions)
            row_keys = unique_keys[rows]
            row_values = _pmf_pass(
                int(block),
                (row_keys >> _WIDTH_BITS) % 1000,
                row_keys & _MAX_WIDTH,
            )
            values[rows] = row_values
            _solved.update(zip(row_keys.tolist(), row_values.tolist()))
        if len(_solved) > _SOLVED_MAX:
            _solved.clear()
        out[partial] = values[inverse.reshape(-1)]
    return out.reshape(shape)


def clear_solved_triples() -> None:
    """Drop the solved-triple memo (benchmarks use this to time cold runs)."""
    _solved.clear()


def _pmf_pass(
    elements: int, density_milli: np.ndarray, width: np.ndarray
) -> np.ndarray:
    """One broadcast pmf pass over every (density, width) pair of one block size.

    The arithmetic mirrors the scalar kernel operation for operation (same
    operand order, same reduction lengths), which is what makes the batched
    result bitwise-identical rather than merely close.
    """
    density = density_milli / 1000.0
    counts = np.arange(elements + 1)
    log_pmf = (
        _log_comb(elements, counts)[None, :]
        + counts[None, :] * np.log(density)[:, None]
        + (elements - counts)[None, :] * np.log1p(-density)[:, None]
    )
    pmf = np.exp(log_pmf)
    pmf /= pmf.sum(axis=1, keepdims=True)
    ceilings = np.ceil(counts[None, :] / width[:, None])
    return (pmf * ceilings).sum(axis=1)
