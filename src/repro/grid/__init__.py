"""Batched whole-grid evaluation of the analytical models.

The scalar analytical models (:mod:`repro.timeloop.model`,
:mod:`repro.timeloop.energy`, :mod:`repro.scnn.dcnn`) evaluate one
(config, layer, density) cell per call.  This package evaluates the whole
arch x workload x density grid as one broadcast tensor computation —
bitwise-identical to the scalar oracle cell for cell — and is the fast path
behind :meth:`repro.engine.core.SimulationEngine.sweep`,
:func:`repro.timeloop.dse.sweep`, the architecture comparison sweeps, and
the Figure 7 / Table IV experiment drivers.
"""

from repro.grid.binomial import clear_solved_triples, expected_vector_counts
from repro.grid.evaluate import (
    ENERGY_COMPONENTS,
    CycleGrid,
    GridResult,
    dense_cycle_grid,
    energy_grid,
    evaluate_grid,
    scnn_cycle_grid,
)
from repro.grid.stack import ConfigLayerStack, clear_stack_cache, config_layer_stack

__all__ = [
    "ENERGY_COMPONENTS",
    "ConfigLayerStack",
    "CycleGrid",
    "GridResult",
    "clear_caches",
    "clear_solved_triples",
    "clear_stack_cache",
    "config_layer_stack",
    "dense_cycle_grid",
    "energy_grid",
    "evaluate_grid",
    "expected_vector_counts",
    "scnn_cycle_grid",
]


def clear_caches() -> None:
    """Drop every memo the grid path warms (for cold-path benchmarking).

    Clears the stacked-constant cache, the shared tiling-plan cache, the
    solved-triple memo, and the scalar binomial-expectation cache so a
    subsequent evaluation times the true cold path.
    """
    from repro.dataflow.tiling import _plan_layer_cached
    from repro.timeloop.model import _expected_vector_count

    clear_stack_cache()
    clear_solved_triples()
    _plan_layer_cached.cache_clear()
    _expected_vector_count.cache_clear()
