"""Whole-grid broadcast evaluation of the analytical cycle/energy models.

One call evaluates an entire arch x workload x density grid: the layer
shapes and config parameters are stacked once (:mod:`repro.grid.stack`), the
binomial fetch expectations are computed for every (block, density, width)
triple in a handful of pmf passes (:mod:`repro.grid.binomial`), and the
closed-form cycle/energy/utilization formulas of
:mod:`repro.timeloop.model`, :mod:`repro.timeloop.energy` and
:mod:`repro.scnn.dcnn` broadcast across the whole grid as tensor arithmetic.

Every operation mirrors its scalar counterpart operand-for-operand (same
order, same reduction lengths), so the grid is **bitwise-identical** to the
per-config oracle — ``estimate_scnn_layer`` / ``estimate_dense_layer`` plus
``layer_energy_from_densities`` cell by cell — which the equivalence suite
(``tests/test_grid_equivalence.py``) pins element-for-element.  The scalar
path therefore stays the semantics; this module is purely the fast way to
evaluate many cells of it at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.arch.registry import resolve_config
from repro.grid.binomial import expected_vector_counts
from repro.grid.stack import ConfigLayerStack, config_layer_stack
from repro.nn.layers import ConvLayerSpec
from repro.scnn.config import AcceleratorConfig
from repro.timeloop.energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from repro.timeloop.model import AnalyticalLayerEstimate

#: Energy component labels, in the exact order ``layer_energy`` emits them
#: (the order matters: totals are summed in it, term by term).
ENERGY_COMPONENTS: Tuple[str, ...] = (
    "multiplier",
    "accumulator",
    "scatter crossbar",
    "activation RAM",
    "weight buffer",
    "index handling",
    "halo exchange",
    "DRAM",
    "static / control",
)

_GRID_EVALUATIONS = obs.counter(
    "repro_grid_evaluations_total", "Whole-grid analytical evaluations."
)
_GRID_CELLS = obs.counter(
    "repro_grid_cells_total",
    "Grid cells (configs x layers x density points) evaluated.",
)


@dataclass(frozen=True)
class CycleGrid:
    """Cycle-model metrics of one config over a (layers x densities) grid."""

    cycles: np.ndarray
    products: np.ndarray
    multiplier_utilization: np.ndarray
    idle_fraction: np.ndarray


def _density_grid(
    value: np.ndarray, layers: int, points: int, name: str
) -> np.ndarray:
    """Broadcast a density argument to the ``(layers, points)`` grid shape."""
    array = np.asarray(value, dtype=np.float64)
    if array.ndim == 0:
        array = array.reshape(1, 1)
    elif array.ndim == 1:
        # A 1-D argument is the density axis, shared by every layer.
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(
            f"{name} must be at most 2-D (layers x density points), "
            f"got shape {array.shape}"
        )
    return np.broadcast_to(array, (layers, points))


def _validate_density(array: np.ndarray, name: str) -> None:
    if np.any((array <= 0.0) | (array > 1.0)):
        raise ValueError(f"{name} must be in (0, 1]")


def _milli(density: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.timeloop.model.density_milli`."""
    return np.maximum(1, np.rint(density * 1000).astype(np.int64))


def scnn_cycle_grid(
    specs: Sequence[ConvLayerSpec],
    config: Union[AcceleratorConfig, str],
    weight_density: np.ndarray,
    activation_density: np.ndarray,
) -> CycleGrid:
    """Batched :func:`~repro.timeloop.model.estimate_scnn_layer`.

    ``weight_density`` / ``activation_density`` are ``(layers, points)``
    float grids (use :func:`evaluate_grid` for the friendlier broadcasting
    front end).  Returns ``(layers, points)`` arrays bitwise-equal to the
    scalar estimates.
    """
    config = resolve_config(config)
    stack = config_layer_stack(tuple(specs), config)
    wd = np.asarray(weight_density, dtype=np.float64)
    ad = np.asarray(activation_density, dtype=np.float64)
    _validate_density(wd, "weight_density")
    _validate_density(ad, "activation_density")
    wd_milli = _milli(wd)
    ad_milli = _milli(ad)

    weight_vectors = expected_vector_counts(
        stack.weight_phase_block[:, None], wd_milli, config.multipliers_f
    )
    weight_nnz = stack.weight_phase_block[:, None] * wd
    act_vectors = expected_vector_counts(
        stack.phase_sizes[:, None, :], ad_milli[:, :, None], config.multipliers_i
    )
    act_nnz = stack.phase_sizes[:, None, :] * ad[:, :, None]

    channel_phases = stack.c_connected * stack.phases
    steps = channel_phases[:, None, None] * act_vectors * weight_vectors[:, :, None]
    busy = steps * (1.0 + stack.stall_per_step)
    busy = busy + (steps > 0) * config.drain_overhead_cycles
    group_cycles = busy.max(axis=2) + config.barrier_overhead_cycles
    total_cycles = group_cycles * stack.num_groups[:, None]

    products_per = (
        channel_phases[:, None, None] * act_nnz * weight_nnz[:, :, None]
    )
    total_products = products_per.sum(axis=2) * stack.num_groups[:, None]
    busy_total = busy.sum(axis=2) * stack.num_groups[:, None]

    live = total_cycles > 0
    utilization = np.zeros_like(total_cycles)
    np.divide(
        total_products,
        total_cycles * stack.num_pes * config.multipliers_per_pe,
        out=utilization,
        where=live,
    )
    busy_ratio = np.zeros_like(total_cycles)
    np.divide(busy_total, total_cycles * stack.num_pes, out=busy_ratio, where=live)
    idle = np.where(live, np.maximum(0.0, 1.0 - busy_ratio), 0.0)
    return CycleGrid(
        cycles=total_cycles,
        products=total_products,
        multiplier_utilization=utilization,
        idle_fraction=idle,
    )


def dense_cycle_grid(
    specs: Sequence[ConvLayerSpec],
    config: Union[AcceleratorConfig, str],
) -> CycleGrid:
    """Batched :func:`~repro.scnn.dcnn.simulate_dcnn_layer` (density-free).

    Returns ``(layers,)`` arrays — the dense baselines perform every multiply
    regardless of operand values, so there is no density axis to broadcast.
    """
    config = resolve_config(config)
    stack = config_layer_stack(tuple(specs), config)
    busy = stack.dense_busy
    cycles = busy.max(axis=1)
    live = cycles > 0
    utilization = np.zeros(cycles.shape, dtype=np.float64)
    np.divide(
        stack.dense_macs,
        cycles.astype(np.float64) * stack.num_pes * config.multipliers_per_pe,
        out=utilization,
        where=live,
    )
    denominator = cycles * stack.num_pes
    busy_ratio = np.zeros(cycles.shape, dtype=np.float64)
    np.divide(busy.sum(axis=1), denominator, out=busy_ratio, where=live)
    idle = np.where(live, np.maximum(0.0, 1.0 - busy_ratio), 0.0)
    return CycleGrid(
        cycles=cycles,
        products=stack.dense_macs,
        multiplier_utilization=utilization,
        idle_fraction=idle,
    )


def energy_grid(
    specs: Sequence[ConvLayerSpec],
    config: Union[AcceleratorConfig, str],
    *,
    weight_density: np.ndarray,
    activation_density: np.ndarray,
    output_density: np.ndarray,
    cycles: np.ndarray,
    products: Optional[np.ndarray] = None,
    weight_buffer_reads: Optional[np.ndarray] = None,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> Dict[str, np.ndarray]:
    """Batched :func:`~repro.timeloop.energy.layer_energy_from_densities`.

    All array arguments are ``(layers, points)`` grids (``cycles`` integer).
    Returns the component arrays keyed as ``layer_energy`` keys them, plus a
    ``"total"`` entry summed in the same term order — every element bitwise
    equal to the scalar breakdown.
    """
    config = resolve_config(config)
    stack = config_layer_stack(tuple(specs), config)
    wd = np.asarray(weight_density, dtype=np.float64)
    ad = np.asarray(activation_density, dtype=np.float64)
    od = np.asarray(output_density, dtype=np.float64)
    cycles = np.asarray(cycles)
    shape = np.broadcast_shapes(wd.shape, ad.shape, od.shape, cycles.shape)
    zeros = np.zeros(shape, dtype=np.int64)

    nnz_weights = np.rint(stack.weight_values[:, None] * wd).astype(np.int64)
    nnz_inputs = np.rint(stack.input_values[:, None] * ad).astype(np.int64)
    nnz_outputs = np.rint(stack.output_values[:, None] * od).astype(np.int64)
    if products is None:
        products = np.rint(
            stack.dense_macs[:, None] * wd * ad
        ).astype(np.int64)
    num_groups = stack.num_groups[:, None]
    capacity = config.activation_sram_bytes // 2
    dataflow = config.dataflow

    multiplies = zeros
    gated_multiplies = zeros
    accumulator_updates = zeros
    crossbar_products = zeros
    iaram_reads = zeros
    oaram_writes = zeros
    dense_sram_reads = zeros
    dense_sram_writes = zeros
    index_accesses = zeros
    halo_transfers = zeros
    pe_cycles = cycles * config.num_pes

    if dataflow.is_sparse:
        multiplies = products
        accumulator_updates = products
        crossbar_products = products
        iaram_reads = nnz_inputs * num_groups
        oaram_writes = nnz_outputs
        if weight_buffer_reads is None:
            act_vectors = np.maximum(1, -(-nnz_inputs // config.multipliers_i))
            weight_buffer_reads = nnz_weights * np.maximum(
                1, act_vectors // np.maximum(1, stack.in_channels[:, None])
            )
        index_accesses = iaram_reads + weight_buffer_reads
        halo_transfers = (
            0.1 * config.output_channel_group * num_groups * config.num_pes * 16
        ).astype(np.int64)
        factor = 1.0 + config.index_bits / 16.0
        dram_values = (nnz_weights * factor).astype(np.int64)
        fits = (
            (nnz_inputs * 1.3).astype(np.int64)
            + (nnz_outputs * 1.3).astype(np.int64)
        ) <= capacity
        dram_values = dram_values + np.where(
            fits, 0, ((nnz_inputs + nnz_outputs) * factor).astype(np.int64)
        )
    else:
        dense_macs = np.broadcast_to(stack.dense_macs[:, None], shape)
        if dataflow.gates_zero_operands:
            multiplies = products
            gated_multiplies = dense_macs - products
        else:
            multiplies = dense_macs
        accumulator_updates = stack.dense_macs[:, None] // max(
            1, config.multipliers_f
        )
        dense_sram_reads = stack.input_values[:, None] * num_groups
        dense_sram_writes = np.broadcast_to(stack.output_values[:, None], shape)
        weight_buffer_reads = stack.dense_macs[:, None] // max(
            1, config.multipliers_i
        )
        fits = (stack.input_values + stack.output_values)[:, None] <= capacity
        if dataflow.compresses_dram_traffic:
            spill = ((nnz_inputs + nnz_outputs) * (1.0 + 4.0 / 16.0)).astype(
                np.int64
            )
        else:
            spill = (stack.input_values + stack.output_values)[:, None]
        dram_values = stack.weight_values[:, None] + np.where(fits, 0, spill)

    components = {
        "multiplier": multiplies * table.multiply,
        "accumulator": accumulator_updates * table.accumulator_update,
        "scatter crossbar": crossbar_products * table.crossbar,
        "activation RAM": (
            iaram_reads * table.iaram_read
            + oaram_writes * table.oaram_write
            + dense_sram_reads * table.dense_sram_read
            + dense_sram_writes * table.dense_sram_write
        ),
        "weight buffer": weight_buffer_reads * table.weight_buffer_read,
        "index handling": index_accesses * table.index_access,
        "halo exchange": halo_transfers * table.halo_transfer,
        "DRAM": dram_values * table.dram,
        "static / control": pe_cycles * table.pe_cycle,
    }
    total = None
    for name in ENERGY_COMPONENTS:
        term = components[name]
        total = term if total is None else total + term
    grids = {
        name: np.broadcast_to(np.asarray(value, dtype=np.float64), shape)
        for name, value in components.items()
    }
    grids["total"] = np.broadcast_to(np.asarray(total, dtype=np.float64), shape)
    return grids


@dataclass(frozen=True)
class GridResult:
    """Metrics of one whole-grid evaluation.

    Every metric array has shape ``(configs, layers, points)``; the density
    grids have shape ``(layers, points)``.  The scalar views
    (:meth:`estimate`, :meth:`energy_breakdown`) materialise the exact
    dataclasses the per-config oracle returns for any single cell.
    """

    specs: Tuple[ConvLayerSpec, ...]
    configs: Tuple[AcceleratorConfig, ...]
    weight_density: np.ndarray
    activation_density: np.ndarray
    output_density: np.ndarray
    cycles: np.ndarray
    products: np.ndarray
    multiplier_utilization: np.ndarray
    idle_fraction: np.ndarray
    energy: np.ndarray
    energy_components: Dict[str, np.ndarray]

    @property
    def cells(self) -> int:
        """Total number of evaluated (config, layer, point) cells."""
        return int(np.prod(self.cycles.shape))

    def config_index(self, config: Union[int, str]) -> int:
        """Index of a config by position or name (with a catalogue error)."""
        if isinstance(config, int):
            return config
        for index, candidate in enumerate(self.configs):
            if candidate.name == config:
                return index
        known = ", ".join(repr(c.name) for c in self.configs) or "(none)"
        raise KeyError(
            f"no evaluated configuration named {config!r}; "
            f"this grid evaluated: {known}"
        )

    def layer_index(self, layer: Union[int, str]) -> int:
        """Index of a layer by position or spec name (with a catalogue error)."""
        if isinstance(layer, int):
            return layer
        for index, spec in enumerate(self.specs):
            if spec.name == layer:
                return index
        known = ", ".join(repr(s.name) for s in self.specs) or "(none)"
        raise KeyError(
            f"no evaluated layer named {layer!r}; this grid evaluated: {known}"
        )

    def estimate(
        self, config: Union[int, str], layer: Union[int, str], point: int = 0
    ) -> AnalyticalLayerEstimate:
        """One cell as the scalar model's :class:`AnalyticalLayerEstimate`."""
        c = self.config_index(config)
        s = self.layer_index(layer)
        return AnalyticalLayerEstimate(
            spec_name=self.specs[s].name,
            config_name=self.configs[c].name,
            cycles=float(self.cycles[c, s, point]),
            products=float(self.products[c, s, point]),
            multiplier_utilization=float(
                self.multiplier_utilization[c, s, point]
            ),
            idle_fraction=float(self.idle_fraction[c, s, point]),
        )

    def energy_breakdown(
        self, config: Union[int, str], layer: Union[int, str], point: int = 0
    ) -> EnergyBreakdown:
        """One cell as the scalar model's :class:`EnergyBreakdown`."""
        c = self.config_index(config)
        s = self.layer_index(layer)
        return EnergyBreakdown(
            config_name=self.configs[c].name,
            components={
                name: float(self.energy_components[name][c, s, point])
                for name in ENERGY_COMPONENTS
            },
        )

    def total_cycles(self, config: Union[int, str], point: int = 0) -> float:
        """Cycles of one config summed over every layer, in layer order."""
        c = self.config_index(config)
        total = 0.0
        for s in range(len(self.specs)):
            total += self.cycles[c, s, point]
        return float(total)

    def total_energy(self, config: Union[int, str], point: int = 0) -> float:
        """Energy of one config summed over every layer, in layer order."""
        c = self.config_index(config)
        total = 0.0
        for s in range(len(self.specs)):
            total += self.energy[c, s, point]
        return float(total)


def evaluate_grid(
    specs: Sequence[ConvLayerSpec],
    configs: Sequence[Union[AcceleratorConfig, str]],
    *,
    weight_density,
    activation_density,
    output_density=None,
    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE,
    model: str = "auto",
) -> GridResult:
    """Evaluate the whole arch x workload x density grid in one call.

    ``weight_density`` / ``activation_density`` accept a scalar, a 1-D
    density axis (shared by every layer — the Figure 7 shape), or a
    ``(layers, points)`` grid (per-layer densities — the DSE shape).
    ``output_density`` defaults to the activation density (one layer's
    outputs feed the next layer's input stream).

    ``model`` selects the cycle model per config: ``"auto"`` dispatches on
    the dataflow (sparse configs get the SCNN analytical model, dense ones
    the DCNN baseline model — the Figure 7 convention), ``"scnn"`` forces
    the sparse analytical model for every config (the DSE convention), and
    ``"dense"`` forces the dense baseline model.
    """
    if model not in ("auto", "scnn", "dense"):
        raise ValueError(
            f"model must be 'auto', 'scnn' or 'dense', got {model!r}"
        )
    specs = tuple(specs)
    resolved = tuple(resolve_config(config) for config in configs)
    layers = len(specs)
    wd_raw = np.asarray(weight_density, dtype=np.float64)
    ad_raw = np.asarray(activation_density, dtype=np.float64)
    points = int(
        np.broadcast_shapes(
            np.atleast_2d(wd_raw).shape, np.atleast_2d(ad_raw).shape
        )[-1]
    )
    wd = _density_grid(wd_raw, layers, points, "weight_density")
    ad = _density_grid(ad_raw, layers, points, "activation_density")
    _validate_density(wd, "weight_density")
    _validate_density(ad, "activation_density")
    if output_density is None:
        od = ad
    else:
        od = _density_grid(
            np.asarray(output_density, dtype=np.float64),
            layers,
            points,
            "output_density",
        )

    shape = (len(resolved), layers, points)
    if obs.enabled():
        _GRID_EVALUATIONS.inc()
        _GRID_CELLS.inc(len(resolved) * layers * points)
    with obs.span(
        "grid.evaluate", configs=len(resolved), layers=layers, points=points
    ):
        return _evaluate_grid_arrays(
            specs, resolved, wd, ad, od, energy_table, model, shape
        )


def _evaluate_grid_arrays(
    specs, resolved, wd, ad, od, energy_table, model, shape
) -> GridResult:
    layers, points = shape[1], shape[2]
    cycles = np.zeros(shape)
    products = np.zeros(shape)
    utilization = np.zeros(shape)
    idle = np.zeros(shape)
    energy = np.zeros(shape)
    energy_components = {name: np.zeros(shape) for name in ENERGY_COMPONENTS}
    for c, config in enumerate(resolved):
        use_dense = model == "dense" or (model == "auto" and not config.is_sparse)
        if use_dense:
            dense = dense_cycle_grid(specs, config)
            cycles[c] = dense.cycles.astype(np.float64)[:, None]
            products[c] = dense.products.astype(np.float64)[:, None]
            utilization[c] = dense.multiplier_utilization[:, None]
            idle[c] = dense.idle_fraction[:, None]
            energy_cycles = np.broadcast_to(
                dense.cycles[:, None], (layers, points)
            )
        else:
            sparse = scnn_cycle_grid(specs, config, wd, ad)
            cycles[c] = sparse.cycles
            products[c] = sparse.products
            utilization[c] = sparse.multiplier_utilization
            idle[c] = sparse.idle_fraction
            # The scalar path hands the energy model int(estimate.cycles).
            energy_cycles = sparse.cycles.astype(np.int64)
        breakdown = energy_grid(
            specs,
            config,
            weight_density=wd,
            activation_density=ad,
            output_density=od,
            cycles=energy_cycles,
            table=energy_table,
        )
        energy[c] = breakdown["total"]
        for name in ENERGY_COMPONENTS:
            energy_components[name][c] = breakdown[name]
    return GridResult(
        specs=specs,
        configs=resolved,
        weight_density=wd,
        activation_density=ad,
        output_density=od,
        cycles=cycles,
        products=products,
        multiplier_utilization=utilization,
        idle_fraction=idle,
        energy=energy,
        energy_components=energy_components,
    )
