"""Run-length compressed-sparse encoding of weight / activation blocks.

The encoding follows the SCNN paper (Section IV): the *data vector* holds the
non-zero values in raster order, and the *index vector* holds, for each data
element, the number of zeros that precede it since the previous data element.
With ``index_bits`` bits per index the maximum representable run is
``2**index_bits - 1``; a longer run of zeros is bridged by inserting an
explicit zero-valued placeholder into the data vector (the paper notes this
costs essentially nothing for realistic densities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.tensor.coordinates import delinearize

DEFAULT_INDEX_BITS = 4


@dataclass(frozen=True)
class RunLengthIndex:
    """Index vector of a compressed block.

    Attributes:
        zero_runs: number of zeros preceding each stored data element.
        index_bits: bit width of each index entry (paper uses 4).
    """

    zero_runs: Tuple[int, ...]
    index_bits: int = DEFAULT_INDEX_BITS

    def __post_init__(self) -> None:
        limit = self.max_run
        for run in self.zero_runs:
            if run < 0 or run > limit:
                raise ValueError(
                    f"zero run {run} does not fit in {self.index_bits} bits"
                )

    @property
    def max_run(self) -> int:
        """Largest zero run representable by a single index entry."""
        return (1 << self.index_bits) - 1

    def __len__(self) -> int:
        return len(self.zero_runs)

    def storage_bits(self) -> int:
        """Total bits consumed by the index vector."""
        return len(self.zero_runs) * self.index_bits


@dataclass(frozen=True)
class CompressedBlock:
    """One compressed-sparse block (a weight group or an activation channel).

    The block logically covers ``block_shape`` dense elements; ``values``
    holds the stored data elements (non-zeros plus any zero placeholders) and
    ``index`` holds the zero-run lengths preceding each stored element.
    """

    block_shape: Tuple[int, ...]
    values: np.ndarray
    index: RunLengthIndex
    value_bits: int = 16

    def __post_init__(self) -> None:
        if len(self.values) != len(self.index):
            raise ValueError(
                f"data vector length {len(self.values)} does not match "
                f"index vector length {len(self.index)}"
            )
        object.__setattr__(self, "values", np.asarray(self.values))

    # -- size & statistics -------------------------------------------------

    @property
    def dense_size(self) -> int:
        size = 1
        for dim in self.block_shape:
            size *= dim
        return size

    @property
    def stored_elements(self) -> int:
        """Number of stored data elements, including zero placeholders."""
        return len(self.values)

    @property
    def nonzero_count(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def placeholder_count(self) -> int:
        """Zero-valued placeholders inserted to bridge long zero runs."""
        return self.stored_elements - self.nonzero_count

    @property
    def density(self) -> float:
        if self.dense_size == 0:
            return 0.0
        return self.nonzero_count / self.dense_size

    def storage_bits(self) -> int:
        """Bits needed to store the block (data vector + index vector)."""
        return self.stored_elements * self.value_bits + self.index.storage_bits()

    def dense_storage_bits(self) -> int:
        return self.dense_size * self.value_bits

    def compression_ratio(self) -> float:
        """Dense bits divided by compressed bits (>1 means a net saving)."""
        compressed = self.storage_bits()
        if compressed == 0:
            return float("inf")
        return self.dense_storage_bits() / compressed

    # -- decoding ----------------------------------------------------------

    def flat_offsets(self) -> np.ndarray:
        """Flat (row-major) offsets of the stored elements within the block."""
        runs = np.asarray(self.index.zero_runs, dtype=np.int64)
        if runs.size == 0:
            return runs
        return np.cumsum(runs + 1) - 1

    def coordinates(self) -> List[Tuple[int, ...]]:
        """Multi-dimensional coordinates of the stored elements."""
        return [delinearize(int(off), self.block_shape) for off in self.flat_offsets()]

    def iter_nonzeros(self) -> Iterator[Tuple[Tuple[int, ...], float]]:
        """Yield ``(coordinate, value)`` for every stored non-zero element."""
        for offset, value in zip(self.flat_offsets(), self.values):
            if value != 0:
                yield delinearize(int(offset), self.block_shape), value

    def decode(self) -> np.ndarray:
        """Reconstruct the dense block."""
        dense = np.zeros(self.dense_size, dtype=self.values.dtype)
        offsets = self.flat_offsets()
        if offsets.size:
            dense[offsets] = self.values
        return dense.reshape(self.block_shape)

    # -- vector fetch (what the PE buffers deliver) --------------------------

    def fetch_vectors(self, width: int) -> List[np.ndarray]:
        """Split the data vector into fetch groups of ``width`` elements.

        This models the weight buffer delivering a vector of ``F`` values (or
        the IARAM delivering ``I`` values) per access.  The final vector may be
        partial, which is one of the sources of multiplier-array fragmentation
        analysed in the paper's Figure 9.
        """
        if width <= 0:
            raise ValueError("fetch width must be positive")
        return [self.values[i : i + width] for i in range(0, len(self.values), width)]

    def fetch_count(self, width: int) -> int:
        """Number of buffer accesses needed to stream the block."""
        if width <= 0:
            raise ValueError("fetch width must be positive")
        return -(-len(self.values) // width)


def compress_block(
    dense: np.ndarray,
    *,
    index_bits: int = DEFAULT_INDEX_BITS,
    value_bits: int = 16,
) -> CompressedBlock:
    """Compress a dense block into the SCNN run-length format.

    Zero runs longer than the index width allows are bridged with explicit
    zero placeholders so that every gap is representable.
    """
    dense = np.asarray(dense)
    flat = dense.reshape(-1)
    max_run = (1 << index_bits) - 1

    values: List[float] = []
    runs: List[int] = []
    pending_zeros = 0
    for element in flat:
        if element == 0:
            pending_zeros += 1
            continue
        while pending_zeros > max_run:
            values.append(flat.dtype.type(0))
            runs.append(max_run)
            pending_zeros -= max_run + 1
        values.append(element)
        runs.append(pending_zeros)
        pending_zeros = 0
    # Trailing zeros need no storage: the block shape bounds the decode.

    data = np.array(values, dtype=flat.dtype) if values else np.zeros(0, dtype=flat.dtype)
    return CompressedBlock(
        block_shape=tuple(dense.shape),
        values=data,
        index=RunLengthIndex(tuple(runs), index_bits=index_bits),
        value_bits=value_bits,
    )


def decompress_block(block: CompressedBlock) -> np.ndarray:
    """Convenience wrapper mirroring :func:`compress_block`."""
    return block.decode()


@dataclass
class BlockStatistics:
    """Aggregate statistics across a collection of compressed blocks."""

    dense_elements: int = 0
    stored_elements: int = 0
    nonzero_elements: int = 0
    placeholder_elements: int = 0
    data_bits: int = 0
    index_bits: int = 0
    blocks: int = 0
    _per_block_density: List[float] = field(default_factory=list)

    def add(self, block: CompressedBlock) -> None:
        self.dense_elements += block.dense_size
        self.stored_elements += block.stored_elements
        self.nonzero_elements += block.nonzero_count
        self.placeholder_elements += block.placeholder_count
        self.data_bits += block.stored_elements * block.value_bits
        self.index_bits += block.index.storage_bits()
        self.blocks += 1
        self._per_block_density.append(block.density)

    @property
    def density(self) -> float:
        if self.dense_elements == 0:
            return 0.0
        return self.nonzero_elements / self.dense_elements

    @property
    def placeholder_overhead(self) -> float:
        """Fraction of stored elements that are zero placeholders."""
        if self.stored_elements == 0:
            return 0.0
        return self.placeholder_elements / self.stored_elements

    def storage_bits(self) -> int:
        return self.data_bits + self.index_bits

    def compression_ratio(self, value_bits: int = 16) -> float:
        compressed = self.storage_bits()
        if compressed == 0:
            return float("inf")
        return self.dense_elements * value_bits / compressed
