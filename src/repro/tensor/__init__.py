"""Compressed-sparse tensor substrate used by the SCNN dataflow.

The SCNN paper (Section IV) encodes weights and activations with a simple
run-length scheme: a data vector of non-zero values plus an index vector
recording the number of zeros preceding each value.  Four bits per index
allow up to 15 zeros between consecutive non-zeros; longer gaps are bridged
with explicit zero-valued placeholders.

Weights are compressed at the granularity of one *output-channel group*
(``Kc x R x S`` values for one input channel), activations at the granularity
of one input channel of one PE tile (``Wt x Ht`` values).
"""

from repro.tensor.compressed import (
    CompressedBlock,
    RunLengthIndex,
    compress_block,
    decompress_block,
)
from repro.tensor.coordinates import (
    delinearize,
    linearize,
    output_coordinate,
)
from repro.tensor.formats import (
    ActivationTileSet,
    CompressedActivations,
    CompressedWeights,
    WeightGroupBlock,
)

__all__ = [
    "ActivationTileSet",
    "CompressedActivations",
    "CompressedBlock",
    "CompressedWeights",
    "RunLengthIndex",
    "WeightGroupBlock",
    "compress_block",
    "decompress_block",
    "delinearize",
    "linearize",
    "output_coordinate",
]
