"""Coordinate arithmetic shared by the compressed formats and the dataflow.

The SCNN PE computes output coordinates on the fly from the coordinates
embedded in the compressed weight and activation streams (paper Section III-B:
"output coordinates are not derived from loop indices in a state machine but
from the coordinates of non-zero values embedded in the compressed format").
These helpers centralise that arithmetic so the functional simulator, the
cycle model and the tests all agree on it.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def linearize(coords: Sequence[int], dims: Sequence[int]) -> int:
    """Map a multi-dimensional coordinate to a flat row-major offset.

    ``coords`` and ``dims`` must have the same length; the first dimension is
    the slowest-varying one (row-major / C order), matching ``numpy.ravel``.
    """
    if len(coords) != len(dims):
        raise ValueError(
            f"coordinate rank {len(coords)} does not match dims rank {len(dims)}"
        )
    offset = 0
    for coord, dim in zip(coords, dims):
        if not 0 <= coord < dim:
            raise ValueError(f"coordinate {coord} out of range for dimension {dim}")
        offset = offset * dim + coord
    return offset


def delinearize(offset: int, dims: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`linearize`: flat row-major offset to coordinates."""
    total = 1
    for dim in dims:
        total *= dim
    if not 0 <= offset < total:
        raise ValueError(f"offset {offset} out of range for dims {tuple(dims)}")
    coords = []
    for dim in reversed(dims):
        coords.append(offset % dim)
        offset //= dim
    return tuple(reversed(coords))


def output_coordinate(
    input_x: int,
    input_y: int,
    filter_r: int,
    filter_s: int,
    *,
    stride: int = 1,
    pad: int = 0,
) -> Tuple[int, int] | None:
    """Output-plane coordinate hit by one (activation, weight) product.

    Given an input activation at ``(input_x, input_y)`` (coordinates within
    the padded-free input plane) and a weight at filter offset
    ``(filter_r, filter_s)``, return the output coordinate ``(out_x, out_y)``
    the product contributes to, or ``None`` if the product falls outside the
    output plane or between stride points.

    The convention matches the standard cross-correlation used by CNN
    frameworks: ``out[x, y] += in[x * stride - pad + r, y * stride - pad + s]``.
    """
    num_x = input_x + pad - filter_r
    num_y = input_y + pad - filter_s
    if num_x < 0 or num_y < 0:
        return None
    if num_x % stride or num_y % stride:
        return None
    return num_x // stride, num_y // stride


def output_extent(input_size: int, filter_size: int, stride: int, pad: int) -> int:
    """Number of output positions along one spatial dimension."""
    extent = (input_size + 2 * pad - filter_size) // stride + 1
    if extent <= 0:
        raise ValueError(
            "layer produces no output: "
            f"input={input_size} filter={filter_size} stride={stride} pad={pad}"
        )
    return extent


def halo_extent(filter_size: int, stride: int) -> int:
    """Width of the output halo one planar tile spills onto its neighbour.

    With output halos (paper Section III-A), a PE computing a ``Wt x Ht``
    input tile produces partial sums for up to ``(filter_size - 1) // stride``
    output columns owned by the neighbouring PE on each side.
    """
    return max(0, (filter_size - 1) // stride)
