"""Layer-level compressed-sparse containers.

The SCNN dataflow compresses data at two granularities (paper Section III-B):

* **Weights** are grouped into blocks of one *output-channel group*: for each
  input channel ``c`` and each group of ``Kc`` consecutive output channels,
  the ``Kc x R x S`` weights form one compressed block.
* **Input activations** are grouped per input channel of one PE tile: each
  ``Ht x Wt`` planar tile of one channel forms one compressed block.

These containers hold the compressed blocks for a whole layer, expose the
non-zero counts the cycle model needs, and account for the storage the
energy/area models need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.tensor.compressed import (
    BlockStatistics,
    CompressedBlock,
    DEFAULT_INDEX_BITS,
    compress_block,
)


@dataclass(frozen=True)
class WeightGroupBlock:
    """Compressed weights of one (output-channel group, input channel) pair."""

    group: int
    input_channel: int
    output_channels: Tuple[int, ...]
    block: CompressedBlock

    @property
    def nonzero_count(self) -> int:
        return self.block.nonzero_count

    @property
    def stored_elements(self) -> int:
        return self.block.stored_elements


class CompressedWeights:
    """All weight blocks of one convolutional layer.

    Args:
        weights: dense weight tensor of shape ``(K, C, R, S)``.
        group_size: output-channel group size ``Kc``.
        index_bits: run-length index width.
        value_bits: data element width.
    """

    def __init__(
        self,
        weights: np.ndarray,
        group_size: int,
        *,
        index_bits: int = DEFAULT_INDEX_BITS,
        value_bits: int = 16,
    ) -> None:
        weights = np.asarray(weights)
        if weights.ndim != 4:
            raise ValueError(f"expected (K, C, R, S) weights, got shape {weights.shape}")
        if group_size <= 0:
            raise ValueError("output-channel group size must be positive")
        self.shape = weights.shape
        self.group_size = group_size
        self.index_bits = index_bits
        self.value_bits = value_bits

        num_k, num_c, _, _ = weights.shape
        self.num_groups = -(-num_k // group_size)
        self._blocks: Dict[Tuple[int, int], WeightGroupBlock] = {}
        stats = BlockStatistics()
        for group in range(self.num_groups):
            k_lo = group * group_size
            k_hi = min(num_k, k_lo + group_size)
            channels = tuple(range(k_lo, k_hi))
            for c in range(num_c):
                dense = weights[k_lo:k_hi, c, :, :]
                block = compress_block(
                    dense, index_bits=index_bits, value_bits=value_bits
                )
                self._blocks[(group, c)] = WeightGroupBlock(
                    group=group,
                    input_channel=c,
                    output_channels=channels,
                    block=block,
                )
                stats.add(block)
        self.statistics = stats

    # -- access --------------------------------------------------------------

    def block(self, group: int, input_channel: int) -> WeightGroupBlock:
        return self._blocks[(group, input_channel)]

    def blocks(self) -> List[WeightGroupBlock]:
        return list(self._blocks.values())

    def group_channels(self, group: int) -> Tuple[int, ...]:
        k_lo = group * self.group_size
        k_hi = min(self.shape[0], k_lo + self.group_size)
        return tuple(range(k_lo, k_hi))

    # -- statistics ------------------------------------------------------------

    def nonzero_counts(self) -> np.ndarray:
        """Array of shape ``(num_groups, C)`` with non-zero weights per block."""
        num_c = self.shape[1]
        counts = np.zeros((self.num_groups, num_c), dtype=np.int64)
        for (group, c), wblock in self._blocks.items():
            counts[group, c] = wblock.nonzero_count
        return counts

    def stored_counts(self) -> np.ndarray:
        """Stored elements (non-zeros + placeholders) per block."""
        num_c = self.shape[1]
        counts = np.zeros((self.num_groups, num_c), dtype=np.int64)
        for (group, c), wblock in self._blocks.items():
            counts[group, c] = wblock.stored_elements
        return counts

    @property
    def density(self) -> float:
        return self.statistics.density

    def storage_bits(self) -> int:
        return self.statistics.storage_bits()

    def dense_storage_bits(self) -> int:
        return self.statistics.dense_elements * self.value_bits

    def decode(self) -> np.ndarray:
        """Reconstruct the dense ``(K, C, R, S)`` weight tensor."""
        num_k, num_c, num_r, num_s = self.shape
        dense = np.zeros(self.shape, dtype=float)
        for (group, c), wblock in self._blocks.items():
            k_lo = group * self.group_size
            decoded = wblock.block.decode()
            dense[k_lo : k_lo + decoded.shape[0], c, :, :] = decoded
        return dense


@dataclass(frozen=True)
class TileExtent:
    """Planar extent of one PE's activation tile."""

    row: int
    col: int
    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int

    @property
    def width(self) -> int:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> int:
        return self.y_hi - self.y_lo

    @property
    def size(self) -> int:
        return self.width * self.height


def partition_plane(
    height: int, width: int, tile_rows: int, tile_cols: int
) -> List[TileExtent]:
    """Partition an ``H x W`` plane into a ``tile_rows x tile_cols`` grid.

    Tiles are as even as possible; when the plane does not divide evenly the
    leading tiles are one element larger (matching how the paper's simulator
    distributes uneven tiles across PEs).
    """
    if tile_rows <= 0 or tile_cols <= 0:
        raise ValueError("tile grid dimensions must be positive")

    def _splits(total: int, parts: int) -> List[Tuple[int, int]]:
        base, extra = divmod(total, parts)
        bounds = []
        start = 0
        for idx in range(parts):
            size = base + (1 if idx < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    row_bounds = _splits(height, tile_rows)
    col_bounds = _splits(width, tile_cols)
    tiles = []
    for r, (y_lo, y_hi) in enumerate(row_bounds):
        for c, (x_lo, x_hi) in enumerate(col_bounds):
            tiles.append(
                TileExtent(row=r, col=c, x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi)
            )
    return tiles


class ActivationTileSet:
    """Per-PE, per-channel compressed activation tiles of one layer input.

    Args:
        activations: dense input activation tensor of shape ``(C, H, W)``.
        tile_rows: number of PE rows the plane is split across.
        tile_cols: number of PE columns.
    """

    def __init__(
        self,
        activations: np.ndarray,
        tile_rows: int,
        tile_cols: int,
        *,
        index_bits: int = DEFAULT_INDEX_BITS,
        value_bits: int = 16,
    ) -> None:
        activations = np.asarray(activations)
        if activations.ndim != 3:
            raise ValueError(
                f"expected (C, H, W) activations, got shape {activations.shape}"
            )
        self.shape = activations.shape
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.index_bits = index_bits
        self.value_bits = value_bits

        num_c, height, width = activations.shape
        self.tiles = partition_plane(height, width, tile_rows, tile_cols)
        self._blocks: Dict[Tuple[int, int], CompressedBlock] = {}
        stats = BlockStatistics()
        for pe_index, tile in enumerate(self.tiles):
            for c in range(num_c):
                dense = activations[c, tile.y_lo : tile.y_hi, tile.x_lo : tile.x_hi]
                block = compress_block(
                    dense, index_bits=index_bits, value_bits=value_bits
                )
                self._blocks[(pe_index, c)] = block
                stats.add(block)
        self.statistics = stats

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def num_channels(self) -> int:
        return self.shape[0]

    def block(self, pe_index: int, channel: int) -> CompressedBlock:
        return self._blocks[(pe_index, channel)]

    def tile_extent(self, pe_index: int) -> TileExtent:
        return self.tiles[pe_index]

    def nonzero_counts(self) -> np.ndarray:
        """Array of shape ``(num_tiles, C)`` with non-zero activations per block."""
        counts = np.zeros((self.num_tiles, self.num_channels), dtype=np.int64)
        for (pe_index, c), block in self._blocks.items():
            counts[pe_index, c] = block.nonzero_count
        return counts

    def stored_counts(self) -> np.ndarray:
        counts = np.zeros((self.num_tiles, self.num_channels), dtype=np.int64)
        for (pe_index, c), block in self._blocks.items():
            counts[pe_index, c] = block.stored_elements
        return counts

    @property
    def density(self) -> float:
        return self.statistics.density

    def storage_bits(self) -> int:
        return self.statistics.storage_bits()

    def dense_storage_bits(self) -> int:
        return self.statistics.dense_elements * self.value_bits

    def decode(self) -> np.ndarray:
        """Reconstruct the dense ``(C, H, W)`` activation tensor."""
        num_c, height, width = self.shape
        dense = np.zeros(self.shape, dtype=float)
        for (pe_index, c), block in self._blocks.items():
            tile = self.tiles[pe_index]
            dense[c, tile.y_lo : tile.y_hi, tile.x_lo : tile.x_hi] = block.decode()
        return dense


class CompressedActivations:
    """Whole-plane (untiled) compressed activations, one block per channel.

    This is the representation used for OARAM storage accounting and DRAM
    traffic estimation, where tiling across PEs is irrelevant.
    """

    def __init__(
        self,
        activations: np.ndarray,
        *,
        index_bits: int = DEFAULT_INDEX_BITS,
        value_bits: int = 16,
    ) -> None:
        activations = np.asarray(activations)
        if activations.ndim != 3:
            raise ValueError(
                f"expected (C, H, W) activations, got shape {activations.shape}"
            )
        self.shape = activations.shape
        self.value_bits = value_bits
        self._blocks: List[CompressedBlock] = []
        stats = BlockStatistics()
        for c in range(activations.shape[0]):
            block = compress_block(
                activations[c], index_bits=index_bits, value_bits=value_bits
            )
            self._blocks.append(block)
            stats.add(block)
        self.statistics = stats

    def block(self, channel: int) -> CompressedBlock:
        return self._blocks[channel]

    @property
    def density(self) -> float:
        return self.statistics.density

    def storage_bits(self) -> int:
        return self.statistics.storage_bits()

    def dense_storage_bits(self) -> int:
        return self.statistics.dense_elements * self.value_bits

    def decode(self) -> np.ndarray:
        return np.stack([block.decode() for block in self._blocks], axis=0)
