"""Developer tooling that machine-checks the repo's own invariants.

Two halves, both stdlib-only (a constraint the tooling itself enforces):

* :mod:`repro.devtools.lint` — an AST rule engine with the project's rule
  catalogue: stdlib-only imports in the service/observability tiers,
  monotonic-clock duration math, no disk I/O while holding a lock, no
  import-time registry freezes, no silently swallowed exceptions, no
  mutable default arguments, and docstring coverage over the public API.
  Run it as ``repro lint`` or ``python -m repro.devtools.lint``.
* :mod:`repro.devtools.locks` — a dynamic concurrency checker: tracked
  drop-in lock wrappers that record per-thread acquisition order, build
  the global lock-order graph, and report cycles (potential deadlocks)
  and I/O performed while a lock is held.  The test suite's
  ``--track-locks`` flag patches the service/engine/obs lock sites with
  it, so the 64-way burst tests double as a deadlock detector.

``docs/static_analysis.md`` documents every rule, its motivating
incident, and the suppression syntax.
"""

from __future__ import annotations

from repro.devtools.lint import (
    Finding,
    LintConfig,
    LintReport,
    Rule,
    default_config,
    lint_paths,
)
from repro.devtools.locks import (
    LockTracker,
    TrackedLock,
    TrackedRLock,
    track_locks,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "LockTracker",
    "Rule",
    "TrackedLock",
    "TrackedRLock",
    "default_config",
    "lint_paths",
    "track_locks",
]
