"""The AST lint engine and the project's rule catalogue.

Public surface:

* :func:`lint_paths` / :func:`lint_file` — run rules over files and get a
  :class:`LintReport` with full suppression accounting;
* :data:`~repro.devtools.lint.rules.ALL_RULES` / :func:`~repro.devtools.lint.rules.get_rules`
  — the catalogue;
* :class:`LintConfig` / :func:`default_config` — which invariant applies
  where;
* :func:`~repro.devtools.lint.cli.lint_main` — the ``repro lint`` /
  ``python -m repro.devtools.lint`` entry point.

See ``docs/static_analysis.md`` for the rule catalogue with rationale,
the suppression syntax, and how to add a rule.
"""

from __future__ import annotations

from repro.devtools.lint.config import LintConfig, default_config, path_in_packages
from repro.devtools.lint.engine import (
    SYNTAX_ERROR_RULE,
    FileContext,
    Finding,
    LintReport,
    Rule,
    lint_file,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.devtools.lint.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "SYNTAX_ERROR_RULE",
    "default_config",
    "get_rules",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "path_in_packages",
    "write_baseline",
]
