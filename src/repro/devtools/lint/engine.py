"""The AST lint engine: findings, rules, suppressions, baselines.

The engine is deliberately small: a :class:`Rule` is an object with an
``id``, a ``description`` and a ``check(context)`` method that yields
:class:`Finding` records for one parsed file.  :func:`lint_paths` walks the
requested files, parses each one once, hands the shared
:class:`FileContext` to every selected rule, and post-filters the findings
through two suppression tiers:

* **inline suppressions** — a ``# lint-ok: <rule-id>`` comment on the
  finding's line (or on a pure-comment line directly above it) waives that
  rule for that line.  Use sparingly, with a reason in the comment;
* **baselines** — a JSON file of known findings (``--write-baseline``)
  that :func:`lint_paths` subtracts, for adopting a rule before its debt
  is paid down.  Baseline entries match on ``(rule, path, line)``.

Both tiers are *accounted for*, never silent: the returned
:class:`LintReport` carries the suppressed and baselined findings
alongside the live ones, and the JSON output format reports their counts
per rule — the CI gate requires the baseline count to stay at zero for
the invariant rules.

Files that fail to parse surface as findings under the pseudo-rule
``syntax-error`` rather than crashing the run.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.devtools.lint.config import LintConfig, default_config

#: Pseudo-rule id used for unparseable files; never suppressible.
SYNTAX_ERROR_RULE = "syntax-error"

_SUPPRESSION_PATTERN = re.compile(r"#\s*lint-ok:\s*([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The finding as one ``path:line:col: [rule] message`` line."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """The finding as a JSON-serializable record."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to check one parsed file."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    config: LintConfig

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` and ``description`` and implement
    :meth:`check`.  Rules must be stateless across files — one instance
    is reused for the whole run.
    """

    id: str = ""
    description: str = ""

    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError


@dataclass
class LintReport:
    """The outcome of one lint run, with full suppression accounting."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """Whether the run produced no live findings."""
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """Live finding count per rule id (only rules with findings)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """The report as a JSON-serializable document (the CI artifact)."""
        baseline_counts: Dict[str, int] = {}
        for finding in self.baselined:
            baseline_counts[finding.rule] = baseline_counts.get(finding.rule, 0) + 1
        return {
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.findings],
            "counts_by_rule": self.counts_by_rule(),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "baselined_by_rule": baseline_counts,
            "clean": self.clean,
        }


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files kept, directories walked)."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    # De-duplicate while preserving order (overlapping path arguments).
    seen = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def relative_display_path(path: Path) -> str:
    """``path`` relative to the working directory when possible, POSIX-style."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def suppressed_rules_by_line(source: str) -> Dict[int, frozenset]:
    """Line number -> rule ids waived by an inline ``# lint-ok:`` marker.

    A marker waives its own line; a marker on a *pure comment* line also
    waives the line directly below it, so long call chains can carry the
    suppression above them.
    """
    markers: Dict[int, frozenset] = {}
    lines = source.splitlines()
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESSION_PATTERN.search(line)
        if not match:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        markers[number] = markers.get(number, frozenset()) | rules
        if line.lstrip().startswith("#"):
            markers[number + 1] = markers.get(number + 1, frozenset()) | rules
    return markers


def _is_suppressed(finding: Finding, markers: Dict[int, frozenset]) -> bool:
    if finding.rule == SYNTAX_ERROR_RULE:
        return False
    waived = markers.get(finding.line, frozenset())
    return finding.rule in waived or "all" in waived


def load_baseline(path: Union[str, Path]) -> List[Dict[str, object]]:
    """The baseline file's finding records (``[]`` for a missing file)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return []
    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    records = document.get("findings", []) if isinstance(document, dict) else document
    if not isinstance(records, list):
        raise ValueError(f"malformed baseline {baseline_path}: expected a list")
    return records


def write_baseline(path: Union[str, Path], report: LintReport) -> None:
    """Persist ``report``'s live findings as a baseline file."""
    document = {
        "comment": "known lint findings accepted as baseline; see docs/static_analysis.md",
        "findings": [finding.to_dict() for finding in report.findings],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def lint_file(
    path: Union[str, Path],
    rules: Sequence[Rule],
    config: Optional[LintConfig] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Run ``rules`` over one file; returns ``(live, inline-suppressed)``."""
    config = config if config is not None else default_config()
    file_path = Path(path)
    rel_path = relative_display_path(file_path)
    source = file_path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError as error:
        finding = Finding(
            path=rel_path,
            line=error.lineno or 1,
            col=(error.offset or 1),
            rule=SYNTAX_ERROR_RULE,
            message=f"file does not parse: {error.msg}",
        )
        return [finding], []
    context = FileContext(
        path=file_path, rel_path=rel_path, source=source, tree=tree, config=config
    )
    markers = suppressed_rules_by_line(source)
    live: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        for finding in rule.check(context):
            if _is_suppressed(finding, markers):
                suppressed.append(finding)
            else:
                live.append(finding)
    return live, suppressed


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    config: Optional[LintConfig] = None,
    baseline: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Run the rule catalogue over every Python file under ``paths``.

    ``rules`` defaults to the full project catalogue
    (:data:`repro.devtools.lint.rules.ALL_RULES`); ``baseline`` optionally
    names a JSON baseline whose entries are subtracted into
    ``report.baselined``.
    """
    from repro.devtools.lint.rules import ALL_RULES

    config = config if config is not None else default_config()
    selected = list(rules) if rules is not None else list(ALL_RULES)
    baseline_keys = set()
    if baseline is not None:
        baseline_keys = {
            (record.get("rule"), record.get("path"), record.get("line"))
            for record in load_baseline(baseline)
        }
    report = LintReport(rules_run=tuple(rule.id for rule in selected))
    for path in iter_python_files(paths):
        live, suppressed = lint_file(path, selected, config)
        report.suppressed.extend(suppressed)
        for finding in live:
            if (finding.rule, finding.path, finding.line) in baseline_keys:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        report.files_checked += 1
    report.findings.sort()
    return report
