"""The lint rule configuration: which invariant applies where.

One :class:`LintConfig` instance parameterises every rule in the
catalogue, so the project's conventions live in one place —
:func:`default_config` — instead of being hard-coded inside the rule
visitors.  Paths are matched *package-wise*: a file belongs to
``repro/service`` when that package path appears as a directory run
anywhere in its path, so the same config works whether the scan root is
``src``, the repo root, or a test fixture tree.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


def _stdlib_modules() -> FrozenSet[str]:
    """Top-level stdlib module names (``sys.stdlib_module_names``, 3.10+)."""
    names = getattr(sys, "stdlib_module_names", None)
    if names is None:  # pragma: no cover - Python < 3.10 fallback
        return frozenset()
    return frozenset(names) | {"__future__"}


def path_in_packages(rel_path: str, packages: Tuple[str, ...]) -> bool:
    """Whether ``rel_path`` lies under any of the ``packages`` directories.

    ``packages`` entries are slash-separated package paths such as
    ``"repro/service"``; matching is on whole directory runs, so
    ``src/repro/service/jobs.py`` matches ``repro/service`` but
    ``repro/service_utils.py`` does not.
    """
    haystack = "/" + rel_path.replace("\\", "/").lstrip("/")
    return any("/" + package + "/" in haystack for package in packages)


@dataclass(frozen=True)
class LintConfig:
    """Per-project settings consumed by the rule catalogue.

    Every field has a project-appropriate default; tests build variants
    with ``dataclasses.replace`` to point rules at fixture trees.
    """

    #: Packages that must import nothing beyond the stdlib and first-party
    #: code (the service tier must boot anywhere a Python is).
    stdlib_only_packages: Tuple[str, ...] = (
        "repro/service",
        "repro/obs",
        "repro/devtools",
    )
    #: Third-party imports tolerated *outside* the stdlib-only packages.
    third_party_allowlist: FrozenSet[str] = frozenset({"numpy", "scipy"})
    #: First-party top-level packages (always importable from anywhere).
    first_party_modules: FrozenSet[str] = frozenset({"repro"})
    #: Resolved stdlib top-level names.
    stdlib_modules: FrozenSet[str] = field(default_factory=_stdlib_modules)

    #: ``(module, attribute)`` calls that produce wall-clock readings.
    wall_clock_calls: Tuple[Tuple[str, str], ...] = (
        ("time", "time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
    )
    #: Name suffixes exempt from the wall-clock rule: ``*_at`` fields are
    #: display-only timestamps by convention (PR 8), never duration math.
    display_name_suffixes: Tuple[str, ...] = ("_at",)

    #: ``with`` context names treated as lock guards by the I/O rule.
    lock_guard_suffixes: Tuple[str, ...] = ("lock", "_available", "_cond")

    #: Registry catalogue functions that must never be called at import
    #: time, in default arguments, or inside a ``choices=`` value — the
    #: PR 5 frozen-``choices`` bug class.
    registry_catalogue_calls: FrozenSet[str] = frozenset(
        {
            "available_networks",
            "available_profiles",
            "available_adapters",
            "available_architectures",
        }
    )

    #: Packages whose public API must be fully docstring-covered
    #: (absorbed from ``scripts/check_docs.py``).
    docstring_packages: Tuple[str, ...] = (
        "repro/arch",
        "repro/devtools",
        "repro/engine",
        "repro/grid",
        "repro/obs",
        "repro/service",
        "repro/workloads",
    )


def default_config() -> LintConfig:
    """The repository's own invariant configuration."""
    return LintConfig()
