"""Rule: no duration math on wall-clock readings.

Wall-clock (``time.time()``) differences go negative under NTP
adjustment; PR 8 converted every duration computation to
``time.monotonic()`` stamps and reserved wall-clock for display-only
``*_at`` fields.  This rule flags a wall-clock reading — the call itself,
or a local name assigned from one — used as an operand of a subtraction
or a comparison.  Storing the reading (``submitted_at = time.time()``)
stays legal; doing arithmetic on it does not.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.devtools.lint.engine import FileContext, Finding, Rule


def _is_wall_clock_call(node: ast.AST, config) -> bool:
    """Whether ``node`` is a configured wall-clock producing call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr) in config.wall_clock_calls
    if isinstance(func, ast.Name):
        # ``from time import time`` style: match on the bare attribute name.
        return any(attr == func.id for _, attr in config.wall_clock_calls)
    return False


class _ScopeChecker(ast.NodeVisitor):
    """Checks one function (or the module body) without descending further."""

    def __init__(self, rule: "NoWallClockArithmeticRule", context: FileContext):
        self.rule = rule
        self.context = context
        self.findings: List[Finding] = []
        self.tainted: Set[str] = set()

    def _is_display_name(self, name: str) -> bool:
        return name.endswith(tuple(self.context.config.display_name_suffixes))

    def _collect_taint(self, body: Iterable[ast.stmt]) -> None:
        """Names assigned straight from a wall-clock call in this scope.

        Nested function bodies are separate scopes — their assignments are
        skipped here and handled by their own checker.
        """
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Assign) and _is_wall_clock_call(
                node.value, self.context.config
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name) and not self._is_display_name(
                        target.id
                    ):
                        self.tainted.add(target.id)
            stack.extend(ast.iter_child_nodes(node))

    def _is_wall_clock_operand(self, node: ast.AST) -> bool:
        if _is_wall_clock_call(node, self.context.config):
            return True
        return isinstance(node, ast.Name) and node.id in self.tainted

    def check(self, body: List[ast.stmt]) -> List[Finding]:
        self._collect_taint(body)
        for stmt in body:
            self.visit(stmt)
        return self.findings

    # Nested scopes are checked independently — taint never crosses them.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Sub) and (
            self._is_wall_clock_operand(node.left)
            or self._is_wall_clock_operand(node.right)
        ):
            self.findings.append(
                self.context.finding(
                    self.rule.id,
                    node,
                    "subtraction on a wall-clock reading; durations must "
                    "use time.monotonic() (wall-clock is display-only)",
                )
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        if any(self._is_wall_clock_operand(operand) for operand in operands):
            self.findings.append(
                self.context.finding(
                    self.rule.id,
                    node,
                    "comparison on a wall-clock reading; deadlines must "
                    "use time.monotonic() (wall-clock is display-only)",
                )
            )
        self.generic_visit(node)


class NoWallClockArithmeticRule(Rule):
    """Flag subtraction/comparison over ``time.time()`` readings."""

    id = "no-wall-clock-arithmetic"
    description = (
        "duration and deadline math must use time.monotonic(); "
        "time.time() readings are display-only (*_at fields)"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield findings for wall-clock readings used in duration math."""
        scopes: List[List[ast.stmt]] = [list(context.tree.body)]
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(list(node.body))
        for body in scopes:
            yield from _ScopeChecker(self, context).check(body)
