"""Rule: docstring coverage over the gated packages' public API.

Absorbed from ``scripts/check_docs.py`` (the PR 4 AST gate, now a thin
shim over this rule): every public module, class, function and method in
the docstring-gated packages must carry a docstring.  Private names
(leading underscore), dunders, and ``@property`` accessors are exempt —
the same contract the script enforced, so CI behaviour is unchanged.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.devtools.lint.config import path_in_packages
from repro.devtools.lint.engine import FileContext, Finding, Rule

_PROPERTY_DECORATOR_NAMES = {"property", "cached_property"}
_PROPERTY_ACCESSOR_ATTRS = {"setter", "deleter", "getter", "cached_property"}


def _is_property_accessor(node: ast.AST) -> bool:
    """Whether a function definition is a @property getter/setter/deleter."""
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Name) and decorator.id in (
            _PROPERTY_DECORATOR_NAMES
        ):
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr in (
            _PROPERTY_ACCESSOR_ATTRS
        ):
            return True
    return False


class DocstringCoverageRule(Rule):
    """Flag public API in the gated packages that lacks a docstring."""

    id = "docstring-coverage"
    description = (
        "every public module, class, function and method in the gated "
        "packages must carry a docstring"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield findings for undocumented public API in gated packages."""
        if not path_in_packages(
            context.rel_path, context.config.docstring_packages
        ):
            return
        if not ast.get_docstring(context.tree):
            yield context.finding(
                self.id, context.tree, "module docstring missing"
            )
        yield from self._undocumented(context, context.tree, "")

    def _undocumented(
        self, context: FileContext, node: ast.AST, qualname: str
    ) -> Iterable[Finding]:
        """Findings for public children of ``node`` lacking docstrings."""
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if child.name.startswith("_"):  # private and dunder names
                continue
            name = f"{qualname}{child.name}"
            if isinstance(child, ast.ClassDef):
                if not ast.get_docstring(child):
                    yield context.finding(
                        self.id, child, f"class {name} lacks a docstring"
                    )
                yield from self._undocumented(context, child, f"{name}.")
            elif not _is_property_accessor(child) and not ast.get_docstring(child):
                yield context.finding(
                    self.id, child, f"function {name} lacks a docstring"
                )

    def undocumented_entries(self, context: FileContext) -> List[str]:
        """The check as a plain list of messages (the check_docs surface)."""
        return [finding.message for finding in self.check(context)]
