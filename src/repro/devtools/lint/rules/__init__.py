"""The project rule catalogue.

Every rule lives in its own module with the incident that motivated it
documented in the module docstring; this package assembles them into
:data:`ALL_RULES` (one shared instance each — rules are stateless) and
resolves user-supplied ``--rule`` selections via :func:`get_rules`.
Adding a rule is: write the module, add the instance here, document it
in ``docs/static_analysis.md``, and give it true-positive plus
true-negative fixture tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.devtools.lint.engine import Rule
from repro.devtools.lint.rules.defaults import NoMutableDefaultRule
from repro.devtools.lint.rules.docstrings import DocstringCoverageRule
from repro.devtools.lint.rules.exceptions import NoSilentExceptRule
from repro.devtools.lint.rules.imports import StdlibOnlyImportsRule
from repro.devtools.lint.rules.locking import NoLockHeldIoRule
from repro.devtools.lint.rules.registries import NoImportTimeRegistryFreezeRule
from repro.devtools.lint.rules.timing import NoWallClockArithmeticRule

#: Every rule in the catalogue, in documentation order.
ALL_RULES: Tuple[Rule, ...] = (
    StdlibOnlyImportsRule(),
    NoWallClockArithmeticRule(),
    NoLockHeldIoRule(),
    NoImportTimeRegistryFreezeRule(),
    NoSilentExceptRule(),
    NoMutableDefaultRule(),
    DocstringCoverageRule(),
)

_RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def get_rules(ids: Sequence[str]) -> List[Rule]:
    """The rule instances for ``ids``; unknown ids raise ``KeyError``."""
    unknown = [rule_id for rule_id in ids if rule_id not in _RULES_BY_ID]
    if unknown:
        known = ", ".join(sorted(_RULES_BY_ID))
        raise KeyError(
            f"unknown rule(s): {', '.join(unknown)}; available rules: {known}"
        )
    return [_RULES_BY_ID[rule_id] for rule_id in ids]


__all__ = [
    "ALL_RULES",
    "DocstringCoverageRule",
    "NoImportTimeRegistryFreezeRule",
    "NoLockHeldIoRule",
    "NoMutableDefaultRule",
    "NoSilentExceptRule",
    "NoWallClockArithmeticRule",
    "StdlibOnlyImportsRule",
    "get_rules",
]
