"""Rule: no disk I/O lexically inside a ``with <lock>:`` block.

PR 3 established the invariant for the cache tiers and the service: a
lock guards counters and in-memory structures, never the I/O itself —
one worker's multi-megabyte pickle read must not stall every other
worker.  This rule flags the known I/O surfaces (``open``, ``os.*`` file
operations, ``json``/``pickle`` file (de)serialisation, ``subprocess``,
``tempfile``, ``shutil``, and ``pathlib`` read/write methods) appearing
lexically inside a ``with self._lock:``-shaped block.

The check is lexical by design — it cannot see through a function call
boundary.  The dynamic half of that contract lives in
:mod:`repro.devtools.locks`, whose audit hook catches I/O performed
anywhere below a tracked lock acquisition at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.devtools.lint.engine import FileContext, Finding, Rule

#: ``module.function`` attribute calls that perform disk or process I/O.
_IO_MODULE_CALLS = {
    "os": {
        "replace", "rename", "remove", "unlink", "fdopen", "open",
        "makedirs", "mkdir", "rmdir", "utime", "truncate", "link",
        "symlink", "stat",
    },
    "json": {"dump", "load"},
    "pickle": {"dump", "load"},
    "tempfile": {"mkstemp", "mkdtemp", "NamedTemporaryFile", "TemporaryFile"},
    "subprocess": {"run", "Popen", "call", "check_call", "check_output"},
    "shutil": {
        "copy", "copy2", "copyfile", "copytree", "move", "rmtree", "disk_usage",
    },
}

#: Method names (any receiver) that read or write the filesystem —
#: the :class:`pathlib.Path` read/write surface.
_IO_METHOD_NAMES = {
    "read_text", "write_text", "read_bytes", "write_bytes",
    "unlink", "touch", "rmdir", "hardlink_to", "symlink_to",
}

#: Bare builtins that open file handles.
_IO_BUILTIN_CALLS = {"open"}


def _guard_name(expr: ast.AST) -> Optional[str]:
    """The lock-ish name a ``with`` item guards, or ``None``.

    Matches ``self._lock``, ``queue._lock``, ``_profiles_lock``,
    ``slot.lock``, ``self._available`` — any terminal name ending with a
    configured guard suffix.
    """
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _io_call_description(node: ast.Call) -> Optional[str]:
    """A human-readable label when ``node`` is a known I/O call."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _IO_BUILTIN_CALLS:
        return f"{func.id}()"
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            module_calls = _IO_MODULE_CALLS.get(func.value.id)
            if module_calls is not None and func.attr in module_calls:
                return f"{func.value.id}.{func.attr}()"
        if func.attr in _IO_METHOD_NAMES:
            return f".{func.attr}()"
        # ``Path(...).open()`` / ``handle.open()`` style method opens.
        if func.attr == "open" and not isinstance(func.value, ast.Name):
            return ".open()"
    return None


class NoLockHeldIoRule(Rule):
    """Flag known I/O calls lexically inside a lock-guarded ``with`` block."""

    id = "no-lock-held-io"
    description = (
        "locks guard memory, never disk: no open/os/json/pickle/"
        "subprocess/pathlib I/O inside a `with <lock>:` block"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield findings for lexical I/O inside lock-guarded blocks."""
        suffixes = tuple(context.config.lock_guard_suffixes)
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            guards = [
                name
                for item in node.items
                if (name := _guard_name(item.context_expr)) is not None
                and name.endswith(suffixes)
            ]
            if not guards:
                continue
            yield from self._scan_block(context, node.body, guards[0])

    def _scan_block(
        self, context: FileContext, body: List[ast.stmt], guard: str
    ) -> Iterable[Finding]:
        """Flag I/O calls in ``body`` without descending into nested defs."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # defined under the lock, executed elsewhere
            if isinstance(node, ast.Call):
                description = _io_call_description(node)
                if description is not None:
                    yield context.finding(
                        self.id,
                        node,
                        f"{description} while holding {guard!r}; do the I/O "
                        "outside the lock (it guards memory, not disk)",
                    )
            stack.extend(ast.iter_child_nodes(node))
