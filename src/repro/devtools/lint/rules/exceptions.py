"""Rule: no silently swallowed exceptions.

PR 8's contract: every failure surfaces *somewhere* — a re-raise, an
error payload, an observability counter, or a log line.  Cache write
failures warn and count; journal corruption counts and skips; scenario
exceptions become failed-job payloads.  What is banned is the handler
that catches and leaves no trace at all (``except OSError: pass``).

A handler is considered *accounted for* when its body (at any depth)
does one of:

* re-raise (``raise``) or return — the failure propagates;
* bind the exception (``except X as err``) and actually *use* it — the
  error travels on as data;
* assign a value — a sentinel/fallback replaces the failed computation;
* call a logging method, ``print``, or ``warnings.warn`` — it is reported;
* call a metrics method (``.inc()`` / ``.observe()`` / ``.set()``) or
  increment a counter attribute (``self.write_failures += 1``);
* invoke any other statement-level call — a recovery action (sending an
  error response, redirecting a stream) *is* the failure's trace.

``pass``-only, ``continue``-only and ``break``-only handlers fail the
rule; the rare deliberate swallow carries an inline
``# lint-ok: no-silent-except`` with its justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.engine import FileContext, Finding, Rule

_LOG_METHOD_NAMES = {
    "debug", "info", "warning", "error", "exception", "critical", "log", "warn",
}
_METRIC_METHOD_NAMES = {"inc", "dec", "observe", "set"}
_REPORT_CALL_NAMES = {"print"}


def _handler_is_accounted(handler: ast.ExceptHandler) -> bool:
    """Whether the handler's body leaves any trace of the failure."""
    bound_name = handler.name
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Return)):
            return True
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            return True
        if bound_name and isinstance(node, ast.Name) and node.id == bound_name:
            if isinstance(node.ctx, ast.Load):
                return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _REPORT_CALL_NAMES:
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                _LOG_METHOD_NAMES | _METRIC_METHOD_NAMES
            ):
                return True
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            # A statement-level call is a recovery action: the handler
            # responded to the failure (sent a 404, redirected a stream).
            return True
    return False


class NoSilentExceptRule(Rule):
    """Flag handlers that swallow a failure without leaving any trace."""

    id = "no-silent-except"
    description = (
        "an except handler must raise, return, assign a fallback, log, "
        "or count the failure — never swallow it without a trace"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield a finding for every unaccounted ``except`` handler."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _handler_is_accounted(node):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "BaseException"
            )
            yield context.finding(
                self.id,
                node,
                f"except {caught}: handler swallows the failure without a "
                "trace (no raise/return/fallback/log/counter)",
            )
