"""Rule: stdlib-only imports in the service/observability/devtools tiers.

The service and observability layers are deliberately dependency-free —
``repro serve`` must boot on a bare Python install, and the devtools must
lint the repo without importing its numerical stack (PR 3, PR 8).  The
numerical packages (the ``third_party_allowlist``, ``numpy``/``scipy``)
are tolerated everywhere else; any other third-party import is flagged
repo-wide so a new dependency can never slip in silently.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.devtools.lint.config import path_in_packages
from repro.devtools.lint.engine import FileContext, Finding, Rule


def _imported_top_levels(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Top-level module names introduced by one import statement."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name.split(".")[0], node
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        yield node.module.split(".")[0], node


class StdlibOnlyImportsRule(Rule):
    """Flag third-party imports outside the sanctioned allowlists."""

    id = "stdlib-only"
    description = (
        "service/, obs/ and devtools/ must import only the stdlib and "
        "first-party code; numpy/scipy are tolerated elsewhere"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield a finding for every import outside the allowed set."""
        config = context.config
        if not config.stdlib_modules:  # pragma: no cover - Python < 3.10
            return
        protected = path_in_packages(
            context.rel_path, config.stdlib_only_packages
        )
        allowed = config.stdlib_modules | config.first_party_modules
        if not protected:
            allowed = allowed | config.third_party_allowlist
        for node in ast.walk(context.tree):
            for top_level, stmt in _imported_top_levels(node):
                if top_level in allowed:
                    continue
                where = (
                    "a stdlib-only package"
                    if protected
                    else "outside the third-party allowlist "
                    f"({', '.join(sorted(config.third_party_allowlist))})"
                )
                yield context.finding(
                    self.id,
                    stmt,
                    f"import of {top_level!r} in {where}",
                )
