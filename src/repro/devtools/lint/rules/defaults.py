"""Rule: no mutable default arguments.

A ``def f(x, history=[])`` default is evaluated once and shared by every
call — the classic aliasing bug, and in this codebase a close cousin of
the import-time registry freeze (a catalogue *snapshot* stored in a
default).  The sanctioned pattern is ``history=None`` plus
``history = [] if history is None else history`` in the body, which the
service and workload layers already follow.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.devtools.lint.engine import FileContext, Finding, Rule

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _mutable_description(node: ast.AST) -> Optional[str]:
    """Why ``node`` is a mutable default, or ``None`` when it is fine."""
    if isinstance(node, _MUTABLE_LITERALS):
        return f"{type(node).__name__.lower()} literal"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CONSTRUCTORS:
            return f"{func.id}() call"
    return None


class NoMutableDefaultRule(Rule):
    """Flag list/dict/set (literals or constructors) default arguments."""

    id = "no-mutable-default"
    description = (
        "default arguments are evaluated once and shared; use None and "
        "materialise the container in the body"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield a finding for every mutable default argument value."""
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                description = _mutable_description(default)
                if description is not None:
                    name = getattr(node, "name", "<lambda>")
                    yield context.finding(
                        self.id,
                        default,
                        f"mutable default ({description}) in {name}(); "
                        "use None and build the container in the body",
                    )
