"""Rule: registry catalogues must be consulted live, never frozen at import.

The PR 5 incident: a service scenario declared
``choices=tuple(available_networks())`` — evaluated once at import — so
workloads registered afterwards were rejected as unknown even though the
registry knew them.  The fix resolved the catalogue at ``validate()``
time by passing the *callable*.  This rule flags any call to a registry
catalogue function (``available_networks`` and friends) that is
evaluated exactly once and cached forever:

* at module level (including class bodies) — import-time evaluation;
* inside a function/method *default argument* — ``def``-time evaluation;
* inside a ``choices=`` keyword value — the original bug's exact shape.

Passing the function itself (``choices=available_networks``) stays
legal: a reference defers evaluation to use time.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from repro.devtools.lint.engine import FileContext, Finding, Rule


def _catalogue_call_name(node: ast.AST, catalogue: frozenset) -> str:
    """The catalogue function name when ``node`` calls one, else ``""``."""
    if not isinstance(node, ast.Call):
        return ""
    func = node.func
    if isinstance(func, ast.Name) and func.id in catalogue:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in catalogue:
        return func.attr
    return ""


def _walk_skipping_functions(roots: List[ast.AST]) -> Iterator[ast.AST]:
    """All descendants of ``roots`` without entering function bodies."""
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class NoImportTimeRegistryFreezeRule(Rule):
    """Flag catalogue calls frozen at import/def time or in ``choices=``."""

    id = "no-import-time-registry-freeze"
    description = (
        "registry catalogues (available_networks, ...) must be resolved "
        "at validate/use time, never frozen at import, in defaults, or "
        "in a choices= value"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield findings for registry catalogues frozen at import time."""
        catalogue = context.config.registry_catalogue_calls

        # Import-time evaluation: anything reachable from the module body
        # without crossing into a function (class bodies run at import).
        for node in _walk_skipping_functions(list(context.tree.body)):
            name = _catalogue_call_name(node, catalogue)
            if name:
                yield context.finding(
                    self.id,
                    node,
                    f"{name}() called at import time freezes the catalogue; "
                    "resolve it inside the function that needs it",
                )
        # Default arguments evaluate once when the def executes — check
        # every function at any nesting depth.
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                for child in ast.walk(default):
                    child_name = _catalogue_call_name(child, catalogue)
                    if child_name:
                        yield context.finding(
                            self.id,
                            child,
                            f"{child_name}() in a default argument is "
                            "evaluated once at def time; resolve it in "
                            "the function body instead",
                        )

        # ``choices=`` values holding a catalogue *call* — the PR 5 bug.
        # Passing the callable itself defers resolution and stays legal.
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg != "choices":
                    continue
                for child in ast.walk(keyword.value):
                    name = _catalogue_call_name(child, catalogue)
                    if name:
                        yield context.finding(
                            self.id,
                            child,
                            f"choices= built from {name}() freezes the "
                            "catalogue at parser-build time; pass the "
                            "callable and resolve at validate time",
                        )
