"""Command-line surface for the lint engine: ``repro lint`` and
``python -m repro.devtools.lint``.

Exit status: 0 when every selected rule is clean, 1 when findings
remain, 2 on usage errors — so CI can gate on the exit code while the
``--format json`` document carries the full per-rule accounting
(including how many findings a baseline absorbed, which the invariant
rules require to stay at zero).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.devtools.lint.engine import LintReport, lint_paths, write_baseline
from repro.devtools.lint.rules import ALL_RULES, get_rules


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Check the codebase's machine-enforced invariants "
            "(see docs/static_analysis.md for the rule catalogue)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="run only this rule (repeatable; default: the full catalogue)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of known findings to subtract (counted, never silent)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rule catalogue and exit"
    )
    return parser


def list_rules() -> str:
    """The catalogue as one ``id: description`` line per rule."""
    width = max(len(rule.id) for rule in ALL_RULES)
    return "\n".join(
        f"{rule.id:<{width}}  {rule.description}" for rule in ALL_RULES
    )


def render_text(report: LintReport) -> str:
    """The report as human-oriented text (one finding per line + summary)."""
    lines = [finding.format() for finding in report.findings]
    counts = report.counts_by_rule()
    summary = (
        f"checked {report.files_checked} files, "
        f"{len(report.rules_run)} rules: "
        + (
            "all clean"
            if report.clean
            else ", ".join(
                f"{count} x {rule}" for rule, count in sorted(counts.items())
            )
        )
    )
    extras = []
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} inline-suppressed")
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        rules = get_rules(args.rule) if args.rule else None
    except KeyError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    report = lint_paths(args.paths, rules=rules, baseline=args.baseline)
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, report)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_text(report))
    return 0 if report.clean else 1
