"""``python -m repro.devtools.lint`` — the CI gate entry point."""

from __future__ import annotations

import sys

from repro.devtools.lint.cli import lint_main

if __name__ == "__main__":
    sys.exit(lint_main())
