"""Dynamic concurrency checking: tracked locks, lock-order graph, I/O audit.

The static half of the locking contract lives in the lint rule
``no-lock-held-io`` (lexical, per file).  This module is the dynamic
half: :class:`TrackedLock` / :class:`TrackedRLock` are drop-in wrappers
around the real primitives that report every acquisition to a
:class:`LockTracker`, which

* maintains each thread's stack of currently-held locks;
* aggregates acquisitions into a *site-level* lock-order graph — a lock's
  site is the ``file:line`` that created it, so every ``JobQueue``
  instance's lock collapses onto one node — and reports cycles in that
  graph as potential deadlocks (:meth:`LockTracker.cycles`);
* records filesystem/subprocess activity performed while the current
  thread holds any tracked lock (:attr:`LockTracker.io_violations`),
  via a process-wide ``sys.addaudithook`` that is a no-op whenever no
  tracker is active.

:func:`track_locks` wires it into live code without touching production
sources: for each target module it swaps the module's ``threading``
binding for a proxy whose ``Lock()`` / ``RLock()`` return tracked
wrappers (everything else delegates to the real module), so every lock
*created* by that module during the window is tracked.  The test suite's
``--track-locks`` flag runs the service concurrency suites under it and
fails on any lock-order cycle — the 64-way burst tests double as a
deadlock detector.
"""

from __future__ import annotations

import contextlib
import importlib
import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

#: Modules whose lock sites the service concurrency suites patch.
DEFAULT_TARGET_MODULES: Tuple[str, ...] = (
    "repro.service.jobs",
    "repro.service.worker",
    "repro.service.coalesce",
    "repro.service.server",
    "repro.engine.core",
    "repro.engine.cache",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.obs.logging",
)

#: Audit events treated as I/O for the held-across-I/O check.
_IO_AUDIT_EVENTS: FrozenSet[str] = frozenset(
    {
        "open",
        "os.rename",
        "os.remove",
        "os.rmdir",
        "os.mkdir",
        "os.utime",
        "os.truncate",
        "subprocess.Popen",
        "shutil.copyfile",
        "shutil.rmtree",
        "shutil.move",
    }
)

# The process-wide audit hook is installed once and can never be removed
# (CPython contract), so it consults this slot and returns immediately
# while no tracker is active.
_ACTIVE_TRACKER: Optional["LockTracker"] = None
_AUDIT_HOOK_INSTALLED = False


@dataclass
class IoViolation:
    """One I/O event observed while the acting thread held tracked locks."""

    event: str
    held_sites: Tuple[str, ...]
    thread: str
    detail: str = ""

    def format(self) -> str:
        """The violation as one human-readable line."""
        held = ", ".join(self.held_sites)
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.event} on thread {self.thread!r} while holding [{held}]{suffix}"


@dataclass
class _HeldEntry:
    """One acquisition on a thread's stack (reentrant acquisitions too)."""

    lock_id: int
    site: str
    reentrant: bool = False


class LockTracker:
    """Aggregates lock acquisitions into a site-level order graph.

    Thread-safety: the edge map and violation list are guarded by a real
    (untracked) lock; each per-thread held stack is only mutated by its
    owning thread, and only ever *read* by that same thread (the audit
    hook and the acquisition path both run on the acting thread).
    """

    def __init__(self) -> None:
        self.active = False
        self._guard = threading.Lock()
        self._edges: Dict[str, set] = {}
        self._edge_examples: Dict[Tuple[str, str], str] = {}
        self._held: Dict[int, List[_HeldEntry]] = {}
        self.io_violations: List[IoViolation] = []
        self.acquisitions = 0

    # -- acquisition bookkeeping (called from the acting thread) ---------------

    def on_acquired(self, lock: "TrackedLock") -> None:
        """Record that the current thread acquired ``lock``."""
        ident = threading.get_ident()
        stack = self._held.setdefault(ident, [])
        reentrant = any(entry.lock_id == id(lock) for entry in stack)
        new_edges: List[Tuple[str, str]] = []
        if not reentrant:
            seen = set()
            for entry in stack:
                if entry.lock_id == id(lock) or entry.site in seen:
                    continue
                seen.add(entry.site)
                # A same-site edge (two *instances* from one creation site
                # nested) is kept: it is a real ordering hazard.
                new_edges.append((entry.site, lock.site))
        stack.append(_HeldEntry(id(lock), lock.site, reentrant=reentrant))
        with self._guard:
            self.acquisitions += 1
            for source, target in new_edges:
                self._edges.setdefault(source, set()).add(target)
                self._edge_examples.setdefault(
                    (source, target),
                    f"thread {threading.current_thread().name!r}",
                )

    def on_released(self, lock: "TrackedLock") -> None:
        """Record that the current thread released ``lock`` once."""
        stack = self._held.get(threading.get_ident())
        if not stack:
            return
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock_id == id(lock):
                del stack[index]
                return

    def held_sites(self) -> Tuple[str, ...]:
        """Sites of the locks the *current* thread holds, outermost first."""
        stack = self._held.get(threading.get_ident(), [])
        sites = []
        for entry in stack:
            if not entry.reentrant:
                sites.append(entry.site)
        return tuple(sites)

    def record_io(self, event: str, detail: str = "") -> None:
        """Record an I/O event if the current thread holds tracked locks."""
        held = self.held_sites()
        if not held:
            return
        violation = IoViolation(
            event=event,
            held_sites=held,
            thread=threading.current_thread().name,
            detail=detail,
        )
        with self._guard:
            self.io_violations.append(violation)

    # -- reporting --------------------------------------------------------------

    def graph(self) -> Dict[str, Tuple[str, ...]]:
        """The observed lock-order graph: site -> sites acquired under it."""
        with self._guard:
            return {
                source: tuple(sorted(targets))
                for source, targets in sorted(self._edges.items())
            }

    def cycles(self) -> List[Tuple[str, ...]]:
        """Every cycle in the site-level order graph (potential deadlocks).

        Computed as the strongly-connected components with more than one
        node, plus any site with a self-edge (two *instances* from one
        creation site acquired nested — still an ordering hazard).
        Returns ``[]`` when the observed order is acyclic, i.e. a global
        lock order exists.
        """
        graph = self.graph()
        index_counter = [0]
        indices: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        components: List[Tuple[str, ...]] = []

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, child iterator) frames.
            work: List[Tuple[str, Iterator[str]]] = []
            indices[root] = lowlinks[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            work.append((root, iter(graph.get(root, ()))))
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in indices:
                        indices[child] = lowlinks[child] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(child)
                        on_stack[child] = True
                        work.append((child, iter(graph.get(child, ()))))
                        advanced = True
                        break
                    if on_stack.get(child):
                        lowlinks[node] = min(lowlinks[node], indices[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indices[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(tuple(sorted(component)))

        nodes = set(graph) | {t for targets in graph.values() for t in targets}
        for node in sorted(nodes):
            if node not in indices:
                strongconnect(node)
        cycles = [component for component in components if len(component) > 1]
        for node in sorted(nodes):
            if node in graph.get(node, ()):
                cycles.append((node,))
        return cycles

    def report(self) -> Dict[str, Any]:
        """Graph, cycles and I/O violations as one JSON-able summary."""
        return {
            "acquisitions": self.acquisitions,
            "graph": {k: list(v) for k, v in self.graph().items()},
            "cycles": [list(cycle) for cycle in self.cycles()],
            "io_violations": [
                violation.format() for violation in self.io_violations
            ],
        }


class TrackedLock:
    """A ``threading.Lock`` drop-in that reports to a :class:`LockTracker`."""

    _factory = staticmethod(threading.Lock)

    def __init__(self, tracker: LockTracker, site: Optional[str] = None) -> None:
        self._inner = self._factory()
        self._tracker = tracker
        self.site = site if site is not None else _caller_site()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock; record the acquisition on success."""
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._tracker.on_acquired(self)
        return acquired

    def release(self) -> None:
        """Release the underlying lock and pop it from the thread's stack."""
        self._inner.release()
        self._tracker.on_released(self)

    def locked(self) -> bool:
        """Whether the underlying lock is currently held."""
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrackedLock site={self.site!r} locked={self.locked()}>"


class TrackedRLock(TrackedLock):
    """A ``threading.RLock`` drop-in that reports to a :class:`LockTracker`.

    Implements the private ``Condition`` integration surface
    (``_release_save`` / ``_acquire_restore`` / ``_is_owned``) by
    delegating to the wrapped RLock, with the tracker's per-thread stack
    kept consistent across a ``Condition.wait``'s full release.
    """

    _factory = staticmethod(threading.RLock)

    def locked(self) -> bool:
        """Whether the underlying RLock is currently held by any thread."""
        # RLock.locked() exists from 3.12; probe portably before that.
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is not None:
            return inner_locked()
        if self._inner.acquire(blocking=False):  # pragma: no cover - <3.12
            self._inner.release()
            return False
        return True  # pragma: no cover - <3.12

    def _release_save(self) -> Any:
        state = self._inner._release_save()
        # A full release drops every reentrant level at once.
        stack = self._tracker._held.get(threading.get_ident(), [])
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock_id == id(self):
                del stack[index]
        return state

    def _acquire_restore(self, state: Any) -> None:
        self._inner._acquire_restore(state)
        self._tracker.on_acquired(self)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


def _caller_site(depth: int = 2) -> str:
    """``file:line`` of the frame that created a lock, for site aggregation."""
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename.rsplit("/", 1)[-1]
    return f"{filename}:{frame.f_lineno}"


class _ThreadingProxy:
    """A per-module stand-in for ``threading`` with tracked lock factories.

    Everything except ``Lock`` and ``RLock`` delegates to the real
    module, so ``Condition``, ``Event``, ``Thread`` and friends behave
    identically — a ``Condition(self._lock)`` built over a tracked lock
    uses the wrapper's acquire/release and stays tracked.
    """

    def __init__(self, tracker: LockTracker) -> None:
        self._tracker = tracker

    def Lock(self) -> TrackedLock:
        """A tracked ``threading.Lock``, sited at the caller."""
        return TrackedLock(self._tracker, _caller_site())

    def RLock(self) -> TrackedRLock:
        """A tracked ``threading.RLock``, sited at the caller."""
        return TrackedRLock(self._tracker, _caller_site())

    def __getattr__(self, name: str) -> Any:
        return getattr(threading, name)


def _audit_hook(event: str, args: Tuple[Any, ...]) -> None:
    tracker = _ACTIVE_TRACKER
    if tracker is None or not tracker.active:
        return
    if event not in _IO_AUDIT_EVENTS:
        return
    detail = ""
    if args:
        first = args[0]
        if isinstance(first, (str, bytes)):
            detail = first if isinstance(first, str) else first.decode(
                "utf-8", "replace"
            )
    try:
        tracker.record_io(event, detail)
    # The hook runs inside arbitrary I/O calls; a raising audit hook would
    # turn every open() into a crash, so diagnostics must never propagate.
    # lint-ok: no-silent-except
    except Exception:  # pragma: no cover - diagnostics must never break IO
        pass


def _ensure_audit_hook() -> None:
    global _AUDIT_HOOK_INSTALLED
    if not _AUDIT_HOOK_INSTALLED:
        sys.addaudithook(_audit_hook)
        _AUDIT_HOOK_INSTALLED = True


@contextlib.contextmanager
def track_locks(
    modules: Sequence[str] = DEFAULT_TARGET_MODULES,
    track_io: bool = True,
) -> Iterator[LockTracker]:
    """Patch ``modules``' lock creation sites and yield the tracker.

    Within the context, every ``threading.Lock()`` / ``threading.RLock()``
    evaluated *inside one of the target modules* returns a tracked
    wrapper.  Pre-existing lock instances are untouched — callers should
    construct the objects under test inside the window.  On exit the
    modules' real ``threading`` bindings are restored and the tracker is
    deactivated (its collected graph stays readable).

    ``track_io=False`` skips the audit-hook I/O surveillance (the hook
    itself is installed lazily and is inert outside the window either
    way).
    """
    global _ACTIVE_TRACKER
    tracker = LockTracker()
    imported = []
    for name in modules:
        try:
            imported.append(importlib.import_module(name))
        except ImportError as error:
            raise ImportError(
                f"track_locks target module {name!r} is not importable"
            ) from error
    originals = {}
    for module in imported:
        originals[module] = module.__dict__.get("threading")
        module.threading = _ThreadingProxy(tracker)
    previous_tracker = _ACTIVE_TRACKER
    if track_io:
        _ensure_audit_hook()
        _ACTIVE_TRACKER = tracker
    tracker.active = True
    try:
        yield tracker
    finally:
        tracker.active = False
        if track_io:
            _ACTIVE_TRACKER = previous_tracker
        for module, original in originals.items():
            if original is None:
                del module.threading
            else:
                module.threading = original
