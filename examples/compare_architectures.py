"""Compare every registered accelerator architecture on one network.

The architecture registry (:mod:`repro.arch`) declares each accelerator —
SCNN, the dense baselines, the single-operand sparsity ablations, the
Section VI-C granularity variants — as data: a hardware parameterization
bound to a simulator adapter.  This example sweeps *all* of them over
AlexNet with :func:`repro.arch.compare.compare_network` (the same cached,
parallel path behind ``repro compare`` and the service's ``compare``
scenario), then registers a brand-new variant on the fly to show that adding
an architecture is one registration, not a new experiment module.

Run with::

    python examples/compare_architectures.py
"""

from dataclasses import replace

from repro.analysis.reporting import format_table
from repro.arch import (
    ArchitectureSpec,
    available_architectures,
    compare_network,
    default_registry,
    get_architecture,
)
from repro.engine import SimulationEngine


def main() -> None:
    engine = SimulationEngine(cache_dir=False)

    print("Architecture registry catalogue:")
    for spec in default_registry():
        print(f"  {spec.name:14s} {spec.description}")
    print()

    comparison = compare_network(
        "alexnet", available_architectures(), engine=engine
    )
    rows = [
        (
            name,
            f"{comparison.total_cycles(name):,}",
            f"{comparison.speedup(name):.2f}x",
            f"{comparison.energy_ratio(name):.2f}",
        )
        for name in comparison.architectures
    ]
    print(
        format_table(
            ["Architecture", "Cycles", "Speedup vs DCNN", "Energy vs DCNN"],
            rows,
            title="AlexNet across every registered architecture",
        )
    )
    print()

    # Adding a variant is a data change: register a spec, compare it.
    registry = default_registry()
    if "SCNN-A64" not in registry:
        base = get_architecture("SCNN").config
        registry.register(
            ArchitectureSpec(
                name="SCNN-A64",
                config=replace(base, name="SCNN-A64", accumulator_banks=64),
                adapter="cartesian-sparse",
                description="SCNN with doubled accumulator banking",
                baseline="DCNN",
            )
        )
    variant = compare_network("alexnet", ["DCNN", "SCNN", "SCNN-A64"], engine=engine)
    print(
        f"Freshly registered SCNN-A64: "
        f"{variant.speedup('SCNN-A64'):.2f}x speedup vs DCNN "
        f"(SCNN: {variant.speedup('SCNN'):.2f}x) — one registration, "
        f"zero new simulator code."
    )


if __name__ == "__main__":
    main()
