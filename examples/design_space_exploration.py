"""Design-space exploration with the analytical (TimeLoop-style) model.

The paper motivates SCNN's design point (8x8 PEs, 4x4 multipliers, 32
accumulator banks, Kc = 8) with a handful of sensitivity arguments.  This
example reproduces that style of exploration on GoogLeNet:

* PE granularity at fixed chip-wide throughput (Section VI-C),
* accumulator banking (the paper's A = 2 x F x I provisioning rule),
* multiplier-array aspect ratio (F x I),
* output-channel group size Kc,

and closes with a full candidate sweep through the simulation engine —
``dse.sweep(candidates, network, parallel=-1)`` shards the evaluations
across every CPU and caches the finished design points — reporting the
Pareto frontier over (latency, energy, area).

Run with::

    python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro import get_network
from repro.analysis.reporting import format_table
from repro.arch import get_architecture
from repro.timeloop import dse
from repro.timeloop.model import estimate_dense_layer, estimate_scnn_layer

# The paper's design point, consumed from the architecture registry (the
# same spec `repro compare` and the service's `compare` scenario resolve).
SCNN_CONFIG = get_architecture("SCNN").config

WEIGHT_DENSITY = 0.35
ACTIVATION_DENSITY = 0.45


def network_cycles(config) -> float:
    network = get_network("googlenet")
    return sum(
        estimate_scnn_layer(
            spec,
            weight_density=WEIGHT_DENSITY,
            activation_density=ACTIVATION_DENSITY,
            config=config,
        ).cycles
        for spec in network.layers
    )


def main() -> None:
    network = get_network("googlenet")
    dcnn_cycles = sum(estimate_dense_layer(spec).cycles for spec in network.layers)
    print(
        f"GoogLeNet at {WEIGHT_DENSITY:.2f} weight / {ACTIVATION_DENSITY:.2f} "
        f"activation density; dense baseline: {dcnn_cycles:,.0f} cycles\n"
    )

    # --- PE granularity (Section VI-C) ----------------------------------------
    # The granularity variants are registry entries (SCNN, SCNN-16PE,
    # SCNN-4PE), so the sweep below resolves them by name.
    rows = []
    for arch_name in ("SCNN", "SCNN-16PE", "SCNN-4PE"):
        config = get_architecture(arch_name).config
        num_pes = config.num_pes
        cycles = network_cycles(config)
        rows.append(
            (
                f"{num_pes} PEs x {config.multipliers_per_pe} muls",
                f"{cycles:,.0f}",
                f"{dcnn_cycles / cycles:.2f}x",
            )
        )
    print(format_table(["Configuration", "SCNN cycles", "Speedup vs DCNN"], rows,
                       title="PE granularity (1,024 multipliers total)"))
    print()

    # --- accumulator banking ---------------------------------------------------
    rows = []
    for banks in (8, 16, 32, 64):
        config = replace(SCNN_CONFIG, accumulator_banks=banks)
        cycles = network_cycles(config)
        rows.append((banks, f"{cycles:,.0f}", f"{dcnn_cycles / cycles:.2f}x"))
    print(format_table(["Accumulator banks", "SCNN cycles", "Speedup vs DCNN"], rows,
                       title="Accumulator banking (paper provisions A = 2 x F x I = 32)"))
    print()

    # --- multiplier array shape -------------------------------------------------
    rows = []
    for f_width, i_width in ((8, 2), (4, 4), (2, 8), (16, 1)):
        config = replace(
            SCNN_CONFIG,
            multipliers_f=f_width,
            multipliers_i=i_width,
            accumulator_banks=2 * f_width * i_width,
        )
        cycles = network_cycles(config)
        rows.append((f"{f_width}x{i_width}", f"{cycles:,.0f}", f"{dcnn_cycles / cycles:.2f}x"))
    print(format_table(["F x I", "SCNN cycles", "Speedup vs DCNN"], rows,
                       title="Multiplier-array aspect ratio (16 multipliers per PE)"))
    print()

    # --- output-channel group size ----------------------------------------------
    rows = []
    for group_size in (4, 8, 16, 32):
        config = replace(SCNN_CONFIG, output_channel_group=group_size)
        cycles = network_cycles(config)
        accumulator_entries = (
            group_size * 8 * 8  # Kc x (largest 28x28-plane tile incl. halo) approx
        )
        rows.append(
            (group_size, f"{cycles:,.0f}", f"{dcnn_cycles / cycles:.2f}x", accumulator_entries)
        )
    print(format_table(
        ["Kc", "SCNN cycles", "Speedup vs DCNN", "~accumulator entries/group"],
        rows,
        title="Output-channel group size Kc (paper uses 8)",
    ))
    print()

    # --- full candidate sweep through the simulation engine ---------------------
    candidates = [SCNN_CONFIG] + dse.default_candidates()
    points = dse.sweep(candidates, network, parallel=-1)
    frontier = {point.name for point in dse.pareto_frontier(points)}
    rows = [
        (
            point.name,
            f"{cycles:.2f}",
            f"{energy:.2f}",
            f"{area:.2f}",
            "yes" if point.name in frontier else "",
        )
        for point, (_, cycles, energy, area) in zip(points, dse.summarize(points))
    ]
    print(format_table(
        ["Configuration", "Cycles (rel)", "Energy (rel)", "Area (rel)", "Pareto"],
        rows,
        title="Engine-backed sweep, normalised to the paper's design point",
    ))


if __name__ == "__main__":
    main()
