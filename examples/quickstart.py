"""Quickstart: simulate one pruned CNN on SCNN and on the dense baseline.

This example walks the three steps every user of the library goes through:

1. pick a network from the catalogue (AlexNet here),
2. generate a sparse workload for it (pruned weights + ReLU-sparse
   activations at the calibrated per-layer densities),
3. simulate it on SCNN and on the equally-provisioned dense DCNN baseline,
   and look at the speedup, energy and utilization the paper reports.

Run with::

    python examples/quickstart.py
"""

from repro import get_network, simulate_network
from repro.analysis.reporting import format_table


def main() -> None:
    network = get_network("alexnet")
    print(f"Simulating {network.name}: {len(network)} convolutional layers")
    for spec in network:
        print(f"  {spec.describe()}")

    simulation = simulate_network(network, seed=0)

    rows = []
    for layer in simulation.layers:
        rows.append(
            (
                layer.layer_name,
                f"{layer.workload.weight_density:.2f}",
                f"{layer.workload.activation_density:.2f}",
                layer.dcnn.cycles,
                layer.scnn.cycles,
                f"{layer.scnn_speedup:.2f}x",
                f"{layer.scnn.multiplier_utilization:.2f}",
                f"{layer.energy_relative_to_dcnn('SCNN'):.2f}",
            )
        )
    print()
    print(
        format_table(
            [
                "Layer",
                "W density",
                "IA density",
                "DCNN cycles",
                "SCNN cycles",
                "Speedup",
                "Mult util",
                "Energy vs DCNN",
            ],
            rows,
            title="Per-layer results",
        )
    )

    print()
    print(f"Network speedup over DCNN:        {simulation.network_speedup:.2f}x")
    print(f"Oracle (upper bound) speedup:     {simulation.oracle_network_speedup:.2f}x")
    print(
        "Energy relative to DCNN:          "
        f"SCNN {simulation.network_energy_ratio('SCNN'):.2f}, "
        f"DCNN-opt {simulation.network_energy_ratio('DCNN-opt'):.2f}"
    )


if __name__ == "__main__":
    main()
