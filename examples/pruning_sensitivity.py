"""How far do you have to prune before SCNN pays off?

The paper's headline claim is conditional: SCNN beats a comparably
provisioned dense accelerator *once weights and activations are sparse
enough* (below ~85% density each).  This example takes AlexNet, keeps the
activation sparsity fixed at what ReLU produces, and sweeps the pruning level
of the weights — the knob a deployment engineer actually controls — to find
the break-even point for both performance and energy.

Unlike the Figure 7 sweep (which uses the analytical model and scales both
densities), this example builds real pruned tensors for every point and runs
the cycle-level model, so vector fragmentation and load imbalance are fully
captured.

Run with::

    python examples/pruning_sensitivity.py
"""

import numpy as np

from repro import get_network
from repro.analysis.reporting import format_table
from repro.nn.densities import LayerSparsity, network_sparsity
from repro.nn.inference import build_network_workloads
from repro.scnn.simulator import simulate_network

PRUNING_LEVELS = (1.0, 0.8, 0.6, 0.4, 0.2, 0.1)


def main() -> None:
    network = get_network("alexnet")
    baseline = network_sparsity(network)

    rows = []
    for weight_density in PRUNING_LEVELS:
        # Keep each layer's measured activation density, override the weight
        # density with the swept pruning level.
        calibration = {
            name: LayerSparsity(weight_density, sparsity.activation_density)
            for name, sparsity in baseline.items()
        }
        workloads = build_network_workloads(network, calibration, seed=3)
        simulation = simulate_network(network, workloads=workloads)
        rows.append(
            (
                f"{weight_density:.0%}",
                f"{np.mean([w.activation_density for w in workloads]):.2f}",
                f"{simulation.network_speedup:.2f}x",
                f"{simulation.oracle_network_speedup:.2f}x",
                f"{simulation.network_energy_ratio('SCNN'):.2f}",
                f"{simulation.network_energy_ratio('DCNN-opt'):.2f}",
            )
        )

    print(
        format_table(
            [
                "Weights kept",
                "Avg IA density",
                "SCNN speedup",
                "Oracle speedup",
                "SCNN energy vs DCNN",
                "DCNN-opt energy vs DCNN",
            ],
            rows,
            title="AlexNet: SCNN benefit as a function of pruning level",
        )
    )
    print(
        "\nReading the table: with unpruned weights SCNN is no faster than the dense\n"
        "baseline (the activation sparsity alone is not enough to cover the sparse\n"
        "dataflow's overheads); past roughly 60-40% kept weights both the speedup\n"
        "and the energy advantage open up, which is the regime the paper's pruned\n"
        "networks (20-80% kept, Figure 1) live in."
    )


if __name__ == "__main__":
    main()
