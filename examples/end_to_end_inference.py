"""End-to-end inference: activation sparsity flowing from layer to layer.

The previous examples generate each layer's input activations independently.
This one follows the paper's system-level story instead: the compressed
output activations of one layer stay on chip (OARAM) and become the next
layer's input (IARAM), so the sparsity seen by layer N+1 is whatever ReLU
produced at layer N.

A scaled-down sequential CNN (AlexNet-shaped, smaller planes so the
element-exact simulator stays fast) is run twice:

* once with the dense reference (convolution + ReLU + pooling), and
* once layer by layer through the functional SCNN simulator, feeding each
  simulated output forward,

and the example checks that the two agree exactly, reports how the
activation density evolves through the network, and how the on-chip
IARAM/OARAM occupancy tracks it.

Run with::

    python examples/end_to_end_inference.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.nn import ConvLayerSpec
from repro.nn.networks import Network
from repro.nn.inference import run_forward
from repro.nn.pruning import generate_pruned_weights
from repro.nn.reference import max_pool2d
from repro.scnn import SCNN_CONFIG, run_functional_layer
from repro.tensor import CompressedActivations


def tiny_network() -> Network:
    """A 4-layer sequential CNN small enough for element-exact simulation."""
    layers = (
        ConvLayerSpec("conv1", 3, 16, 33, 33, 5, 5, stride=2, padding=0),
        ConvLayerSpec("conv2", 16, 32, 15, 15, 3, 3, stride=1, padding=1),
        ConvLayerSpec("conv3", 32, 32, 7, 7, 3, 3, stride=1, padding=1),
        ConvLayerSpec("conv4", 32, 16, 7, 7, 3, 3, stride=1, padding=1),
    )
    return Network("TinyNet", layers)


def main() -> None:
    network = tiny_network()
    rng = np.random.default_rng(11)
    weight_densities = {"conv1": 0.8, "conv2": 0.45, "conv3": 0.4, "conv4": 0.4}
    weights = [
        generate_pruned_weights(spec, weight_densities[spec.name], rng)
        for spec in network.layers
    ]
    image = np.abs(rng.normal(size=(3, 33, 33)))  # a fully dense "input image"

    # Dense reference pass (conv + ReLU, pooling inserted where extents shrink).
    reference = run_forward(network, weights, image)

    # SCNN functional pass, feeding each compressed output forward.
    rows = []
    current = image
    capacity = SCNN_CONFIG.iaram_bytes * SCNN_CONFIG.num_pes
    for index, (spec, layer_weights) in enumerate(zip(network.layers, weights)):
        result = run_functional_layer(spec, layer_weights, current, SCNN_CONFIG)
        expected = reference[index].output
        assert np.allclose(result.output, expected), f"{spec.name} diverged"
        compressed = CompressedActivations(result.output)
        rows.append(
            (
                spec.name,
                f"{float(np.count_nonzero(current)) / current.size:.2f}",
                f"{result.output_density:.2f}",
                result.cycles,
                f"{result.multiplier_utilization:.2f}",
                f"{compressed.storage_bits() / 8 / 1024:.1f} KB",
                f"{compressed.storage_bits() / 8 / capacity:.1%}",
            )
        )
        # The OARAM of this layer becomes the IARAM of the next (logical swap).
        if index + 1 < len(network.layers):
            next_spec = network.layers[index + 1]
            current = result.output
            if current.shape[1] != next_spec.input_height:
                current = max_pool2d(current, 3, 2)

    print(
        format_table(
            [
                "Layer",
                "IA density",
                "OA density",
                "SCNN cycles",
                "Mult util",
                "Compressed OA",
                "OARAM occupancy",
            ],
            rows,
            title="End-to-end functional inference on TinyNet",
        )
    )
    print(
        "\nEvery simulated layer matched the dense reference bit-for-bit, and the\n"
        "compressed output of each layer fits comfortably in the OARAM before being\n"
        "swapped in as the next layer's IARAM — the no-DRAM steady state the paper\n"
        "relies on for AlexNet and GoogLeNet."
    )


if __name__ == "__main__":
    main()
