"""Anatomy of one sparse layer: compression, dataflow and exact simulation.

This example dissects what SCNN actually does to a single convolutional
layer, using the element-exact functional simulator:

* how the run-length compressed encoding stores the pruned weights and the
  ReLU-sparse activations (and how much storage it saves),
* how the layer is planar-tiled across the 8x8 PE array and how large the
  output halos are,
* how many Cartesian-product issue steps, accumulator-bank conflicts and
  halo partial-sums the layer generates, and
* that the simulated output matches a dense reference convolution exactly.

Run with::

    python examples/sparse_layer_anatomy.py
"""

import numpy as np

from repro.dataflow.tiling import plan_layer
from repro.nn import ConvLayerSpec
from repro.nn.inference import generate_activations
from repro.nn.pruning import generate_pruned_weights
from repro.nn.reference import conv2d_layer, relu
from repro.scnn import SCNN_CONFIG, run_functional_layer
from repro.tensor import CompressedWeights, CompressedActivations


def main() -> None:
    # A GoogLeNet-like 3x3 layer, scaled down so the element-exact simulator
    # runs in a couple of seconds.
    spec = ConvLayerSpec(
        "demo_3x3", in_channels=32, out_channels=32,
        input_height=28, input_width=28,
        filter_height=3, filter_width=3, padding=1,
    )
    rng = np.random.default_rng(7)
    weights = generate_pruned_weights(spec, density=0.35, rng=rng)
    activations = generate_activations(spec, density=0.45, rng=rng)

    print(f"Layer: {spec.describe()}")
    print(f"Dense multiplies: {spec.multiplies:,}")

    # --- compressed-sparse storage --------------------------------------------
    compressed_weights = CompressedWeights(weights, SCNN_CONFIG.output_channel_group)
    compressed_acts = CompressedActivations(activations)
    print("\nCompressed-sparse storage:")
    print(
        f"  weights: density {compressed_weights.density:.2f}, "
        f"{compressed_weights.dense_storage_bits() // 8:,} B dense -> "
        f"{compressed_weights.storage_bits() // 8:,} B compressed "
        f"({compressed_weights.statistics.compression_ratio():.2f}x)"
    )
    print(
        f"  activations: density {compressed_acts.density:.2f}, "
        f"{compressed_acts.dense_storage_bits() // 8:,} B dense -> "
        f"{compressed_acts.storage_bits() // 8:,} B compressed "
        f"({compressed_acts.statistics.compression_ratio():.2f}x)"
    )

    # --- tiling across the PE array ------------------------------------------
    plan = plan_layer(spec, num_pes=SCNN_CONFIG.num_pes,
                      group_size=SCNN_CONFIG.output_channel_group)
    busiest = max(plan.input_tiles, key=lambda tile: tile.size)
    print("\nPlanar tiling:")
    print(f"  PE grid: {plan.pe_rows}x{plan.pe_cols}, output-channel groups: {plan.num_groups}")
    print(f"  largest input tile: {busiest.height}x{busiest.width}")
    print(f"  accumulator entries per group: {plan.accumulator_entries_per_group()}")
    print(f"  halo fraction of the accumulator: {plan.halo_fraction():.2f}")

    # --- element-exact simulation ---------------------------------------------
    result = run_functional_layer(spec, weights, activations)
    reference = relu(conv2d_layer(activations, weights, spec))
    max_error = float(np.abs(result.output - reference).max())
    print("\nFunctional simulation (PT-IS-CP-sparse):")
    print(f"  cycles: {result.cycles:,}")
    print(f"  non-zero multiplies performed: {result.multiplies:,} "
          f"({result.multiplies / spec.multiplies:.2f} of dense)")
    print(f"  multiplier utilization: {result.multiplier_utilization:.2f}")
    print(f"  barrier idle fraction: {result.idle_fraction:.2f}")
    print(f"  halo partial sums exchanged: {result.halo_products:,}")
    conflicts = result.conflict_statistics
    print(f"  accumulator conflicts: avg {conflicts.average_conflict_cycles:.2f} "
          f"extra bank-cycles/step, worst bank load {conflicts.max_bank_load}")
    print(f"  output density after ReLU: {result.output_density:.2f}")
    print(f"  max |simulated - reference|: {max_error:.2e}")
    assert max_error < 1e-9, "functional simulation must match the dense reference"


if __name__ == "__main__":
    main()
