"""Simulation-as-a-service: submit paper experiments through the client SDK.

This example boots the service **in-process** on an ephemeral port (so it
runs standalone, no second terminal needed), then drives it exactly the way
a remote client would — over HTTP, through
:class:`repro.service.ServiceClient`:

* submit a **Figure 8 regeneration** (AlexNet speedup over DCNN) and print
  the per-layer speedups from the returned JSON payload;
* submit a **DSE sweep** and print the Pareto frontier;
* submit the Figure 8 job *again* and show, via ``GET /stats``, that the
  repeat never recomputed — it was served from the engine's
  content-addressed cache.

Against a real deployment the only change is the URL::

    # terminal 1                          # terminal 2
    python -m repro serve --port 8000     client = ServiceClient("http://127.0.0.1:8000")

Run with::

    python examples/service_client.py
"""

from repro.analysis.reporting import format_table
from repro.service import ServiceClient, create_server


def main() -> None:
    with create_server(port=0, num_workers=2) as server:
        client = ServiceClient(server.url)
        print(f"service up at {server.url}: {client.health()}")
        names = ", ".join(entry["name"] for entry in client.scenarios())
        print(f"scenario catalogue: {names}\n")

        # --- Figure 8 regeneration, over the wire ------------------------------
        payload = client.run(
            "fig8", {"networks": ["alexnet"], "seed": 0}, timeout=300
        )
        report = payload["reports"]["AlexNet"]
        rows = [
            (row["label"], f"{row['scnn']:.2f}x", f"{row['oracle']:.2f}x")
            for row in report["rows"]
        ]
        print(format_table(
            ["Layer", "SCNN", "SCNN (oracle)"], rows,
            title="Figure 8 via the service: AlexNet speedup over DCNN",
        ))
        print(
            f"Network speedup: {report['network_speedup']:.2f}x "
            f"(paper: {report['paper_speedup']:.2f}x)\n"
        )

        # --- DSE sweep, over the wire ------------------------------------------
        payload = client.run("dse_sweep", {"network": "alexnet"}, timeout=300)
        frontier = set(payload["pareto_frontier"])
        rows = [
            (
                point["name"],
                f"{point['cycles']:,.0f}",
                f"{point['energy']:.3g}",
                f"{point['area_mm2']:.1f}",
                "yes" if point["name"] in frontier else "",
            )
            for point in payload["points"]
        ]
        print(format_table(
            ["Configuration", "Cycles", "Energy (pJ)", "Area (mm^2)", "Pareto"],
            rows,
            title="DSE sweep via the service: AlexNet candidates",
        ))

        # --- repeat submission: served from the shared cache -------------------
        client.run("fig8", {"networks": ["alexnet"], "seed": 0}, timeout=300)
        stats = client.stats()
        engine = stats["engine"]
        print(
            f"\nAfter resubmitting fig8: engine cache hit-rate "
            f"{engine['hit_rate']:.0%} ({engine['hits']} hits), "
            f"{stats['workers']['jobs_completed']} jobs completed, "
            f"queue depth {stats['queue']['depth']}"
        )


if __name__ == "__main__":
    main()
