"""Reproduce every table and figure of the paper's evaluation in one run.

This driver simply chains the experiment modules (one per table/figure; see
docs/paper_mapping.md for the full figure-to-code map) and prints their
output.  Every comparative artifact routes through the architecture registry
(:mod:`repro.arch`): Figures 8 and 10 are thin views over the DCNN-baselined
comparison sweep, Table IV iterates the registry's ``table4`` specs, and the
closing cross-architecture sweep covers the sparsity ablations too.  Expect
a few minutes of runtime: the Figure 8/9/10 experiments simulate all 72
convolutional layers of AlexNet, GoogLeNet and VGGNet at full size.

Run with::

    python examples/reproduce_paper.py
"""

import time

from repro.arch import available_architectures
from repro.experiments import (
    compare,
    fig1_density,
    fig7_sensitivity,
    fig8_performance,
    fig9_utilization,
    fig10_energy,
    sec6c_granularity,
    sec6d_tiling,
    table1_networks,
    table2_design_params,
    table3_area,
    table4_configs,
)

EXPERIMENTS = (
    ("Table I — network characteristics", table1_networks),
    ("Table II — SCNN design parameters", table2_design_params),
    ("Table III — SCNN PE area breakdown", table3_area),
    ("Table IV — accelerator configurations", table4_configs),
    ("Figure 1 — per-layer density and work reduction", fig1_density),
    ("Figure 7 — sensitivity to density (analytical model)", fig7_sensitivity),
    ("Figure 8 — performance vs DCNN", fig8_performance),
    ("Figure 9 — multiplier utilization and idle time", fig9_utilization),
    ("Figure 10 — energy vs DCNN", fig10_energy),
    ("Section VI-C — PE granularity", sec6c_granularity),
    ("Section VI-D — DRAM tiling for large layers", sec6d_tiling),
    ("Cross-architecture comparison (architecture registry)", compare),
)


def main() -> None:
    started = time.time()
    print(
        "Registered architectures: " + ", ".join(available_architectures())
    )
    for title, module in EXPERIMENTS:
        banner = f"== {title} =="
        print("\n" + "=" * len(banner))
        print(banner)
        print("=" * len(banner) + "\n")
        module.main()
    print(f"\nAll experiments completed in {time.time() - started:.0f} s")


if __name__ == "__main__":
    main()
