"""The workload zoo: register a network at runtime and sweep it everywhere.

Walks the full workload-subsystem flow:

1. list the registered workloads and density profiles,
2. register a *custom* density profile and a *custom* synthetic workload at
   runtime (a data change — no simulator code),
3. run the new workload through the engine and the cross-architecture
   comparison sweep, and show the same network under two density profiles.

Run with::

    PYTHONPATH=src python examples/workload_zoo.py
"""

from repro.arch.compare import compare_network
from repro.engine import SimulationEngine
from repro.workloads import (
    WorkloadSpec,
    available_profiles,
    available_workloads,
    default_registry,
    plain_cnn,
    register_profile,
    uniform_profile,
)

CUSTOM_PROFILE = "uniform-33"
CUSTOM_WORKLOAD = "deep-thin-12"


def main() -> None:
    print("Registered workloads:", ", ".join(available_workloads()))
    print("Registered density profiles:", ", ".join(available_profiles()))

    # A data change: one profile + one spec, and the new name works in every
    # entry point that accepts a network.
    if CUSTOM_PROFILE not in available_profiles():
        register_profile(uniform_profile(0.33))
    registry = default_registry()
    if CUSTOM_WORKLOAD not in registry:
        registry.register(
            WorkloadSpec(
                name=CUSTOM_WORKLOAD,
                builder=lambda: plain_cnn(
                    depth=12, channels=16, extent=16, name="DeepThin-12"
                ),
                density_profile=CUSTOM_PROFILE,
                description="twelve thin layers at a third density",
            )
        )
    print(f"\nRegistered {CUSTOM_WORKLOAD!r} with profile {CUSTOM_PROFILE!r}")

    engine = SimulationEngine(cache_dir=False)
    simulation = engine.run_network(CUSTOM_WORKLOAD)
    print(
        f"{simulation.network.name}: SCNN {simulation.total_cycles('SCNN'):,} "
        f"cycles, speedup over DCNN {simulation.network_speedup:.2f}x"
    )

    comparison = compare_network(
        CUSTOM_WORKLOAD, ["DCNN", "SCNN", "SCNN-SparseW"], engine=engine
    )
    print("\nCross-architecture comparison:")
    for name in comparison.architectures:
        print(
            f"  {name:14s} {comparison.total_cycles(name):>10,} cycles  "
            f"{comparison.speedup(name):5.2f}x  "
            f"energy ratio {comparison.energy_ratio(name):.2f}"
        )

    print("\nSame network, density as a swept axis:")
    for profile in ("dense", "uniform-25"):
        swept = compare_network(
            CUSTOM_WORKLOAD, ["DCNN", "SCNN"], density_profile=profile,
            engine=engine,
        )
        print(
            f"  {profile:12s} SCNN speedup {swept.speedup('SCNN'):5.2f}x, "
            f"energy ratio {swept.energy_ratio('SCNN'):.2f}"
        )


if __name__ == "__main__":
    main()
