"""Tests for the convolutional layer shape algebra (repro.nn.layers)."""

import pytest

from repro.nn.layers import BYTES_PER_VALUE, ConvLayerSpec, LayerShapeError


class TestCatalogueShapes:
    def test_alexnet_conv1(self):
        spec = ConvLayerSpec("conv1", 3, 96, 227, 227, 11, 11, stride=4)
        assert spec.output_shape == (96, 55, 55)
        assert spec.multiplies == 55 * 55 * 96 * 3 * 11 * 11

    def test_alexnet_conv2_grouped(self):
        spec = ConvLayerSpec("conv2", 96, 256, 27, 27, 5, 5, padding=2, groups=2)
        assert spec.output_shape == (256, 27, 27)
        assert spec.weight_shape == (256, 48, 5, 5)
        assert spec.multiplies == 27 * 27 * 256 * 48 * 25

    def test_vgg_conv_same_padding(self):
        spec = ConvLayerSpec("conv3_1", 128, 256, 56, 56, 3, 3, padding=1)
        assert spec.output_shape == (256, 56, 56)

    def test_pointwise(self):
        spec = ConvLayerSpec("1x1", 480, 192, 14, 14, 1, 1)
        assert spec.output_shape == (192, 14, 14)
        assert spec.weight_count == 480 * 192


class TestFootprints:
    def test_weight_bytes_use_two_byte_values(self):
        spec = ConvLayerSpec("x", 4, 8, 10, 10, 3, 3, padding=1)
        assert spec.weight_bytes == spec.weight_count * BYTES_PER_VALUE

    def test_activation_counts(self):
        spec = ConvLayerSpec("x", 4, 8, 10, 12, 3, 3, padding=1)
        assert spec.input_activation_count == 4 * 10 * 12
        assert spec.output_activation_count == 8 * 10 * 12
        assert spec.input_activation_bytes == 2 * spec.input_activation_count


class TestValidation:
    def test_negative_dimension_rejected(self):
        with pytest.raises(LayerShapeError):
            ConvLayerSpec("bad", 0, 8, 10, 10, 3, 3)

    def test_negative_padding_rejected(self):
        with pytest.raises(LayerShapeError):
            ConvLayerSpec("bad", 4, 8, 10, 10, 3, 3, padding=-1)

    def test_groups_must_divide_channels(self):
        with pytest.raises(LayerShapeError):
            ConvLayerSpec("bad", 6, 8, 10, 10, 3, 3, groups=4)

    def test_filter_larger_than_padded_input_rejected(self):
        with pytest.raises(LayerShapeError):
            ConvLayerSpec("bad", 4, 8, 4, 4, 7, 7)

    def test_describe_mentions_name_and_shape(self):
        spec = ConvLayerSpec("conv9", 4, 8, 10, 10, 3, 3, padding=1)
        text = spec.describe()
        assert "conv9" in text
        assert "4x10x10" in text
        assert "8x10x10" in text

    def test_describe_mentions_groups_when_present(self):
        spec = ConvLayerSpec("g", 4, 8, 10, 10, 3, 3, padding=1, groups=2)
        assert "groups=2" in spec.describe()

    def test_frozen(self):
        spec = ConvLayerSpec("x", 4, 8, 10, 10, 3, 3, padding=1)
        with pytest.raises(AttributeError):
            spec.in_channels = 16
