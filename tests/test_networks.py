"""Tests for the network catalogues (repro.nn.networks)."""

import pytest

from repro.nn.networks import (
    Network,
    alexnet,
    available_networks,
    get_network,
    googlenet,
    vggnet,
)
from repro.nn.layers import ConvLayerSpec


class TestAlexNet:
    def test_five_conv_layers(self):
        assert alexnet().conv_layer_count == 5

    def test_total_multiplies_near_paper(self):
        # Paper Table I: 0.69 billion multiplies.
        total = alexnet().total_multiplies
        assert 0.6e9 < total < 0.75e9

    def test_max_weight_footprint_near_paper(self):
        # Paper Table I: 1.73 MB (conv3).
        assert alexnet().max_layer_weight_bytes == pytest.approx(
            1.73 * 1024 * 1024, rel=0.05
        )

    def test_grouped_layers(self):
        network = alexnet()
        assert network.layer("conv2").groups == 2
        assert network.layer("conv3").groups == 1


class TestGoogLeNet:
    def test_fifty_four_inception_layers(self):
        assert googlenet().conv_layer_count == 54

    def test_stem_optional(self):
        assert googlenet(include_stem=True).conv_layer_count == 57

    def test_nine_inception_modules(self):
        modules = googlenet().modules()
        assert len(modules) == 9
        assert modules[0] == "IC_3a"
        assert modules[-1] == "IC_5b"

    def test_each_module_has_six_convolutions(self):
        network = googlenet()
        for module in network.modules():
            assert len(network.layers_in_module(module)) == 6

    def test_total_multiplies_near_paper(self):
        # Paper Table I: 1.1 billion for the 54 inception convolutions.
        total = googlenet().total_multiplies
        assert 0.8e9 < total < 1.4e9

    def test_max_weight_footprint_near_paper(self):
        # Paper Table I: 1.32 MB (inception_5b 3x3).
        assert googlenet().max_layer_weight_bytes == pytest.approx(
            1.32 * 1024 * 1024, rel=0.05
        )

    def test_branch_output_channels_sum_to_module_output(self):
        network = googlenet()
        # inception 3a outputs 256 channels, which is 3b's input count.
        module_3a = network.layers_in_module("IC_3a")
        concat_channels = sum(
            spec.out_channels
            for spec in module_3a
            if spec.name.split("/")[-1] in ("1x1", "3x3", "5x5", "pool_proj")
        )
        assert concat_channels == 256
        assert network.layer("IC_3b/1x1").in_channels == 256


class TestVGGNet:
    def test_thirteen_conv_layers(self):
        assert vggnet().conv_layer_count == 13

    def test_total_multiplies_near_paper(self):
        # Paper Table I: 15.3 billion.
        assert vggnet().total_multiplies == pytest.approx(15.3e9, rel=0.02)

    def test_max_activation_footprint_near_paper(self):
        # Paper Table I: 6.12 MB (conv1_2 input).
        assert vggnet().max_layer_activation_bytes == pytest.approx(
            6.12 * 1024 * 1024, rel=0.05
        )

    def test_all_filters_three_by_three(self):
        for spec in vggnet():
            assert (spec.filter_height, spec.filter_width) == (3, 3)
            assert spec.padding == 1


class TestNetworkContainer:
    def test_get_network_case_insensitive(self):
        assert get_network("AlexNet").name == "AlexNet"
        assert get_network("VGGNET").name == "VGGNet"

    def test_unknown_network_rejected(self):
        with pytest.raises(KeyError):
            get_network("lenet")

    def test_available_networks(self):
        # A sorted live view of the workload registry: the paper trio (plus
        # the stem variant) is always present; synthetics ride along.
        names = available_networks()
        assert names == sorted(names)
        assert {"alexnet", "googlenet", "googlenet-stem", "vggnet"} <= set(names)

    def test_layer_lookup(self):
        network = vggnet()
        assert network.layer("conv4_2").in_channels == 512
        with pytest.raises(KeyError):
            network.layer("missing")

    def test_duplicate_layer_names_rejected(self):
        spec = ConvLayerSpec("dup", 3, 4, 8, 8, 3, 3, padding=1)
        with pytest.raises(ValueError):
            Network("broken", (spec, spec))

    def test_iteration_and_len(self):
        network = alexnet()
        assert len(network) == 5
        assert [spec.name for spec in network] == [
            "conv1", "conv2", "conv3", "conv4", "conv5",
        ]
