"""Tests for planar tiling and the fast non-zero-count queries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow.tiling import (
    activation_phase_nonzeros,
    activation_tile_nonzeros,
    activation_tile_totals,
    pe_grid_for,
    plan_layer,
    weight_group_nonzeros,
    weight_phase_nonzeros,
)
from repro.nn.layers import ConvLayerSpec


def sparse(shape, density, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape) * (rng.random(shape) < density)


class TestPeGrid:
    @pytest.mark.parametrize("num_pes,expected", [(64, (8, 8)), (16, (4, 4)), (4, (2, 2)), (8, (2, 4)), (1, (1, 1))])
    def test_square_ish_grids(self, num_pes, expected):
        assert pe_grid_for(num_pes) == expected

    def test_prime_counts_fall_back_to_row(self):
        assert pe_grid_for(7) == (1, 7)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            pe_grid_for(0)


class TestPlanLayer:
    def test_default_plan_covers_all_pes(self):
        spec = ConvLayerSpec("l", 16, 32, 28, 28, 3, 3, padding=1)
        plan = plan_layer(spec, num_pes=64, group_size=8)
        assert plan.num_pes == 64
        assert len(plan.input_tiles) == 64
        assert sum(tile.size for tile in plan.input_tiles) == 28 * 28
        assert plan.num_groups == 4

    def test_small_plane_leaves_pes_idle(self):
        spec = ConvLayerSpec("small", 16, 32, 7, 7, 3, 3, padding=1)
        plan = plan_layer(spec, num_pes=64, group_size=8)
        occupied = sum(1 for tile in plan.input_tiles if tile.size > 0)
        assert occupied == 49
        assert sum(tile.size for tile in plan.input_tiles) == 49

    def test_output_tiles_cover_output_plane(self):
        spec = ConvLayerSpec("s", 3, 8, 23, 23, 5, 5, stride=2)
        plan = plan_layer(spec, num_pes=16, group_size=8)
        assert sum(tile.size for tile in plan.output_tiles) == (
            spec.output_height * spec.output_width
        )

    def test_halo_widths(self):
        spec = ConvLayerSpec("l", 16, 32, 28, 28, 3, 3, padding=1)
        plan = plan_layer(spec, num_pes=64, group_size=8)
        assert plan.halo_width == 2
        assert plan.halo_height == 2
        assert 0.0 < plan.halo_fraction() < 1.0

    def test_pointwise_has_no_halo(self):
        spec = ConvLayerSpec("p", 16, 32, 14, 14, 1, 1)
        plan = plan_layer(spec, num_pes=64, group_size=8)
        assert plan.halo_width == 0
        assert plan.halo_fraction() == 0.0

    def test_group_channels(self):
        spec = ConvLayerSpec("l", 16, 20, 28, 28, 3, 3, padding=1)
        plan = plan_layer(spec, num_pes=64, group_size=8)
        assert plan.num_groups == 3
        assert plan.group_channels(2) == (16, 17, 18, 19)

    def test_accumulator_entries_positive(self):
        spec = ConvLayerSpec("l", 16, 32, 28, 28, 3, 3, padding=1)
        plan = plan_layer(spec, num_pes=64, group_size=8)
        assert plan.accumulator_entries_per_group() > 8 * 3 * 3


class TestWeightCounts:
    def test_counts_match_dense(self):
        weights = sparse((16, 8, 3, 3), 0.4, seed=1)
        counts = weight_group_nonzeros(weights, 8)
        assert counts.shape == (2, 8)
        assert counts.sum() == np.count_nonzero(weights)
        for group in range(2):
            for c in range(8):
                assert counts[group, c] == np.count_nonzero(
                    weights[group * 8 : (group + 1) * 8, c]
                )

    def test_ragged_group(self):
        weights = sparse((10, 4, 3, 3), 0.5, seed=2)
        counts = weight_group_nonzeros(weights, 8)
        assert counts.shape == (2, 4)
        assert counts.sum() == np.count_nonzero(weights)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            weight_group_nonzeros(np.zeros((4, 4, 3)), 8)
        with pytest.raises(ValueError):
            weight_group_nonzeros(np.zeros((4, 4, 3, 3)), 0)


class TestPhaseCounts:
    def test_stride_one_single_phase(self):
        spec = ConvLayerSpec("l", 4, 8, 12, 12, 3, 3, padding=1)
        plan = plan_layer(spec, num_pes=4, group_size=8)
        activations = sparse(spec.input_shape, 0.5, seed=3)
        phases = activation_phase_nonzeros(activations, plan, stride=1)
        flat = activation_tile_nonzeros(activations, plan)
        assert phases.shape == (4, 4, 1)
        np.testing.assert_array_equal(phases[:, :, 0], flat)

    def test_phases_partition_the_nonzeros(self):
        spec = ConvLayerSpec("s", 3, 8, 23, 23, 5, 5, stride=2)
        plan = plan_layer(spec, num_pes=16, group_size=8)
        activations = sparse(spec.input_shape, 0.6, seed=4)
        phases = activation_phase_nonzeros(activations, plan, stride=2)
        assert phases.shape == (16, 3, 4)
        assert phases.sum() == np.count_nonzero(activations)
        flat = activation_tile_nonzeros(activations, plan)
        np.testing.assert_array_equal(phases.sum(axis=2), flat)

    def test_weight_phases_partition_the_nonzeros(self):
        weights = sparse((8, 3, 5, 5), 0.7, seed=5)
        phases = weight_phase_nonzeros(weights, group_size=8, stride=2, padding=0)
        assert phases.shape == (1, 3, 4)
        assert phases.sum() == np.count_nonzero(weights)
        flat = weight_group_nonzeros(weights, 8)
        np.testing.assert_array_equal(phases.sum(axis=2), flat)

    def test_phase_matching_consistent_with_output_coordinate(self):
        """An activation phase and its matched weight phase always produce a
        stride-aligned output coordinate."""
        from repro.tensor.coordinates import output_coordinate

        stride, pad = 2, 1
        for px in range(stride):
            for py in range(stride):
                act_phase = py * stride + px
                # weights assigned to this phase satisfy r % stride == (px+pad) % stride
                r = (px + pad) % stride
                s = (py + pad) % stride
                coords = output_coordinate(
                    px + 2 * stride, py + 2 * stride, r, s, stride=stride, pad=pad
                )
                assert coords is not None, act_phase

    def test_totals(self):
        spec = ConvLayerSpec("l", 4, 8, 12, 12, 3, 3, padding=1)
        plan = plan_layer(spec, num_pes=4, group_size=8)
        totals = activation_tile_totals(np.zeros(spec.input_shape), plan)
        assert totals.sum() == 4 * 12 * 12


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=4, max_value=30),
    st.sampled_from([1, 2, 3, 4]),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_phase_counts_always_partition(channels, extent, stride, density, seed):
    spec = ConvLayerSpec(
        "p", channels, 8, extent, extent,
        min(3, extent), min(3, extent), stride=stride,
    )
    plan = plan_layer(spec, num_pes=4, group_size=8)
    activations = sparse(spec.input_shape, density, seed=seed)
    phases = activation_phase_nonzeros(activations, plan, stride, spec.padding)
    assert phases.sum() == np.count_nonzero(activations)
    assert (phases >= 0).all()


class TestPlanMemoisation:
    def test_repeated_plans_are_the_same_object(self):
        spec = ConvLayerSpec("memo", 16, 32, 14, 14, 3, 3, padding=1)
        first = plan_layer(spec, num_pes=16, group_size=8)
        second = plan_layer(spec, num_pes=16, group_size=8)
        assert first is second

    def test_distinct_grid_parameters_plan_separately(self):
        spec = ConvLayerSpec("memo2", 16, 32, 14, 14, 3, 3, padding=1)
        assert plan_layer(spec, num_pes=16, group_size=8) is not plan_layer(
            spec, num_pes=4, group_size=8
        )
        assert plan_layer(spec, num_pes=16, group_size=8) is not plan_layer(
            spec, num_pes=16, group_size=4
        )

    def test_explicit_grid_matches_default_factorisation(self):
        spec = ConvLayerSpec("memo3", 16, 32, 14, 14, 3, 3, padding=1)
        rows, cols = pe_grid_for(16)
        assert plan_layer(spec, num_pes=16, group_size=8) is plan_layer(
            spec, num_pes=16, group_size=8, pe_rows=rows, pe_cols=cols
        )
