"""Unit and property-based tests for the run-length compressed encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor.compressed import (
    BlockStatistics,
    CompressedBlock,
    RunLengthIndex,
    compress_block,
    decompress_block,
)


def sparse_block(shape, density, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=shape)
    mask = rng.random(shape) < density
    return values * mask


class TestRunLengthIndex:
    def test_max_run_from_bits(self):
        assert RunLengthIndex((), index_bits=4).max_run == 15
        assert RunLengthIndex((), index_bits=8).max_run == 255

    def test_run_exceeding_width_rejected(self):
        with pytest.raises(ValueError):
            RunLengthIndex((16,), index_bits=4)

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            RunLengthIndex((-1,), index_bits=4)

    def test_storage_bits(self):
        index = RunLengthIndex((0, 3, 15), index_bits=4)
        assert index.storage_bits() == 12
        assert len(index) == 3


class TestCompressBlock:
    def test_dense_block_stores_everything_with_zero_runs(self):
        dense = np.arange(1, 13, dtype=float).reshape(3, 4)
        block = compress_block(dense)
        assert block.stored_elements == 12
        assert block.nonzero_count == 12
        assert all(run == 0 for run in block.index.zero_runs)

    def test_all_zero_block_stores_nothing(self):
        block = compress_block(np.zeros((4, 4)))
        assert block.stored_elements == 0
        assert block.nonzero_count == 0
        np.testing.assert_array_equal(block.decode(), np.zeros((4, 4)))

    def test_long_zero_run_inserts_placeholder(self):
        dense = np.zeros(40)
        dense[0] = 1.0
        dense[36] = 2.0  # gap of 35 zeros > 15 needs placeholders
        block = compress_block(dense, index_bits=4)
        assert block.placeholder_count == 2
        np.testing.assert_array_equal(block.decode(), dense)

    def test_trailing_zeros_cost_nothing(self):
        dense = np.zeros(100)
        dense[3] = 5.0
        block = compress_block(dense)
        assert block.stored_elements == 1
        np.testing.assert_array_equal(block.decode(), dense)

    def test_wider_index_avoids_placeholders(self):
        dense = np.zeros(300)
        dense[0] = 1.0
        dense[250] = 2.0
        narrow = compress_block(dense, index_bits=4)
        wide = compress_block(dense, index_bits=8)
        assert narrow.placeholder_count > 0
        assert wide.placeholder_count == 0

    def test_density_and_ratios(self):
        dense = sparse_block((8, 9), 0.25, seed=3)
        block = compress_block(dense)
        expected_density = np.count_nonzero(dense) / dense.size
        assert block.density == pytest.approx(expected_density)
        assert block.compression_ratio() > 1.0
        assert block.dense_storage_bits() == dense.size * 16

    def test_coordinates_match_nonzero_positions(self):
        dense = sparse_block((5, 7), 0.3, seed=9)
        block = compress_block(dense)
        decoded_positions = {
            coords for coords, value in block.iter_nonzeros()
        }
        expected = set(zip(*np.nonzero(dense)))
        assert decoded_positions == expected

    def test_iter_nonzeros_values(self):
        dense = sparse_block((6, 6), 0.4, seed=2)
        block = compress_block(dense)
        for coords, value in block.iter_nonzeros():
            assert dense[coords] == value


class TestFetchVectors:
    def test_fetch_count_matches_ceil(self):
        dense = sparse_block((10, 10), 0.37, seed=5)
        block = compress_block(dense)
        stored = block.stored_elements
        for width in (1, 2, 3, 4, 8):
            assert block.fetch_count(width) == -(-stored // width)
            vectors = block.fetch_vectors(width)
            assert len(vectors) == block.fetch_count(width)
            assert sum(len(v) for v in vectors) == stored
            # Only the final vector may be partial.
            assert all(len(v) == width for v in vectors[:-1])

    def test_invalid_width_rejected(self):
        block = compress_block(np.ones(4))
        with pytest.raises(ValueError):
            block.fetch_vectors(0)
        with pytest.raises(ValueError):
            block.fetch_count(-1)


class TestCompressedBlockValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            CompressedBlock(
                block_shape=(4,),
                values=np.array([1.0, 2.0]),
                index=RunLengthIndex((0,)),
            )


class TestBlockStatistics:
    def test_accumulates_across_blocks(self):
        stats = BlockStatistics()
        first = compress_block(sparse_block((4, 4), 0.5, seed=1))
        second = compress_block(sparse_block((4, 4), 0.25, seed=2))
        stats.add(first)
        stats.add(second)
        assert stats.blocks == 2
        assert stats.dense_elements == 32
        assert stats.nonzero_elements == first.nonzero_count + second.nonzero_count
        assert 0.0 <= stats.placeholder_overhead <= 1.0
        assert stats.storage_bits() == first.storage_bits() + second.storage_bits()

    def test_empty_statistics(self):
        stats = BlockStatistics()
        assert stats.density == 0.0
        assert stats.placeholder_overhead == 0.0
        assert stats.compression_ratio() == float("inf")


# ----------------------------------------------------------------------------
# Property-based tests: compression must be lossless for any block.
# ----------------------------------------------------------------------------

sparse_arrays = st.integers(min_value=1, max_value=60).flatmap(
    lambda n: st.lists(
        st.one_of(
            st.just(0.0),
            st.floats(
                min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
            ),
        ),
        min_size=n,
        max_size=n,
    )
)


@given(sparse_arrays, st.sampled_from([2, 3, 4, 8]))
@settings(max_examples=200, deadline=None)
def test_roundtrip_is_lossless(values, index_bits):
    dense = np.array(values)
    block = compress_block(dense, index_bits=index_bits)
    np.testing.assert_array_equal(decompress_block(block), dense)


@given(sparse_arrays)
@settings(max_examples=100, deadline=None)
def test_nonzero_count_preserved(values):
    dense = np.array(values)
    block = compress_block(dense)
    assert block.nonzero_count == np.count_nonzero(dense)


@given(sparse_arrays, st.sampled_from([4, 8]))
@settings(max_examples=100, deadline=None)
def test_zero_runs_fit_index_width(values, index_bits):
    dense = np.array(values)
    block = compress_block(dense, index_bits=index_bits)
    assert all(0 <= run <= block.index.max_run for run in block.index.zero_runs)


@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_multidimensional_roundtrip(channels, height, width, density, seed):
    dense = sparse_block((channels, height, width), density, seed=seed)
    block = compress_block(dense)
    np.testing.assert_array_equal(block.decode(), dense)
    assert block.block_shape == dense.shape
