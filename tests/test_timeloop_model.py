"""Tests for the analytical (TimeLoop-style) performance model."""

import pytest

from repro.nn.layers import ConvLayerSpec
from repro.scnn.config import DCNN_CONFIG, SCNN_CONFIG, scnn_with_pe_count
from repro.scnn.cycles import simulate_layer_cycles
from repro.scnn.dcnn import simulate_dcnn_layer
from repro.timeloop.model import (
    estimate_dense_layer,
    estimate_oracle_cycles,
    estimate_scnn_layer,
)

from _helpers import make_workload


@pytest.fixture
def inception_spec():
    return ConvLayerSpec("IC/3x3", 96, 128, 28, 28, 3, 3, padding=1)


class TestAnalyticalScnnEstimate:
    def test_monotone_in_density(self, inception_spec):
        cycles = [
            estimate_scnn_layer(
                inception_spec, weight_density=d, activation_density=d
            ).cycles
            for d in (0.1, 0.3, 0.5, 0.7, 1.0)
        ]
        assert cycles == sorted(cycles)

    def test_close_to_cycle_model_at_matching_density(self, inception_spec):
        workload = make_workload(inception_spec, 0.4, 0.5, seed=2)
        measured = simulate_layer_cycles(
            inception_spec, workload.weights, workload.activations
        )
        estimate = estimate_scnn_layer(
            inception_spec,
            weight_density=workload.weight_density,
            activation_density=workload.activation_density,
        )
        assert estimate.cycles == pytest.approx(measured.cycles, rel=0.15)

    def test_fragmentation_penalty_at_low_density(self, inception_spec):
        """E[ceil] exceeds ceil(E): cycles shrink slower than the work does."""
        dense = estimate_scnn_layer(
            inception_spec, weight_density=1.0, activation_density=1.0
        )
        sparse = estimate_scnn_layer(
            inception_spec, weight_density=0.1, activation_density=0.1
        )
        work_ratio = 0.01
        cycle_ratio = sparse.cycles / dense.cycles
        assert cycle_ratio > work_ratio
        assert sparse.multiplier_utilization < dense.multiplier_utilization

    def test_invalid_densities_rejected(self, inception_spec):
        with pytest.raises(ValueError):
            estimate_scnn_layer(
                inception_spec, weight_density=0.0, activation_density=0.5
            )
        with pytest.raises(ValueError):
            estimate_scnn_layer(
                inception_spec, weight_density=0.5, activation_density=1.5
            )

    def test_strided_layer_supported(self):
        spec = ConvLayerSpec("conv1", 3, 96, 227, 227, 11, 11, stride=4)
        estimate = estimate_scnn_layer(
            spec, weight_density=0.84, activation_density=1.0
        )
        dense = estimate_dense_layer(spec)
        # AlexNet conv1 is roughly throughput-neutral between SCNN and DCNN.
        assert 0.5 < dense.cycles / estimate.cycles < 2.0

    def test_pe_count_tradeoff_on_pointwise_layer(self):
        """On GoogLeNet's 1x1 layers a few large PEs cannot fill their wide
        weight vectors (only Kc non-zero weights per block), so the 64-PE
        configuration wins — the intra-PE fragmentation effect of Section VI-C."""
        spec = ConvLayerSpec("IC/1x1", 480, 192, 14, 14, 1, 1)
        many = estimate_scnn_layer(
            spec, weight_density=0.35, activation_density=0.45,
            config=scnn_with_pe_count(64),
        )
        few = estimate_scnn_layer(
            spec, weight_density=0.35, activation_density=0.45,
            config=scnn_with_pe_count(4),
        )
        assert many.cycles < few.cycles
        assert many.multiplier_utilization > few.multiplier_utilization


class TestAnalyticalDenseEstimate:
    def test_matches_dcnn_simulator(self, inception_spec):
        estimate = estimate_dense_layer(inception_spec)
        simulated = simulate_dcnn_layer(inception_spec, DCNN_CONFIG)
        assert estimate.cycles == simulated.cycles
        assert estimate.products == simulated.multiplies

    def test_density_independent(self, inception_spec):
        assert (
            estimate_dense_layer(inception_spec).cycles
            == estimate_dense_layer(inception_spec).cycles
        )


class TestOracleEstimate:
    def test_matches_work_over_throughput(self, inception_spec):
        cycles = estimate_oracle_cycles(
            inception_spec, weight_density=0.5, activation_density=0.5
        )
        expected = inception_spec.multiplies * 0.25 / SCNN_CONFIG.total_multipliers
        assert cycles == pytest.approx(expected, rel=1e-6)

    def test_oracle_below_scnn_estimate(self, inception_spec):
        oracle = estimate_oracle_cycles(
            inception_spec, weight_density=0.4, activation_density=0.4
        )
        scnn = estimate_scnn_layer(
            inception_spec, weight_density=0.4, activation_density=0.4
        ).cycles
        assert oracle <= scnn


class TestPaperLandmarks:
    """The analytical model must reproduce the paper's Figure 7a landmarks."""

    def _googlenet_ratio(self, density):
        from repro.nn.networks import googlenet

        network = googlenet()
        scnn = sum(
            estimate_scnn_layer(
                spec, weight_density=density, activation_density=density
            ).cycles
            for spec in network.layers
        )
        dcnn = sum(estimate_dense_layer(spec).cycles for spec in network.layers)
        return scnn / dcnn

    def test_dense_case_scnn_slower_than_dcnn(self):
        # Paper: at 100% density SCNN reaches ~79% of DCNN performance.
        ratio = self._googlenet_ratio(1.0)
        assert 1.1 < ratio < 1.6

    def test_crossover_below_85_percent(self):
        assert self._googlenet_ratio(0.85) > 0.95
        assert self._googlenet_ratio(0.7) < 1.0

    def test_large_win_at_ten_percent(self):
        # Paper: ~24x at 10% density; the model must land in the same regime.
        assert 1.0 / self._googlenet_ratio(0.1) > 12.0
