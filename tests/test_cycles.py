"""Tests for the vectorised cycle-level model (repro.scnn.cycles).

The strongest check is agreement with the element-exact functional simulator:
both walk the same Cartesian-product issue steps, so on any layer the two
must report the same busy-cycle and total-cycle counts.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.nn.inference import generate_activations
from repro.nn.layers import ConvLayerSpec
from repro.nn.pruning import generate_pruned_weights
from repro.scnn.config import SCNN_CONFIG, scnn_with_pe_count
from repro.scnn.cycles import simulate_layer_cycles
from repro.scnn.functional import run_functional_layer

from _helpers import make_workload


def cycle_and_functional(spec, wd=0.4, ad=0.5, seed=0, config=SCNN_CONFIG):
    workload = make_workload(spec, wd, ad, seed)
    fast = simulate_layer_cycles(spec, workload.weights, workload.activations, config)
    exact = run_functional_layer(spec, workload.weights, workload.activations, config)
    return fast, exact


class TestAgreementWithFunctionalSimulator:
    def test_same_padded_3x3(self, small_spec):
        fast, exact = cycle_and_functional(small_spec)
        assert fast.cycles == exact.cycles
        assert fast.busy_cycles == int(exact.busy_cycles.sum())

    def test_strided_layer(self, strided_spec):
        fast, exact = cycle_and_functional(strided_spec, 0.6, 0.8)
        assert fast.cycles == exact.cycles

    def test_grouped_layer(self, grouped_spec):
        fast, exact = cycle_and_functional(grouped_spec, 0.45, 0.5)
        assert fast.cycles == exact.cycles

    def test_pointwise_layer(self, pointwise_spec):
        fast, exact = cycle_and_functional(pointwise_spec, 0.3, 0.35)
        assert fast.cycles == exact.cycles

    def test_dense_operands(self, small_spec):
        fast, exact = cycle_and_functional(small_spec, 1.0, 1.0)
        assert fast.cycles == exact.cycles

    @pytest.mark.parametrize("num_pes", [4, 16])
    def test_other_pe_counts(self, small_spec, num_pes):
        config = scnn_with_pe_count(num_pes)
        fast, exact = cycle_and_functional(small_spec, config=config)
        assert fast.cycles == exact.cycles

    def test_utilization_close_to_functional(self, small_spec):
        fast, exact = cycle_and_functional(small_spec)
        # The fast model counts boundary products the functional simulator
        # skips, so utilization agrees only approximately.
        assert fast.busy_utilization == pytest.approx(
            exact.multiplier_utilization, abs=0.1
        )


class TestCycleModelBehaviour:
    def test_sparser_operands_run_faster(self, small_spec):
        dense = cycle_and_functional(small_spec, 1.0, 1.0)[0]
        sparse = cycle_and_functional(small_spec, 0.2, 0.2)[0]
        assert sparse.cycles < dense.cycles
        assert sparse.products < dense.products

    def test_products_track_density(self, small_spec):
        workload = make_workload(small_spec, 0.5, 0.5)
        result = simulate_layer_cycles(
            small_spec, workload.weights, workload.activations
        )
        # The Cartesian product only pairs non-zeros: products scale with the
        # product of densities (within fragmentation/boundary slack).
        expected = small_spec.multiplies * 0.25
        assert result.products == pytest.approx(expected, rel=0.2)

    def test_cycles_at_least_products_over_peak(self, small_workload):
        result = simulate_layer_cycles(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        lower_bound = result.products / SCNN_CONFIG.total_multipliers
        assert result.cycles >= lower_bound

    def test_idle_fraction_bounds(self, pointwise_workload):
        result = simulate_layer_cycles(
            pointwise_workload.spec,
            pointwise_workload.weights,
            pointwise_workload.activations,
        )
        assert 0.0 <= result.idle_fraction < 1.0

    def test_small_plane_has_low_utilization(self):
        """7x7 planes cannot fill an 8x8 PE array — the paper's late-layer effect."""
        small_plane = ConvLayerSpec("late", 64, 32, 7, 7, 1, 1)
        big_plane = ConvLayerSpec("early", 64, 32, 28, 28, 1, 1)
        small_result = cycle_and_functional(small_plane, 0.35, 0.35, seed=3)[0]
        rng = np.random.default_rng(3)
        weights = generate_pruned_weights(big_plane, 0.35, rng)
        acts = generate_activations(big_plane, 0.35, rng)
        big_result = simulate_layer_cycles(big_plane, weights, acts)
        assert small_result.multiplier_utilization < big_result.multiplier_utilization

    def test_fewer_accumulator_banks_add_stalls(self, small_workload):
        default = simulate_layer_cycles(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        starved = simulate_layer_cycles(
            small_workload.spec,
            small_workload.weights,
            small_workload.activations,
            replace(SCNN_CONFIG, accumulator_banks=4),
        )
        assert starved.cycles > default.cycles
        assert starved.conflict_stall_cycles > 0
        assert default.conflict_stall_cycles == 0

    def test_group_overheads_add_cycles(self, small_workload):
        base = simulate_layer_cycles(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        overhead = simulate_layer_cycles(
            small_workload.spec,
            small_workload.weights,
            small_workload.activations,
            replace(SCNN_CONFIG, barrier_overhead_cycles=32, drain_overhead_cycles=16),
        )
        assert overhead.cycles > base.cycles

    def test_nonzero_counts_reported(self, small_workload):
        result = simulate_layer_cycles(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        assert result.weight_nonzeros == np.count_nonzero(small_workload.weights)
        assert result.activation_nonzeros == np.count_nonzero(
            small_workload.activations
        )

    def test_group_cycles_sum_to_total(self, small_workload):
        result = simulate_layer_cycles(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        assert int(result.group_cycles.sum()) == result.cycles
