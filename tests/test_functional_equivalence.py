"""The functional PT-IS-CP-sparse simulator must match the dense reference.

This is the core correctness guarantee of the reproduction: the sparse
Cartesian-product dataflow (compressed operands, per-PE tiling, output halos,
banked accumulation) computes exactly the same convolution as a dense
reference implementation, for every layer shape the catalogues use.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.inference import generate_activations
from repro.nn.layers import ConvLayerSpec
from repro.nn.pruning import generate_pruned_weights
from repro.nn.reference import conv2d_layer, relu
from repro.scnn.config import SCNN_CONFIG, scnn_with_pe_count
from repro.scnn.functional import run_functional_layer

from _helpers import make_workload


def assert_layer_matches_reference(spec, weight_density=0.4, activation_density=0.5,
                                   seed=0, config=SCNN_CONFIG, apply_relu=True):
    workload = make_workload(spec, weight_density, activation_density, seed)
    result = run_functional_layer(
        spec, workload.weights, workload.activations, config, apply_relu=apply_relu
    )
    reference = conv2d_layer(workload.activations, workload.weights, spec)
    if apply_relu:
        reference = relu(reference)
    np.testing.assert_allclose(result.output, reference, atol=1e-9)
    return result


class TestEquivalenceAcrossLayerShapes:
    def test_same_padded_3x3(self, small_spec):
        assert_layer_matches_reference(small_spec)

    def test_strided_unpadded(self, strided_spec):
        assert_layer_matches_reference(strided_spec, 0.6, 0.8)

    def test_grouped(self, grouped_spec):
        assert_layer_matches_reference(grouped_spec, 0.45, 0.5)

    def test_pointwise(self, pointwise_spec):
        assert_layer_matches_reference(pointwise_spec, 0.3, 0.35)

    def test_five_by_five_padded(self):
        spec = ConvLayerSpec("5x5", 4, 8, 14, 14, 5, 5, padding=2)
        assert_layer_matches_reference(spec)

    def test_alexnet_conv1_shape_scaled_down(self):
        # Same stride/filter structure as AlexNet conv1, smaller plane.
        spec = ConvLayerSpec("conv1_like", 3, 8, 35, 35, 11, 11, stride=4)
        assert_layer_matches_reference(spec, 0.84, 1.0)

    def test_stem_like_7x7_stride2(self):
        spec = ConvLayerSpec("stem_like", 3, 8, 21, 21, 7, 7, stride=2, padding=3)
        assert_layer_matches_reference(spec, 0.7, 1.0)

    def test_fully_dense_operands(self, small_spec):
        assert_layer_matches_reference(small_spec, 1.0, 1.0)

    def test_extremely_sparse_operands(self, small_spec):
        assert_layer_matches_reference(small_spec, 0.05, 0.05)

    def test_without_relu(self, small_spec):
        result = assert_layer_matches_reference(small_spec, apply_relu=False)
        # Pre-activation outputs may be negative.
        assert (result.output < 0).any()

    def test_plane_smaller_than_pe_grid(self):
        spec = ConvLayerSpec("tiny_plane", 16, 16, 5, 5, 3, 3, padding=1)
        assert_layer_matches_reference(spec, 0.4, 0.4)

    def test_single_input_channel(self):
        spec = ConvLayerSpec("c1", 1, 8, 12, 12, 3, 3, padding=1)
        assert_layer_matches_reference(spec)

    def test_non_square_plane(self):
        spec = ConvLayerSpec("rect", 4, 8, 10, 18, 3, 3, padding=1)
        assert_layer_matches_reference(spec)


class TestEquivalenceAcrossConfigurations:
    @pytest.mark.parametrize("num_pes", [4, 16, 64])
    def test_pe_count_does_not_change_results(self, small_spec, num_pes):
        workload = make_workload(small_spec)
        reference = relu(conv2d_layer(workload.activations, workload.weights, small_spec))
        config = scnn_with_pe_count(num_pes)
        result = run_functional_layer(
            small_spec, workload.weights, workload.activations, config
        )
        np.testing.assert_allclose(result.output, reference, atol=1e-9)

    def test_group_size_does_not_change_results(self, small_spec):
        from dataclasses import replace

        workload = make_workload(small_spec)
        reference = relu(conv2d_layer(workload.activations, workload.weights, small_spec))
        for group_size in (2, 4, 16):
            config = replace(SCNN_CONFIG, output_channel_group=group_size)
            result = run_functional_layer(
                small_spec, workload.weights, workload.activations, config
            )
            np.testing.assert_allclose(result.output, reference, atol=1e-9)


class TestFunctionalStatistics:
    def test_multiplies_match_nonzero_products(self, small_spec):
        from repro.scnn.oracle import nonzero_multiplies

        workload = make_workload(small_spec)
        result = run_functional_layer(small_spec, workload.weights, workload.activations)
        assert result.multiplies == nonzero_multiplies(
            small_spec, workload.weights, workload.activations
        )

    def test_utilization_between_zero_and_one(self, small_workload):
        result = run_functional_layer(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        assert 0.0 < result.multiplier_utilization <= 1.0
        assert 0.0 <= result.idle_fraction < 1.0

    def test_cycles_positive_and_bounded(self, small_workload):
        result = run_functional_layer(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        assert result.cycles > 0
        # No PE can be busy longer than the layer takes.
        assert (result.busy_cycles <= result.cycles).all()

    def test_output_density_reported(self, small_workload):
        result = run_functional_layer(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        expected = np.count_nonzero(result.output) / result.output.size
        assert result.output_density == pytest.approx(expected)

    def test_shape_validation(self, small_spec, rng):
        with pytest.raises(ValueError):
            run_functional_layer(small_spec, np.zeros((1, 1, 3, 3)), np.zeros(small_spec.input_shape))
        with pytest.raises(ValueError):
            run_functional_layer(small_spec, np.zeros(small_spec.weight_shape), np.zeros((1, 4, 4)))


@given(
    st.integers(min_value=1, max_value=4),     # input channels
    st.integers(min_value=1, max_value=8),     # output channels
    st.integers(min_value=6, max_value=16),    # plane extent
    st.sampled_from([1, 3]),                   # filter size
    st.sampled_from([(1, 0), (1, 1), (2, 0)]),  # (stride, padding)
    st.floats(min_value=0.05, max_value=1.0),  # weight density
    st.floats(min_value=0.05, max_value=1.0),  # activation density
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_functional_equivalence_property(
    channels, filters, extent, filt, stride_pad, wd, ad, seed
):
    stride, pad = stride_pad
    if extent + 2 * pad < filt:
        return
    spec = ConvLayerSpec("prop", channels, filters, extent, extent, filt, filt,
                         stride=stride, padding=pad)
    rng = np.random.default_rng(seed)
    weights = generate_pruned_weights(spec, wd, rng)
    activations = generate_activations(spec, ad, rng)
    result = run_functional_layer(spec, weights, activations)
    reference = relu(conv2d_layer(activations, weights, spec))
    np.testing.assert_allclose(result.output, reference, atol=1e-9)
