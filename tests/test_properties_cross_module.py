"""Cross-module property-based tests.

These hypothesis tests tie the layers of the system together: whatever layer
shape, density and configuration are drawn, the compressed formats, the
dataflow counts, the functional simulator, the cycle model and the oracle
must stay mutually consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow.tiling import (
    activation_phase_nonzeros,
    plan_layer,
    weight_phase_nonzeros,
)
from repro.nn.inference import generate_activations
from repro.nn.layers import ConvLayerSpec
from repro.nn.pruning import generate_pruned_weights
from repro.scnn.config import SCNN_CONFIG
from repro.scnn.cycles import simulate_layer_cycles
from repro.scnn.dcnn import simulate_dcnn_layer
from repro.scnn.oracle import nonzero_multiplies, oracle_cycles
from repro.tensor.formats import ActivationTileSet, CompressedWeights


layer_specs = st.builds(
    ConvLayerSpec,
    name=st.just("prop"),
    in_channels=st.integers(min_value=1, max_value=8),
    out_channels=st.integers(min_value=1, max_value=16),
    input_height=st.integers(min_value=7, max_value=20),
    input_width=st.integers(min_value=7, max_value=20),
    filter_height=st.sampled_from([1, 3]),
    filter_width=st.sampled_from([1, 3]),
    stride=st.sampled_from([1, 2]),
    padding=st.sampled_from([0, 1]),
)

densities = st.floats(min_value=0.05, max_value=1.0)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def build(spec, wd, ad, seed):
    rng = np.random.default_rng(seed)
    return (
        generate_pruned_weights(spec, wd, rng),
        generate_activations(spec, ad, rng),
    )


@given(layer_specs, densities, densities, seeds)
@settings(max_examples=30, deadline=None)
def test_compressed_counts_agree_with_tiling_counts(spec, wd, ad, seed):
    """The compressed containers and the fast count queries see the same non-zeros."""
    weights, activations = build(spec, wd, ad, seed)
    plan = plan_layer(spec, num_pes=SCNN_CONFIG.num_pes, group_size=8)

    compressed_weights = CompressedWeights(weights, group_size=8)
    phase_counts = weight_phase_nonzeros(weights, 8, spec.stride, spec.padding)
    assert compressed_weights.nonzero_counts().sum() == phase_counts.sum()

    rows, cols = plan.pe_rows, plan.pe_cols
    tiles = ActivationTileSet(
        activations, min(rows, spec.input_height), min(cols, spec.input_width)
    )
    act_counts = activation_phase_nonzeros(activations, plan, spec.stride, spec.padding)
    assert tiles.nonzero_counts().sum() == act_counts.sum()
    assert act_counts.sum() == np.count_nonzero(activations)


@given(layer_specs, densities, densities, seeds)
@settings(max_examples=25, deadline=None)
def test_cycle_model_invariants(spec, wd, ad, seed):
    """Cycle-model outputs respect the structural bounds of the architecture."""
    weights, activations = build(spec, wd, ad, seed)
    result = simulate_layer_cycles(spec, weights, activations)

    # Work accounting: the cycle model's product count includes boundary
    # pairs whose output falls off the plane, so it is bounded below by the
    # oracle's exact count and above by the issued multiplier slots.
    exact = nonzero_multiplies(spec, weights, activations)
    assert exact <= result.products
    assert result.products <= result.issue_steps * SCNN_CONFIG.multipliers_per_pe

    # Throughput accounting: cycles are bounded below by products / peak and
    # utilization never exceeds 1.
    assert result.cycles * SCNN_CONFIG.total_multipliers >= result.products
    assert 0.0 <= result.multiplier_utilization <= 1.0
    assert 0.0 <= result.busy_utilization <= 1.0
    assert 0.0 <= result.idle_fraction <= 1.0

    # The oracle is a true lower bound.
    assert oracle_cycles(spec, weights, activations, products=exact) <= max(
        result.cycles, 1
    )


@given(layer_specs, densities, densities, seeds)
@settings(max_examples=20, deadline=None)
def test_sparse_never_does_more_issue_steps_than_dense(spec, wd, ad, seed):
    """Sparsifying operands can only reduce the SCNN issue-step count."""
    rng = np.random.default_rng(seed)
    dense_weights = generate_pruned_weights(spec, 1.0, rng)
    dense_acts = generate_activations(spec, 1.0, rng)
    sparse_weights = generate_pruned_weights(spec, wd, rng)
    sparse_acts = generate_activations(spec, ad, rng)

    dense_result = simulate_layer_cycles(spec, dense_weights, dense_acts)
    sparse_result = simulate_layer_cycles(spec, sparse_weights, sparse_acts)
    assert sparse_result.issue_steps <= dense_result.issue_steps
    assert sparse_result.products <= dense_result.products


@given(layer_specs)
@settings(max_examples=30, deadline=None)
def test_dense_baseline_is_shape_only(spec):
    """The DCNN baseline depends only on the layer shape."""
    first = simulate_dcnn_layer(spec)
    second = simulate_dcnn_layer(spec)
    assert first.cycles == second.cycles
    assert first.multiplies == spec.multiplies
    assert first.cycles * 1024 >= spec.multiplies  # cannot beat peak throughput
