"""Tests for the post-processing unit model (repro.scnn.ppu)."""

import numpy as np
import pytest

from repro.scnn.config import SCNN_CONFIG
from repro.scnn.ppu import apply_ppu


@pytest.fixture
def pre_activation(rng):
    """A plausible accumulated output: zero-mean, so ReLU clamps about half."""
    return rng.normal(size=(16, 14, 14))


class TestApplyPpu:
    def test_relu_applied(self, pre_activation):
        result = apply_ppu(pre_activation)
        assert (result.output >= 0).all()
        np.testing.assert_allclose(result.output, np.maximum(pre_activation, 0.0))

    def test_relu_can_be_disabled(self, pre_activation):
        result = apply_ppu(pre_activation, apply_relu=False)
        np.testing.assert_allclose(result.output, pre_activation)
        assert result.output_density > 0.99

    def test_relu_creates_sparsity(self, pre_activation):
        result = apply_ppu(pre_activation)
        assert 0.3 < result.output_density < 0.7

    def test_pooling_shrinks_plane(self, pre_activation):
        result = apply_ppu(pre_activation, pool_window=2, pool_stride=2)
        assert result.output.shape == (16, 7, 7)

    def test_pooling_raises_density(self, pre_activation):
        unpooled = apply_ppu(pre_activation)
        pooled = apply_ppu(pre_activation, pool_window=2, pool_stride=2)
        assert pooled.output_density >= unpooled.output_density

    def test_dropout_scales_values(self, pre_activation):
        base = apply_ppu(pre_activation)
        scaled = apply_ppu(pre_activation, dropout_keep=0.5)
        np.testing.assert_allclose(scaled.output, base.output * 0.5)
        assert scaled.output_density == pytest.approx(base.output_density)

    def test_compression_accounting(self, pre_activation):
        result = apply_ppu(pre_activation)
        assert result.compressed_bits < result.dense_bits
        assert result.compression_ratio > 1.0
        assert result.oaram_values_written >= np.count_nonzero(result.output)

    def test_drain_cycles_scale_with_throughput(self, pre_activation):
        slow = apply_ppu(pre_activation, values_per_cycle=1)
        fast = apply_ppu(pre_activation, values_per_cycle=8)
        assert slow.drain_cycles > fast.drain_cycles

    def test_small_output_fits_in_oaram(self, pre_activation):
        result = apply_ppu(pre_activation)
        assert result.fits_in_oaram

    def test_huge_output_does_not_fit(self, rng):
        huge = rng.normal(size=(64, 224, 224))
        result = apply_ppu(huge, config=SCNN_CONFIG)
        assert not result.fits_in_oaram

    def test_invalid_inputs_rejected(self, pre_activation):
        with pytest.raises(ValueError):
            apply_ppu(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            apply_ppu(pre_activation, dropout_keep=0.0)
        with pytest.raises(ValueError):
            apply_ppu(pre_activation, values_per_cycle=0)

    def test_matches_functional_simulator_output(self, small_workload):
        """PPU(ReLU) over the pre-activation output equals the simulator's output."""
        from repro.scnn.functional import run_functional_layer

        sim = run_functional_layer(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        result = apply_ppu(sim.output_pre_activation)
        np.testing.assert_allclose(result.output, sim.output, atol=1e-12)
        assert result.output_density == pytest.approx(sim.output_density)
