"""Tests for workload construction and forward inference (repro.nn.inference)."""

import numpy as np
import pytest

from repro.nn.densities import LayerSparsity, network_sparsity
from repro.nn.inference import (
    build_layer_workload,
    build_network_workloads,
    generate_activations,
    run_forward,
)
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network, alexnet, googlenet, vggnet
from repro.nn.pruning import generate_pruned_weights


@pytest.fixture
def spec():
    return ConvLayerSpec("t", 6, 12, 20, 20, 3, 3, padding=1)


class TestGenerateActivations:
    def test_density_hit_exactly(self, spec, rng):
        for density in (0.1, 0.3, 0.5, 0.9):
            acts = generate_activations(spec, density, rng)
            measured = np.count_nonzero(acts) / acts.size
            assert measured == pytest.approx(density, abs=2.0 / acts.size)

    def test_fully_dense(self, spec, rng):
        acts = generate_activations(spec, 1.0, rng)
        assert np.count_nonzero(acts) == acts.size

    def test_values_non_negative(self, spec, rng):
        acts = generate_activations(spec, 0.4, rng)
        assert (acts >= 0).all()

    def test_shape_matches_spec(self, spec, rng):
        assert generate_activations(spec, 0.5, rng).shape == spec.input_shape

    def test_spatial_correlation_present(self, spec, rng):
        """Non-zeros should cluster: neighbouring pixels agree more often than
        independent Bernoulli draws would."""
        acts = generate_activations(spec, 0.5, rng, correlation_radius=2)
        mask = (acts != 0).astype(float)
        horizontal_agreement = float((mask[:, :, :-1] == mask[:, :, 1:]).mean())
        assert horizontal_agreement > 0.55

    def test_invalid_density_rejected(self, spec, rng):
        with pytest.raises(ValueError):
            generate_activations(spec, 0.0, rng)


class TestLayerWorkload:
    def test_densities_match_targets(self, spec, rng):
        workload = build_layer_workload(
            "alexnet", spec, LayerSparsity(0.4, 0.6), rng
        )
        assert workload.weight_density == pytest.approx(0.4, abs=0.01)
        assert workload.activation_density == pytest.approx(0.6, abs=0.01)

    def test_nonzero_multiplies_bounded_by_dense(self, spec, rng):
        workload = build_layer_workload("alexnet", spec, LayerSparsity(0.4, 0.6), rng)
        assert 0 < workload.nonzero_multiplies < workload.dense_multiplies

    def test_nonzero_multiplies_exact_on_tiny_layer(self, rng):
        tiny = ConvLayerSpec("tiny", 1, 1, 3, 3, 3, 3)
        weights = np.ones(tiny.weight_shape)
        weights[0, 0, 0, 0] = 0.0
        activations = np.ones(tiny.input_shape)
        activations[0, 1, 1] = 0.0
        from repro.nn.inference import LayerWorkload

        workload = LayerWorkload(tiny, weights, activations, LayerSparsity(0.9, 0.9))
        # Single output position; products = nonzero pairs at aligned offsets.
        # 9 positions, weight (0,0) is zero and activation (1,1) is zero ->
        # 9 - 2 = 7 products (they do not overlap).
        assert workload.nonzero_multiplies == 7


class TestBuildNetworkWorkloads:
    def test_one_workload_per_layer(self):
        network = alexnet()
        workloads = build_network_workloads(network, seed=0)
        assert [w.spec.name for w in workloads] == [l.name for l in network.layers]

    def test_reproducible_across_calls(self):
        network = alexnet()
        first = build_network_workloads(network, seed=7)
        second = build_network_workloads(network, seed=7)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.weights, b.weights)
            np.testing.assert_array_equal(a.activations, b.activations)

    def test_different_seeds_differ(self):
        network = alexnet()
        first = build_network_workloads(network, seed=1)
        second = build_network_workloads(network, seed=2)
        assert not np.array_equal(first[2].weights, second[2].weights)

    def test_densities_match_calibration(self):
        network = alexnet()
        calibration = network_sparsity(network)
        for workload in build_network_workloads(network, seed=0):
            target = calibration[workload.spec.name]
            assert workload.weight_density == pytest.approx(
                target.weight_density, abs=0.01
            )
            assert workload.activation_density == pytest.approx(
                target.activation_density, abs=0.01
            )

    def test_missing_calibration_rejected(self):
        network = alexnet()
        with pytest.raises(KeyError):
            build_network_workloads(network, sparsity={}, seed=0)


class TestRunForward:
    def _tiny_network(self):
        return Network(
            "tiny",
            (
                ConvLayerSpec("c1", 3, 8, 17, 17, 5, 5, stride=2),
                ConvLayerSpec("c2", 8, 12, 7, 7, 3, 3, padding=1),
                ConvLayerSpec("c3", 12, 8, 3, 3, 3, 3, padding=1),
            ),
        )

    def test_chains_layers_with_pooling(self, rng):
        network = self._tiny_network()
        weights = [generate_pruned_weights(spec, 0.5, rng) for spec in network.layers]
        image = np.abs(rng.normal(size=(3, 17, 17)))
        results = run_forward(network, weights, image)
        assert [r.layer_name for r in results] == ["c1", "c2", "c3"]
        assert results[-1].output.shape == network.layers[-1].output_shape
        for result in results:
            assert (result.output >= 0).all()
            assert 0.0 <= result.output_density <= 1.0

    def test_relu_produces_sparsity(self, rng):
        network = self._tiny_network()
        weights = [generate_pruned_weights(spec, 0.5, rng) for spec in network.layers]
        image = np.abs(rng.normal(size=(3, 17, 17)))
        results = run_forward(network, weights, image)
        # ReLU over zero-mean pre-activations clamps a substantial fraction.
        assert results[0].output_density < 0.9

    def test_weight_count_mismatch_rejected(self, rng):
        network = self._tiny_network()
        with pytest.raises(ValueError):
            run_forward(network, [], np.zeros((3, 17, 17)))

    def test_wrong_input_shape_rejected(self, rng):
        network = self._tiny_network()
        weights = [generate_pruned_weights(spec, 0.5, rng) for spec in network.layers]
        with pytest.raises(ValueError):
            run_forward(network, weights, np.zeros((3, 9, 9)))

    def test_branching_network_rejected(self, rng):
        # GoogLeNet is not sequential: channel counts cannot chain.
        network = googlenet()
        weights = [generate_pruned_weights(spec, 0.5, rng) for spec in network.layers]
        image = np.abs(rng.normal(size=network.layers[0].input_shape))
        with pytest.raises(ValueError):
            run_forward(network, weights, image)
