"""The batched grid evaluator must match the per-config oracle bitwise.

Every test here compares :mod:`repro.grid` output against the scalar models
(``estimate_scnn_layer`` / ``estimate_dense_layer`` /
``layer_energy_from_densities`` / ``_expected_vector_count``) with exact
``==`` — no tolerances — across randomized shapes that include stride > 1,
groups > 1, degenerate 1x1 layers and near-zero densities.
"""

import numpy as np
import pytest

from repro.arch.registry import default_registry, resolve_config
from repro.grid import (
    dense_cycle_grid,
    energy_grid,
    evaluate_grid,
    expected_vector_counts,
    scnn_cycle_grid,
)
from repro.nn.layers import ConvLayerSpec
from repro.timeloop.energy import layer_energy_from_densities
from repro.timeloop.model import (
    _expected_vector_count,
    density_milli,
    estimate_dense_layer,
    estimate_scnn_layer,
)


def _random_specs(rng, count=6):
    """Random layer shapes covering stride, groups and 1x1 degeneracies."""
    specs = [
        # Degenerate pointwise layer on a single pixel.
        ConvLayerSpec("pt1x1", 64, 32, 1, 1, 1, 1),
        # Strided grouped conv with uneven spatial extent.
        ConvLayerSpec("odd", 48, 96, 7, 5, 3, 3, stride=2, groups=2),
    ]
    for index in range(count - len(specs)):
        groups = int(rng.choice([1, 1, 2, 4]))
        in_channels = int(rng.choice([16, 32, 48])) * groups
        specs.append(
            ConvLayerSpec(
                f"rand{index}",
                in_channels,
                int(rng.choice([16, 32, 64])),
                int(rng.integers(3, 30)),
                int(rng.integers(3, 30)),
                int(rng.choice([1, 3, 5])),
                int(rng.choice([1, 3])),
                stride=int(rng.choice([1, 1, 2])),
                groups=groups,
                padding=int(rng.choice([0, 1])),
            )
        )
    return specs


class TestExpectedVectorCounts:
    def test_matches_scalar_kernel_over_random_triples(self):
        rng = np.random.default_rng(7)
        elements = rng.integers(0, 900, size=300)
        milli = rng.integers(0, 1100, size=300)  # includes 0 and > 1000
        width = rng.integers(1, 9, size=300)
        batched = expected_vector_counts(elements, milli, width)
        for e, m, w, got in zip(elements, milli, width, batched):
            assert got == _expected_vector_count(int(e), int(m), int(w))

    def test_broadcasts_like_numpy(self):
        out = expected_vector_counts(
            np.array([[64], [128]]), np.array([100, 500, 1000]), 4
        )
        assert out.shape == (2, 3)
        assert out[1, 2] == _expected_vector_count(128, 1000, 4)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="width"):
            expected_vector_counts(64, 500, 0)


class TestDensityMilliRegression:
    def test_near_zero_density_floors_at_one_milli(self):
        # Regression: 1e-4 used to round to 0 milli, yielding zero expected
        # fetches — zero cycles for real work.
        assert density_milli(1e-4) == 1
        assert density_milli(0.0004) == 1
        assert density_milli(0.0016) == 2

    def test_near_zero_density_yields_positive_cycles(self):
        spec = ConvLayerSpec("tiny-density", 64, 64, 14, 14, 3, 3, padding=1)
        estimate = estimate_scnn_layer(
            spec, weight_density=1e-4, activation_density=1e-4
        )
        assert estimate.cycles > 0


class TestCycleGridEquivalence:
    @pytest.mark.parametrize("config_name", ["SCNN", "SCNN-16PE", "SCNN-SparseW"])
    def test_scnn_grid_matches_scalar_estimates(self, config_name):
        rng = np.random.default_rng(11)
        specs = _random_specs(rng)
        config = resolve_config(config_name)
        wd = np.array([0.0003, 0.15, 0.62, 1.0])
        ad = np.array([0.31, 0.0004, 0.88, 1.0])
        grid_wd = np.broadcast_to(wd, (len(specs), len(wd)))
        grid_ad = np.broadcast_to(ad, (len(specs), len(ad)))
        grid = scnn_cycle_grid(specs, config, grid_wd, grid_ad)
        for s, spec in enumerate(specs):
            for d in range(len(wd)):
                ref = estimate_scnn_layer(
                    spec,
                    weight_density=wd[d],
                    activation_density=ad[d],
                    config=config,
                )
                assert float(grid.cycles[s, d]) == ref.cycles
                assert float(grid.products[s, d]) == ref.products
                assert (
                    float(grid.multiplier_utilization[s, d])
                    == ref.multiplier_utilization
                )
                assert float(grid.idle_fraction[s, d]) == ref.idle_fraction

    @pytest.mark.parametrize("config_name", ["DCNN", "DCNN-opt"])
    def test_dense_grid_matches_scalar_estimates(self, config_name):
        rng = np.random.default_rng(13)
        specs = _random_specs(rng)
        grid = dense_cycle_grid(specs, config_name)
        for s, spec in enumerate(specs):
            ref = estimate_dense_layer(spec, config_name)
            assert float(grid.cycles[s]) == ref.cycles
            assert float(grid.products[s]) == ref.products
            assert float(grid.multiplier_utilization[s]) == ref.multiplier_utilization
            assert float(grid.idle_fraction[s]) == ref.idle_fraction

    def test_rejects_out_of_range_density(self):
        specs = _random_specs(np.random.default_rng(0), count=3)
        with pytest.raises(ValueError, match="weight_density"):
            scnn_cycle_grid(specs, "SCNN", np.array([[0.0]]), np.array([[0.5]]))


class TestEnergyGridEquivalence:
    def test_every_registered_config_matches_scalar_breakdown(self):
        rng = np.random.default_rng(17)
        specs = _random_specs(rng)
        wd = np.array([0.001, 0.4, 1.0])
        ad = np.array([0.25, 0.0002, 1.0])
        od = np.array([0.3, 0.5, 1.0])
        cycles = rng.integers(1, 10_000_000, size=(len(specs), len(wd)))
        for name in default_registry().names():
            config = resolve_config(name)
            grids = energy_grid(
                specs,
                config,
                weight_density=np.broadcast_to(wd, cycles.shape),
                activation_density=np.broadcast_to(ad, cycles.shape),
                output_density=np.broadcast_to(od, cycles.shape),
                cycles=cycles,
            )
            for s, spec in enumerate(specs):
                for d in range(len(wd)):
                    ref = layer_energy_from_densities(
                        spec,
                        config,
                        weight_density=wd[d],
                        activation_density=ad[d],
                        output_density=od[d],
                        cycles=int(cycles[s, d]),
                    )
                    assert float(grids["total"][s, d]) == ref.total
                    for component, value in ref.components.items():
                        assert float(grids[component][s, d]) == value


class TestEvaluateGrid:
    def test_full_grid_matches_oracle_cell_for_cell(self):
        rng = np.random.default_rng(19)
        specs = _random_specs(rng, count=5)
        configs = ["SCNN", "DCNN", "DCNN-opt"]
        densities = np.array([0.0001, 0.35, 0.9, 1.0])
        grid = evaluate_grid(
            specs,
            configs,
            weight_density=0.42,
            activation_density=densities,
            model="auto",
        )
        for c, name in enumerate(configs):
            config = resolve_config(name)
            for s, spec in enumerate(specs):
                for d, density in enumerate(densities):
                    if config.is_sparse:
                        ref = estimate_scnn_layer(
                            spec,
                            weight_density=0.42,
                            activation_density=density,
                            config=config,
                        )
                    else:
                        ref = estimate_dense_layer(spec, config)
                    assert grid.estimate(c, s, d) == ref
                    energy_ref = layer_energy_from_densities(
                        spec,
                        config,
                        weight_density=0.42,
                        activation_density=density,
                        output_density=density,
                        cycles=int(ref.cycles),
                    )
                    assert float(grid.energy[c, s, d]) == energy_ref.total

    def test_forced_scnn_model_covers_dense_configs(self):
        # The DSE convention: the analytical SCNN model for every candidate.
        specs = _random_specs(np.random.default_rng(23), count=3)
        grid = evaluate_grid(
            specs,
            ["DCNN"],
            weight_density=0.4,
            activation_density=0.35,
            model="scnn",
        )
        for s, spec in enumerate(specs):
            ref = estimate_scnn_layer(
                spec, weight_density=0.4, activation_density=0.35, config="DCNN"
            )
            assert grid.estimate(0, s, 0) == ref

    def test_rejects_unknown_model(self):
        specs = _random_specs(np.random.default_rng(0), count=2)
        with pytest.raises(ValueError, match="model"):
            evaluate_grid(
                specs, ["SCNN"], weight_density=0.5, activation_density=0.5,
                model="magic",
            )

    def test_named_lookup_errors_list_catalogue(self):
        specs = _random_specs(np.random.default_rng(0), count=2)
        grid = evaluate_grid(
            specs, ["SCNN"], weight_density=0.5, activation_density=0.5
        )
        with pytest.raises(KeyError, match="SCNN"):
            grid.config_index("NOPE")
        with pytest.raises(KeyError, match="pt1x1"):
            grid.layer_index("NOPE")
