"""Tests for the dataflow descriptions (repro.dataflow.dataflows)."""

import pytest

from repro.dataflow.dataflows import (
    PT_IS_CP_DENSE,
    PT_IS_CP_SPARSE,
    PT_IS_DP_DENSE,
    PT_IS_DP_DENSE_OPT,
    Dataflow,
)
from repro.dataflow.loopnest import INPUT_STATIONARY_NEST


class TestDataflowDescriptions:
    def test_scnn_dataflow_is_fully_sparse(self):
        assert PT_IS_CP_SPARSE.is_sparse
        assert PT_IS_CP_SPARSE.weights_compressed
        assert PT_IS_CP_SPARSE.activations_compressed
        assert PT_IS_CP_SPARSE.skips_zero_weights
        assert PT_IS_CP_SPARSE.skips_zero_activations
        assert PT_IS_CP_SPARSE.compresses_dram_traffic

    def test_dense_dataflows_skip_nothing(self):
        for dataflow in (PT_IS_CP_DENSE, PT_IS_DP_DENSE):
            assert not dataflow.is_sparse
            assert not dataflow.weights_compressed
            assert not dataflow.activations_compressed

    def test_dcnn_opt_gates_but_does_not_skip(self):
        assert PT_IS_DP_DENSE_OPT.gates_zero_operands
        assert PT_IS_DP_DENSE_OPT.compresses_dram_traffic
        assert not PT_IS_DP_DENSE_OPT.is_sparse

    def test_all_use_input_stationary_order(self):
        for dataflow in (PT_IS_CP_DENSE, PT_IS_CP_SPARSE, PT_IS_DP_DENSE):
            assert dataflow.temporal_order == INPUT_STATIONARY_NEST

    def test_inner_operations(self):
        assert PT_IS_CP_SPARSE.inner_operation == "cartesian"
        assert PT_IS_DP_DENSE.inner_operation == "dot"

    def test_invalid_inner_operation_rejected(self):
        with pytest.raises(ValueError):
            Dataflow(
                name="broken",
                temporal_order=INPUT_STATIONARY_NEST,
                inner_operation="systolic",
                weights_compressed=False,
                activations_compressed=False,
                skips_zero_weights=False,
                skips_zero_activations=False,
                gates_zero_operands=False,
                compresses_dram_traffic=False,
            )


class TestEffectiveWorkFraction:
    def test_sparse_dataflow_multiplies_densities(self):
        assert PT_IS_CP_SPARSE.effective_work_fraction(0.5, 0.4) == pytest.approx(0.2)

    def test_dense_dataflow_does_all_work(self):
        assert PT_IS_DP_DENSE.effective_work_fraction(0.5, 0.4) == 1.0

    def test_gating_does_not_reduce_occupancy(self):
        # DCNN-opt saves energy, not multiplier slots.
        assert PT_IS_DP_DENSE_OPT.effective_work_fraction(0.3, 0.3) == 1.0
