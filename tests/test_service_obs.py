"""Service-level observability tests: timelines, counter exactness, warnings.

What the observability layer promises at the service boundary:

* **timeline tiling** — ``GET /jobs/<id>/trace`` assembles admission /
  queue / run phases from the job's own monotonic stamps, so their
  durations sum to the timeline total (within 1 ms) in *both* worker
  modes, and engine spans recorded inside a forked worker ship back and
  nest under ``run``;
* **counter exactness** — after the 64-way concurrent burst, ``/metrics``
  agrees exactly with ``/stats``: every submission is accounted one tier,
  terminal outcomes match the queue's own history, and (in process mode)
  child-side engine counters merged across the pipe;
* **duration accounting** — job durations come from monotonic stamps, so
  wall-clock adjustment can neither produce negative durations nor a
  negative ``Retry-After``;
* **surfaced failures** — journal write failures and corrupt journal
  records, previously silent, increment counters and emit structured warn
  events carrying the path.
"""

import io
import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.engine import SimulationEngine
from repro.service import (
    Job,
    JobQueue,
    Parameter,
    Scenario,
    ScenarioRegistry,
    ServiceClient,
    SimulationService,
    create_server,
)

BURST = 64
DISTINCT_VALUES = list(range(8))


@pytest.fixture(autouse=True)
def obs_reset():
    """Each test starts from a zeroed registry; servers re-enable it."""
    obs.reset(enabled=False)
    yield
    obs.reset(enabled=False)
    obs.configure_logging("warning")


def _registry():
    """Two scenarios: pure arithmetic, and one that exercises the engine."""
    registry = ScenarioRegistry()

    def _compute(engine, params):
        value = params["value"]
        time.sleep(params["delay"])
        return {"value": value, "squared": value * value}

    def _simulate(engine, params):
        result = engine.run_network(params["network"])
        return {"network": params["network"], "layers": len(result.layers)}

    registry.register(
        Scenario(
            "compute", "deterministic arithmetic", _compute,
            (
                Parameter("value", "int"),
                Parameter("delay", "float", default=0.02),
            ),
        )
    )
    registry.register(
        Scenario(
            "simulate", "one engine network run", _simulate,
            (Parameter("network", "str", default="alexnet"),),
        )
    )
    return registry


def _server(mode, tmp_path, num_workers=2):
    engine = SimulationEngine(cache_dir=tmp_path / f"cache-{mode}")
    return create_server(
        port=0,
        engine=engine,
        registry=_registry(),
        num_workers=num_workers,
        mode=mode,
    )


def _metric(parsed, family, sample=None, **labels):
    """One sample value from a parsed exposition (0.0 when absent)."""
    sample = sample or family
    for name, sample_labels, value in parsed[family]["samples"]:
        if name == sample and sample_labels == labels:
            return value
    return 0.0


def _metric_sum(parsed, family):
    """Sum of every plain sample of ``family`` (counters across labels)."""
    return sum(
        value
        for name, _, value in parsed[family]["samples"]
        if name == family
    )


class TestTraceTimeline:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_phases_tile_and_engine_spans_nest_under_run(self, mode, tmp_path):
        server = _server(mode, tmp_path)
        server.start()
        try:
            client = ServiceClient(server.url)
            job_id = client.submit("simulate", {"network": "alexnet"})
            assert client.wait(job_id, timeout=120)["state"] == "done"
            timeline = client.trace(job_id)
        finally:
            server.stop()

        assert timeline["complete"] is True
        assert timeline["trace_id"]
        names = [span["name"] for span in timeline["spans"]]
        assert names == ["admission", "queue", "run"]

        # The acceptance bar: phase durations sum to the timeline total
        # within one millisecond, in both modes.
        total = sum(span["duration_s"] for span in timeline["spans"])
        assert total == pytest.approx(timeline["duration_s"], abs=1e-3)

        run = timeline["spans"][-1]
        assert run["duration_s"] == pytest.approx(
            timeline["job_duration_s"], abs=1e-3
        )
        children = {child["name"] for child in run.get("children", [])}
        # In process mode this span was recorded in a forked worker and
        # shipped back over the pipe.
        assert "engine.run_network" in children
        for child in run["children"]:
            assert child["start_s"] >= run["start_s"] - 1e-6
            assert child["end_s"] <= run["end_s"] + 1e-6

    def test_fast_path_job_timeline_is_admission_only(self, tmp_path):
        server = _server("thread", tmp_path)
        server.start()
        try:
            client = ServiceClient(server.url)
            first = client.submit("compute", {"value": 3})
            client.wait(first, timeout=60)
            second = client.submit("compute", {"value": 3})
            record = client.job(second)
            assert record["state"] == "done"  # born done, never queued
            timeline = client.trace(second)
        finally:
            server.stop()

        names = [span["name"] for span in timeline["spans"]]
        assert "run" not in names
        assert names[0] == "admission"
        assert timeline["spans"][0]["attrs"]["tier"] == "fast_path"
        assert timeline["duration_s"] is not None

    def test_trace_of_unknown_job_is_404(self, tmp_path):
        from repro.service import ServiceError

        server = _server("thread", tmp_path)
        server.start()
        try:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError) as excinfo:
                client.trace("no-such-job")
            assert excinfo.value.status == 404
        finally:
            server.stop()


class TestBurstCounterExactness:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_metrics_agree_with_stats_after_burst(self, mode, tmp_path):
        import random

        values = [DISTINCT_VALUES[i % len(DISTINCT_VALUES)] for i in range(BURST)]
        random.Random(0).shuffle(values)

        server = _server(mode, tmp_path)
        server.start()
        try:
            client = ServiceClient(server.url)

            def submit_and_wait(value):
                job_id = client.submit("compute", {"value": value})
                assert client.wait(job_id, timeout=60)["state"] == "done"

            with ThreadPoolExecutor(max_workers=16) as executor:
                list(executor.map(submit_and_wait, values))
            stats = client.stats()
            parsed = obs.parse_prometheus_text(client.metrics_text())
        finally:
            server.stop()

        # Every submission admitted through exactly one tier.
        assert _metric_sum(parsed, "repro_submissions_total") == BURST
        enqueued = _metric(
            parsed, "repro_submissions_total", tier="enqueued"
        )
        assert _metric(
            parsed, "repro_submissions_total", tier="coalesced"
        ) == stats["service"]["coalesced"]
        assert _metric(
            parsed, "repro_submissions_total", tier="fast_path"
        ) == stats["service"]["fast_path_hits"]
        assert _metric(
            parsed, "repro_fast_path_hits_total"
        ) == stats["service"]["fast_path_hits"]
        assert _metric(
            parsed, "repro_coalesced_total"
        ) == stats["service"]["coalesced"]

        # Terminal outcomes match the queue's own accounting exactly —
        # across threads in thread mode, across the pipe in process mode.
        assert _metric(
            parsed, "repro_jobs_total", outcome="done"
        ) == stats["queue"]["jobs"]["done"] == BURST

        # Only genuinely enqueued jobs were claimed, each exactly once.
        assert _metric(
            parsed,
            "repro_queue_wait_seconds",
            sample="repro_queue_wait_seconds_count",
        ) == enqueued
        assert enqueued == stats["workers"]["jobs_completed"]
        assert _metric(parsed, "repro_backpressure_rejections_total") == 0.0

    def test_process_mode_merges_child_engine_counters(self, tmp_path):
        server = _server("process", tmp_path, num_workers=1)
        server.start()
        try:
            client = ServiceClient(server.url)
            job_id = client.submit("simulate", {"network": "alexnet"})
            assert client.wait(job_id, timeout=120)["state"] == "done"
            parsed = obs.parse_prometheus_text(client.metrics_text())
        finally:
            server.stop()

        # The parent process never ran the engine: these counts can only
        # have arrived as deltas shipped back from the forked worker.
        assert _metric(
            parsed, "repro_engine_runs_total", method="run_network"
        ) >= 1.0
        assert _metric_sum(parsed, "repro_engine_cache_requests_total") >= 1.0


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_covers_declared_families(self, tmp_path):
        server = _server("thread", tmp_path)
        server.start()
        try:
            client = ServiceClient(server.url)
            client.stats()  # at least one counted request
            text = client.metrics_text()
        finally:
            server.stop()

        parsed = obs.parse_prometheus_text(text)  # raises if malformed
        # Families declared at import are advertised even before any event.
        for family in (
            "repro_jobs_total",
            "repro_job_duration_seconds",
            "repro_queue_wait_seconds",
            "repro_submissions_total",
            "repro_worker_restarts_total",
            "repro_cache_write_failures_total",
            "repro_queue_depth",
            "repro_busy_workers",
            "repro_http_requests_total",
        ):
            assert family in parsed, f"{family} missing from /metrics"
        assert parsed["repro_jobs_total"]["type"] == "counter"
        assert parsed["repro_job_duration_seconds"]["type"] == "histogram"
        assert parsed["repro_queue_depth"]["type"] == "gauge"
        assert (
            _metric(
                parsed,
                "repro_http_requests_total",
                method="GET",
                endpoint="stats",
                status="200",
            )
            >= 1.0
        )


class TestDurationAccounting:
    def test_monotonic_stamps_win_over_skewed_wall_clock(self):
        job = Job(
            id="j1", scenario="s", params={},
            submitted_at=1000.0, started_at=1000.0, finished_at=990.0,
            submitted_mono=5.0, started_mono=5.0, finished_mono=5.25,
        )
        assert job.duration_s == pytest.approx(0.25)

    def test_wall_clock_fallback_is_clamped_nonnegative(self):
        job = Job(
            id="j2", scenario="s", params={},
            started_at=1000.0, finished_at=990.0, started_mono=None,
        )
        assert job.duration_s == 0.0

    def test_never_ran_has_no_duration(self):
        assert Job(id="j3", scenario="s", params={}).duration_s is None

    def test_retry_after_stays_positive_under_clock_adjustment(self, tmp_path):
        service = SimulationService(
            engine=SimulationEngine(cache_dir=tmp_path / "cache"),
            registry=_registry(),
            num_workers=1,
        )
        skewed = Job(
            id="skewed", scenario="compute", params={}, state="done",
            started_at=1000.0, finished_at=400.0, started_mono=None,
        )
        with service.queue._lock:
            service.queue._jobs[skewed.id] = skewed
        assert service.retry_after() >= 1

    def test_job_record_round_trips_monotonic_fields(self):
        job = Job(
            id="j4", scenario="s", params={}, trace_id="abc",
            submitted_mono=1.0, started_mono=2.0, finished_mono=3.5,
        )
        restored = Job.from_record(json.loads(json.dumps(job.to_record())))
        assert restored.trace_id == "abc"
        assert restored.duration_s == pytest.approx(1.5)


class TestSwallowedErrorsSurface:
    def test_journal_write_failure_counts_and_warns(self, tmp_path):
        obs.reset(enabled=True)
        stream = io.StringIO()
        obs.configure_logging("warning", stream=stream)

        queue = JobQueue(journal_dir=tmp_path / "journal")
        queue.journal_dir = tmp_path / "journal-vanished"  # writes now fail
        job = queue.submit("compute", {"value": 1})

        assert queue.journal_errors == 1
        failures = obs.registry().get("repro_journal_write_failures_total")
        assert failures.value() == 1.0
        event = json.loads(stream.getvalue().strip().splitlines()[0])
        assert event["event"] == "journal_write_failed"
        assert event["job_id"] == job.id
        assert "journal-vanished" in event["path"]

    def test_corrupt_journal_records_count_and_warn(self, tmp_path):
        journal = tmp_path / "journal"
        seeded = JobQueue(journal_dir=journal)
        kept = seeded.submit("compute", {"value": 2})
        (journal / "torn.json").write_text("{not json", encoding="utf-8")
        (journal / "wrong-shape.json").write_text("[1, 2]", encoding="utf-8")

        obs.reset(enabled=True)
        stream = io.StringIO()
        obs.configure_logging("warning", stream=stream)
        restored = JobQueue.load(journal)

        assert {job.id for job in restored.jobs()} == {kept.id}
        corrupt = obs.registry().get("repro_journal_corrupt_records_total")
        assert corrupt.value() == 2.0
        events = [
            json.loads(line) for line in stream.getvalue().strip().splitlines()
        ]
        assert len(events) == 2
        assert {event["event"] for event in events} == {"journal_record_skipped"}
        paths = {event["path"] for event in events}
        assert any("torn.json" in path for path in paths)
        assert any("wrong-shape.json" in path for path in paths)
