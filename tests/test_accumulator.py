"""Tests for the banked accumulator and contention model (repro.scnn.accumulator)."""

import numpy as np
import pytest

from repro.scnn.accumulator import (
    BankedAccumulator,
    ConflictStatistics,
    bank_for_coordinate,
    expected_conflict_cycles,
)


class TestBankMapping:
    def test_deterministic(self):
        assert bank_for_coordinate(1, 2, 3, 32, 16) == bank_for_coordinate(1, 2, 3, 32, 16)

    def test_within_range(self):
        for k in range(8):
            for y in range(10):
                for x in range(10):
                    assert 0 <= bank_for_coordinate(k, x, y, 32, 10) < 32

    def test_adjacent_addresses_interleave(self):
        banks = {bank_for_coordinate(0, x, 0, 32, 16) for x in range(8)}
        assert len(banks) == 8  # neighbouring columns land in distinct banks


class TestBankedAccumulator:
    def make(self, banks=32):
        return BankedAccumulator(
            group_size=8, acc_height=6, acc_width=6, banks=banks, bank_entries=32
        )

    def test_scatter_accumulates_values(self):
        acc = self.make()
        acc.scatter([(0, 1, 1, 2.0), (0, 1, 1, 3.0), (2, 0, 5, -1.0)])
        assert acc.values[0, 1, 1] == pytest.approx(5.0)
        assert acc.values[2, 0, 5] == pytest.approx(-1.0)

    def test_scatter_returns_max_bank_load(self):
        acc = self.make(banks=1)
        cycles = acc.scatter([(0, 0, 0, 1.0), (1, 1, 1, 1.0), (2, 2, 2, 1.0)])
        assert cycles == 3  # single bank serialises everything

    def test_empty_scatter_costs_nothing(self):
        acc = self.make()
        assert acc.scatter([]) == 0
        assert acc.statistics.issue_steps == 0

    def test_out_of_range_coordinate_rejected(self):
        acc = self.make()
        with pytest.raises(IndexError):
            acc.scatter([(9, 0, 0, 1.0)])
        with pytest.raises(IndexError):
            acc.scatter([(0, 6, 0, 1.0)])

    def test_drain_returns_contents_and_clears(self):
        acc = self.make()
        acc.scatter([(1, 2, 3, 4.0)])
        drained = acc.drain()
        assert drained[1, 2, 3] == 4.0
        assert not acc.values.any()

    def test_statistics_track_conflicts(self):
        acc = self.make(banks=2)
        acc.scatter([(0, 0, 0, 1.0), (0, 0, 2, 1.0), (0, 0, 4, 1.0), (0, 0, 1, 1.0)])
        stats = acc.statistics
        assert stats.issue_steps == 1
        assert stats.total_products == 4
        assert stats.max_bank_load >= 2
        assert stats.conflict_cycles == stats.max_bank_load - 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            BankedAccumulator(8, 4, 4, banks=0, bank_entries=32)


class TestConflictStatistics:
    def test_average_over_steps(self):
        stats = ConflictStatistics()
        stats.record([2, 1, 0, 0])
        stats.record([1, 1, 1, 1])
        assert stats.issue_steps == 2
        assert stats.average_conflict_cycles == pytest.approx(0.5)
        assert stats.load_histogram == {1: 1, 2: 1}

    def test_empty_statistics(self):
        stats = ConflictStatistics()
        assert stats.average_conflict_cycles == 0.0
        stats.record([0, 0])
        assert stats.issue_steps == 0


class TestExpectedConflictCycles:
    def test_default_provisioning_has_no_stall(self):
        # Paper rule: A = 2 x F x I makes contention negligible.
        assert expected_conflict_cycles(16, 32) == 0.0

    def test_fewer_banks_than_products_guarantees_stalls(self):
        assert expected_conflict_cycles(16, 8) >= 1.0
        assert expected_conflict_cycles(16, 4) >= 3.0

    def test_monotone_in_bank_count(self):
        stalls = [expected_conflict_cycles(16, banks) for banks in (4, 8, 16, 32)]
        assert stalls == sorted(stalls, reverse=True)

    def test_zero_products(self):
        assert expected_conflict_cycles(0, 32) == 0.0

    def test_invalid_banks_rejected(self):
        with pytest.raises(ValueError):
            expected_conflict_cycles(16, 0)

    def test_shallow_queue_exposes_collisions(self):
        shallow = expected_conflict_cycles(16, 16, queue_depth=1)
        deep = expected_conflict_cycles(16, 16, queue_depth=8)
        assert shallow > deep
