"""Tests for the energy and area models (repro.timeloop.energy / area)."""

import pytest

from repro.nn.layers import ConvLayerSpec
from repro.scnn.config import (
    DCNN_CONFIG,
    DCNN_OPT_CONFIG,
    SCNN_CONFIG,
    scnn_with_pe_count,
)
from repro.timeloop.area import (
    PE_AREA_BREAKDOWN,
    accelerator_area_mm2,
    pe_area_breakdown,
    pe_area_mm2,
    table_iv_configurations,
)
from repro.timeloop.energy import (
    DEFAULT_ENERGY_TABLE,
    EnergyTable,
    count_layer_events,
    layer_energy,
    layer_energy_from_densities,
)


@pytest.fixture
def vgg_like_spec():
    return ConvLayerSpec("mid", 128, 256, 56, 56, 3, 3, padding=1)


@pytest.fixture
def googlenet_like_spec():
    return ConvLayerSpec("ic", 480, 192, 14, 14, 1, 1)


def energy_of(spec, config, wd, ad, cycles, out_density=0.5, products=None):
    return layer_energy_from_densities(
        spec,
        config,
        weight_density=wd,
        activation_density=ad,
        output_density=out_density,
        cycles=cycles,
        products=products,
    ).total


class TestEventCounts:
    def test_scnn_counts_only_nonzero_products(self, googlenet_like_spec):
        events = count_layer_events(
            googlenet_like_spec, SCNN_CONFIG,
            weight_density=0.4, activation_density=0.5, output_density=0.5,
            cycles=1000,
        )
        assert events.multiplies == pytest.approx(
            googlenet_like_spec.multiplies * 0.2, rel=0.01
        )
        assert events.crossbar_products == events.multiplies
        assert events.accumulator_updates == events.multiplies

    def test_dcnn_counts_every_multiply(self, googlenet_like_spec):
        events = count_layer_events(
            googlenet_like_spec, DCNN_CONFIG,
            weight_density=0.4, activation_density=0.5, output_density=0.5,
            cycles=1000,
        )
        assert events.multiplies == googlenet_like_spec.multiplies
        assert events.crossbar_products == 0

    def test_dcnn_opt_gates_multiplies_only(self, googlenet_like_spec):
        events = count_layer_events(
            googlenet_like_spec, DCNN_OPT_CONFIG,
            weight_density=0.4, activation_density=0.5, output_density=0.5,
            cycles=1000,
        )
        assert events.multiplies < googlenet_like_spec.multiplies
        assert events.gated_multiplies > 0
        # The adder tree / accumulator still cycles for every step.
        assert events.accumulator_updates == googlenet_like_spec.multiplies // 4

    def test_small_layers_stay_on_chip(self, googlenet_like_spec):
        events = count_layer_events(
            googlenet_like_spec, SCNN_CONFIG,
            weight_density=0.4, activation_density=0.5, output_density=0.5,
            cycles=1000,
        )
        # Only (compressed) weights travel over DRAM.
        assert events.dram_values < googlenet_like_spec.weight_count

    def test_large_layers_spill_activations(self):
        spec = ConvLayerSpec("vgg_conv1_2", 64, 64, 224, 224, 3, 3, padding=1)
        scnn_events = count_layer_events(
            spec, SCNN_CONFIG,
            weight_density=0.3, activation_density=0.6, output_density=0.6,
            cycles=100000,
        )
        assert scnn_events.dram_values > spec.weight_count

    def test_dcnn_opt_compresses_dram_activations(self):
        spec = ConvLayerSpec("vgg_conv1_2", 64, 64, 224, 224, 3, 3, padding=1)
        dcnn = count_layer_events(
            spec, DCNN_CONFIG,
            weight_density=0.3, activation_density=0.6, output_density=0.6,
            cycles=100000,
        )
        opt = count_layer_events(
            spec, DCNN_OPT_CONFIG,
            weight_density=0.3, activation_density=0.6, output_density=0.6,
            cycles=100000,
        )
        assert opt.dram_values < dcnn.dram_values


class TestEnergyRelationships:
    def test_dcnn_opt_never_worse_than_dcnn(self, googlenet_like_spec):
        for density in (0.2, 0.5, 0.8, 1.0):
            dcnn = energy_of(googlenet_like_spec, DCNN_CONFIG, density, density, 10000)
            opt = energy_of(googlenet_like_spec, DCNN_OPT_CONFIG, density, density, 10000)
            assert opt <= dcnn + 1e-9

    def test_scnn_wins_at_low_density_loses_at_high(self, googlenet_like_spec):
        # Approximate cycle counts: DCNN fixed, SCNN scaling with density^2.
        dense_cycles = googlenet_like_spec.multiplies // 1024
        low = energy_of(
            googlenet_like_spec, SCNN_CONFIG, 0.2, 0.2, int(dense_cycles * 0.06)
        )
        high = energy_of(
            googlenet_like_spec, SCNN_CONFIG, 1.0, 1.0, int(dense_cycles * 1.3)
        )
        dcnn = energy_of(googlenet_like_spec, DCNN_CONFIG, 1.0, 1.0, dense_cycles)
        assert low < dcnn
        assert high > dcnn

    def test_energy_monotone_in_density_for_scnn(self, googlenet_like_spec):
        cycles = googlenet_like_spec.multiplies // 1024
        energies = [
            energy_of(googlenet_like_spec, SCNN_CONFIG, d, d, int(cycles * d * d) + 1)
            for d in (0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert energies == sorted(energies)

    def test_breakdown_components_sum_to_total(self, googlenet_like_spec):
        events = count_layer_events(
            googlenet_like_spec, SCNN_CONFIG,
            weight_density=0.4, activation_density=0.5, output_density=0.5,
            cycles=1000,
        )
        breakdown = layer_energy(events, SCNN_CONFIG)
        assert breakdown.total == pytest.approx(sum(breakdown.components.values()))
        assert all(value >= 0 for value in breakdown.components.values())

    def test_custom_energy_table(self, googlenet_like_spec):
        free_dram = DEFAULT_ENERGY_TABLE.scaled(dram=0.0)
        events = count_layer_events(
            googlenet_like_spec, SCNN_CONFIG,
            weight_density=0.4, activation_density=0.5, output_density=0.5,
            cycles=1000,
        )
        assert (
            layer_energy(events, SCNN_CONFIG, free_dram).components["DRAM"] == 0.0
        )

    def test_energy_table_immutable_scaling(self):
        table = EnergyTable()
        scaled = table.scaled(multiply=2.0)
        assert table.multiply != 2.0
        assert scaled.multiply == 2.0


class TestAreaModel:
    def test_table_iii_reproduced(self):
        breakdown = pe_area_breakdown(SCNN_CONFIG)
        for component, paper_value in PE_AREA_BREAKDOWN.items():
            assert breakdown[component] == pytest.approx(paper_value, rel=0.05)
        assert pe_area_mm2(SCNN_CONFIG) == pytest.approx(0.123, abs=0.003)

    def test_accelerator_totals_match_table_iv(self):
        assert accelerator_area_mm2(SCNN_CONFIG) == pytest.approx(7.9, abs=0.2)
        assert accelerator_area_mm2(DCNN_CONFIG) == pytest.approx(5.9, abs=0.2)

    def test_scnn_larger_than_dense_despite_less_sram(self):
        # The paper's headline area point: sparse support costs area.
        assert accelerator_area_mm2(SCNN_CONFIG) > accelerator_area_mm2(DCNN_CONFIG)
        assert SCNN_CONFIG.activation_sram_bytes < DCNN_CONFIG.activation_sram_bytes

    def test_memories_dominate_pe_area(self):
        # Paper: memories consume 57% of PE area, multipliers only 6%.
        breakdown = pe_area_breakdown(SCNN_CONFIG)
        total = pe_area_mm2(SCNN_CONFIG)
        memories = (
            breakdown["IARAM + OARAM"]
            + breakdown["Accumulator buffers"]
            + breakdown["Weight FIFO"]
        )
        assert memories / total == pytest.approx(0.57, abs=0.05)
        assert breakdown["Multiplier array"] / total == pytest.approx(0.06, abs=0.03)

    def test_table_iv_rows(self):
        rows = {row.name: row for row in table_iv_configurations()}
        assert set(rows) == {"DCNN", "DCNN-opt", "SCNN"}
        assert rows["SCNN"].multipliers == 1024
        assert rows["DCNN"].sram_bytes == 2 * 1024 * 1024

    def test_area_scales_with_pe_resources(self):
        bigger_pe = scnn_with_pe_count(16)  # 64 multipliers per PE
        assert pe_area_mm2(bigger_pe) > pe_area_mm2(SCNN_CONFIG)
