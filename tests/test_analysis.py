"""Tests for analysis helpers: metrics, aggregation and reporting."""

import numpy as np
import pytest

from repro.analysis.aggregate import geometric_mean, harmonic_mean, weighted_mean
from repro.analysis.metrics import (
    average_work_reduction,
    density_table,
    network_characteristics,
)
from repro.analysis.reporting import format_table, format_value
from repro.nn.networks import alexnet, googlenet, vggnet


class TestNetworkCharacteristics:
    def test_alexnet_row_matches_paper(self):
        row = network_characteristics(alexnet())
        assert row.conv_layers == 5
        assert row.max_layer_weight_mb == pytest.approx(1.73, rel=0.05)
        assert row.max_layer_activation_mb == pytest.approx(0.31, rel=0.1)
        assert row.total_multiplies_billions == pytest.approx(0.69, rel=0.05)

    def test_vggnet_row_matches_paper(self):
        row = network_characteristics(vggnet())
        assert row.conv_layers == 13
        assert row.max_layer_weight_mb == pytest.approx(4.49, rel=0.05)
        assert row.max_layer_activation_mb == pytest.approx(6.12, rel=0.05)
        assert row.total_multiplies_billions == pytest.approx(15.3, rel=0.02)

    def test_googlenet_row(self):
        row = network_characteristics(googlenet())
        assert row.conv_layers == 54
        assert row.max_layer_weight_mb == pytest.approx(1.32, rel=0.05)
        assert 0.8 < row.total_multiplies_billions < 1.4


class TestDensityTable:
    def test_calibration_rows(self):
        rows = density_table(alexnet())
        assert [row.layer for row in rows] == ["conv1", "conv2", "conv3", "conv4", "conv5"]
        for row in rows:
            assert row.work_fraction == pytest.approx(
                row.weight_density * row.activation_density
            )
            assert row.work_reduction >= 1.0

    def test_measured_rows_from_workloads(self):
        from repro.nn.inference import build_network_workloads

        network = alexnet()
        workloads = build_network_workloads(network, seed=0)
        rows = density_table(network, workloads)
        for row, workload in zip(rows, workloads):
            assert row.weight_density == pytest.approx(workload.weight_density)

    def test_average_work_reduction_weighted_by_multiplies(self):
        network = alexnet()
        rows = density_table(network)
        reduction = average_work_reduction(rows, network)
        # Paper: typical layers reduce work by ~4x; AlexNet's conv1 is dense so
        # the multiply-weighted average sits a bit lower.
        assert 2.0 < reduction < 8.0


class TestAggregate:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)
        assert weighted_mean([], []) == 0.0

    def test_harmonic_mean(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)
        assert harmonic_mean([]) == 0.0


class TestReporting:
    def test_format_value(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1234567) == "1,234,567"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        table = format_table(
            ["Name", "Value"],
            [("alpha", 1), ("beta", 22)],
            title="Demo",
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "Name" in lines[2]
        # All data rows share the header's column offset for the second column.
        offset = lines[2].index("Value")
        assert lines[4][offset:].startswith("1")
        assert lines[5][offset:].startswith("22")

    def test_format_table_without_title(self):
        table = format_table(["A"], [("x",)])
        assert table.splitlines()[0] == "A"
