"""Pinned equivalence: the compare path reproduces Fig 8 / Fig 10 bitwise.

The cross-architecture comparison sweep (``repro.arch.compare``) and the
figure drivers that are now thin views over it must produce *exactly* the
numbers the serial reference simulator produces — same integers, bitwise
equal floats, no tolerance.  This is the contract that lets the registry
refactor touch the model/engine/experiment layers without moving a single
reported result.
"""

import pytest

from repro.arch.compare import compare_network
from repro.engine import SimulationEngine
from repro.experiments import fig8_performance, fig10_energy
from repro.nn.networks import get_network
from repro.scnn.simulator import simulate_network

NETWORK = "alexnet"


@pytest.fixture(scope="module")
def engine():
    """One warm engine shared by every equivalence check in this module."""
    return SimulationEngine(cache_dir=False)


@pytest.fixture(scope="module")
def reference():
    """The serial reference simulation (pre-refactor ground truth)."""
    return simulate_network(get_network(NETWORK), seed=0)


@pytest.fixture(scope="module")
def comparison(engine):
    return compare_network(NETWORK, seed=0, engine=engine)


class TestComparisonMatchesSerialReference:
    def test_per_layer_cycles_identical(self, comparison, reference):
        for metrics, layer in zip(comparison.layers["SCNN"], reference.layers):
            assert metrics.cycles == layer.scnn.cycles
            assert metrics.operations == layer.scnn.products
        for metrics, layer in zip(comparison.layers["DCNN"], reference.layers):
            assert metrics.cycles == layer.dcnn.cycles

    def test_per_layer_energy_identical(self, comparison, reference):
        for name in ("SCNN", "DCNN", "DCNN-opt"):
            for metrics, layer in zip(comparison.layers[name], reference.layers):
                assert metrics.energy_total == layer.energy[name].total

    def test_network_speedups_bitwise_equal(self, comparison, reference):
        assert comparison.speedup("SCNN") == reference.network_speedup
        assert comparison.oracle_speedup == reference.oracle_network_speedup
        assert comparison.total_cycles("SCNN") == reference.total_cycles("SCNN")
        assert comparison.total_cycles("DCNN") == reference.total_cycles("DCNN")
        assert comparison.oracle_total_cycles == reference.total_cycles("oracle")

    def test_energy_ratios_bitwise_equal(self, comparison, reference):
        for name in ("SCNN", "DCNN-opt"):
            assert comparison.energy_ratio(name) == reference.network_energy_ratio(
                name
            )
            assert comparison.total_energy(name) == reference.total_energy(name)

    def test_module_aggregations_bitwise_equal(self, comparison, reference):
        assert comparison.modules() == reference.modules()
        for module in reference.modules():
            speedups = reference.module_speedup(module)
            assert comparison.module_speedup(module, "SCNN") == speedups["SCNN"]
            assert (
                comparison.module_oracle_speedup(module)
                == speedups["SCNN (oracle)"]
            )


class TestFigureDriversAreThinViews:
    """Fig 8 / Fig 10 route through compare and still match the reference."""

    def test_fig8_report_bitwise_equal_to_reference(self, engine, reference):
        report = fig8_performance.run(networks=(NETWORK,), engine=engine)["AlexNet"]
        assert report.network_speedup == reference.network_speedup
        assert report.oracle_speedup == reference.oracle_network_speedup
        labels = [row.label for row in report.rows]
        assert labels == reference.modules() + ["all"]
        for row in report.rows[:-1]:
            speedups = reference.module_speedup(row.label)
            assert row.scnn == speedups["SCNN"]
            assert row.oracle == speedups["SCNN (oracle)"]

    def test_fig10_report_bitwise_equal_to_reference(self, engine, reference):
        report = fig10_energy.run(networks=(NETWORK,), engine=engine)["AlexNet"]
        assert report.network_scnn == reference.network_energy_ratio("SCNN")
        assert report.network_dcnn_opt == reference.network_energy_ratio("DCNN-opt")
        for row in report.rows[:-1]:
            members = [
                layer for layer in reference.layers if layer.module == row.label
            ]
            dcnn = sum(layer.energy["DCNN"].total for layer in members)
            dcnn_opt = sum(layer.energy["DCNN-opt"].total for layer in members)
            scnn = sum(layer.energy["SCNN"].total for layer in members)
            assert row.dcnn_opt == (dcnn_opt / dcnn if dcnn else 0.0)
            assert row.scnn == (scnn / dcnn if dcnn else 0.0)

    def test_parallel_compare_identical_to_serial(self, comparison):
        """The sharded path returns the same objects, bit for bit."""
        parallel_engine = SimulationEngine(cache_dir=False, parallel=2)
        parallel = compare_network(
            NETWORK,
            ["DCNN", "DCNN-opt", "SCNN", "SCNN-SparseW"],
            seed=0,
            engine=parallel_engine,
        )
        for name in ("DCNN", "DCNN-opt", "SCNN"):
            assert parallel.layers[name] == comparison.layers[name]
        assert parallel.oracle_cycles == comparison.oracle_cycles
