"""Numpy-vs-reference equivalence for the engine's vectorised hot loops.

The integral-image tile counts (repro.dataflow.tiling) and the batched
Monte-Carlo conflict estimate (repro.scnn.accumulator) replaced per-PE /
per-sample Python loops.  These tests pin them against straightforward
scalar reimplementations of the original loops on small workloads — exact
integer equality, not approximate agreement.
"""

import numpy as np
import pytest

from repro.dataflow.tiling import (
    activation_phase_nonzeros,
    activation_tile_nonzeros,
    plan_layer,
    weight_group_nonzeros,
    weight_phase_nonzeros,
)
from repro.nn.layers import ConvLayerSpec
from repro.scnn.accumulator import expected_conflict_cycles

from _helpers import make_workload


# -- scalar reference implementations (the pre-vectorisation loops) -----------


def scalar_tile_nonzeros(activations, plan):
    mask = activations != 0
    counts = np.zeros((plan.num_pes, activations.shape[0]), dtype=np.int64)
    for pe_index, tile in enumerate(plan.input_tiles):
        if tile.size == 0:
            continue
        counts[pe_index] = mask[
            :, tile.y_lo : tile.y_hi, tile.x_lo : tile.x_hi
        ].sum(axis=(1, 2))
    return counts


def scalar_phase_nonzeros(activations, plan, stride):
    mask = activations != 0
    num_c = activations.shape[0]
    counts = np.zeros((plan.num_pes, num_c, stride * stride), dtype=np.int64)
    if stride == 1:
        counts[:, :, 0] = scalar_tile_nonzeros(activations, plan)
        return counts
    for pe_index, tile in enumerate(plan.input_tiles):
        if tile.size == 0:
            continue
        for py in range(stride):
            for px in range(stride):
                sub = mask[
                    :,
                    tile.y_lo + ((py - tile.y_lo) % stride) : tile.y_hi : stride,
                    tile.x_lo + ((px - tile.x_lo) % stride) : tile.x_hi : stride,
                ]
                counts[pe_index, :, py * stride + px] = sub.sum(axis=(1, 2))
    return counts


def scalar_group_nonzeros(weights, group_size):
    num_k, num_c = weights.shape[:2]
    per_channel = np.count_nonzero(weights.reshape(num_k, num_c, -1), axis=2)
    num_groups = -(-num_k // group_size)
    counts = np.zeros((num_groups, num_c), dtype=np.int64)
    for group in range(num_groups):
        k_lo = group * group_size
        counts[group] = per_channel[k_lo : k_lo + group_size].sum(axis=0)
    return counts


def scalar_conflict_cycles(products, banks, queue_depth=4, samples=2048, seed=0):
    if products <= 0:
        return 0.0
    guaranteed = max(0, -(-products // banks) - 1)
    if banks >= products and queue_depth >= 2:
        return float(guaranteed)
    rng = np.random.default_rng(seed)
    assignments = rng.integers(0, banks, size=(samples, products))
    stalls = 0.0
    for row in assignments:
        loads = np.bincount(row, minlength=banks)
        overflow = np.maximum(loads - queue_depth, 0).sum()
        stalls += max(loads.max() - 1 if queue_depth <= 1 else 0, overflow)
    return float(guaranteed) + stalls / samples


SHAPES = [
    # (name, C, K, H, W, filter, stride, padding, num_pes)
    ("same_padded", 8, 16, 14, 14, 3, 1, 1, 64),
    ("strided", 3, 8, 23, 23, 5, 2, 0, 64),
    ("strided_nonsquare", 5, 17, 31, 13, 3, 2, 1, 64),
    ("stride3_awkward", 2, 3, 5, 5, 3, 3, 1, 4),
    ("pointwise_small_grid", 24, 16, 7, 7, 1, 1, 0, 16),
]


@pytest.mark.parametrize("shape", SHAPES, ids=[s[0] for s in SHAPES])
class TestTileCountEquivalence:
    def _workload_and_plan(self, shape, num_pes_override=None):
        _, c, k, h, w, f, stride, pad, num_pes = shape
        spec = ConvLayerSpec(
            "vec", c, k, h, w, f, f, stride=stride, padding=pad
        )
        plan = plan_layer(
            spec, num_pes=num_pes_override or num_pes, group_size=8
        )
        workload = make_workload(spec, 0.4, 0.5, seed=11)
        return spec, plan, workload

    def test_activation_tile_counts(self, shape):
        _, plan, workload = self._workload_and_plan(shape)
        assert np.array_equal(
            activation_tile_nonzeros(workload.activations, plan),
            scalar_tile_nonzeros(workload.activations, plan),
        )

    def test_activation_phase_counts(self, shape):
        spec, plan, workload = self._workload_and_plan(shape)
        assert np.array_equal(
            activation_phase_nonzeros(
                workload.activations, plan, spec.stride, spec.padding
            ),
            scalar_phase_nonzeros(workload.activations, plan, spec.stride),
        )

    def test_weight_group_counts(self, shape):
        spec, _, workload = self._workload_and_plan(shape)
        for group_size in (3, 8, 16):
            assert np.array_equal(
                weight_group_nonzeros(workload.weights, group_size),
                scalar_group_nonzeros(workload.weights, group_size),
            )

    def test_weight_phase_counts_cover_all_nonzeros(self, shape):
        spec, _, workload = self._workload_and_plan(shape)
        counts = weight_phase_nonzeros(workload.weights, 8, spec.stride, spec.padding)
        assert counts.sum() == np.count_nonzero(workload.weights)

    def test_phase_counts_partition_tile_counts(self, shape):
        """Summing over phases must reproduce the unphased per-tile counts."""
        spec, plan, workload = self._workload_and_plan(shape)
        phased = activation_phase_nonzeros(
            workload.activations, plan, spec.stride, spec.padding
        )
        assert np.array_equal(
            phased.sum(axis=2),
            activation_tile_nonzeros(workload.activations, plan),
        )


class TestConflictEstimateEquivalence:
    @pytest.mark.parametrize("products", [1, 4, 16, 33])
    @pytest.mark.parametrize("banks", [2, 4, 16, 64])
    @pytest.mark.parametrize("queue_depth", [1, 2, 4])
    def test_monte_carlo_matches_scalar_loop(self, products, banks, queue_depth):
        assert expected_conflict_cycles(
            products, banks, queue_depth=queue_depth
        ) == scalar_conflict_cycles(products, banks, queue_depth=queue_depth)

    def test_paper_provisioning_has_no_stalls(self):
        assert expected_conflict_cycles(16, 32) == 0.0

    def test_zero_products(self):
        assert expected_conflict_cycles(0, 32) == 0.0
