"""Pinned equivalence: the workload registry reproduces the paper trio bitwise.

Mirrors ``tests/test_compare_equivalence.py`` on the workload axis: routing
AlexNet / GoogLeNet / VGGNet through the registry (``get_network`` shim,
``resolve_workload``, the engine's name resolution) must produce *exactly*
what the pre-registry builders produced — identical layer catalogues,
identical sparsity calibration, bitwise-identical simulation metrics.  This
is the contract that lets the workload refactor touch nn/engine/service
without moving a single reported result.

The second half covers the other direction: a workload registered at
*runtime* must be accepted end-to-end — by the engine, by scenario
validation (the frozen-choices bugfix) and by the service's ``compare``
scenario over real HTTP.
"""

import pytest

from repro.engine import SimulationEngine
from repro.nn.densities import network_sparsity
from repro.nn.networks import alexnet, get_network, googlenet, vggnet
from repro.scnn.simulator import simulate_network
from repro.workloads import (
    WorkloadSpec,
    default_registry,
    get_workload,
    plain_cnn,
    resolve_workload,
)

BUILDERS = {"alexnet": alexnet, "googlenet": googlenet, "vggnet": vggnet}


class TestPaperTrioBitwiseIdentical:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_registry_network_equals_builder_network(self, name):
        """Same layer tuples, same names, same aggregate characteristics."""
        direct = BUILDERS[name]()
        registered = get_network(name)
        assert registered == direct
        assert registered.layers == direct.layers
        assert registered.name == direct.name
        assert registered.total_multiplies == direct.total_multiplies

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_registry_sparsity_equals_measured_calibration(self, name):
        """The trio's specs bind the measured (Figure 1) profile."""
        network, sparsity = resolve_workload(name)
        assert sparsity == network_sparsity(network)

    def test_googlenet_stem_variant_reaches_the_builder_option(self):
        """googlenet(include_stem=True) is reachable by name (was dead).

        Same layer catalogue, distinct display name — so the variant never
        shadows plain GoogLeNet in display-name-keyed report dicts.
        """
        stem = get_network("googlenet-stem")
        assert stem.layers == googlenet(include_stem=True).layers
        assert stem.conv_layer_count == 57
        assert stem.name == "GoogLeNet-stem"

    def test_googlenet_stem_keeps_the_measured_calibration(self):
        """The display-name suffix must not drop the Figure 1 densities."""
        plain, plain_sparsity = resolve_workload("googlenet")
        stem, stem_sparsity = resolve_workload("googlenet-stem")
        # Inception layers: identical calibration in both flavours.
        for spec in plain.layers:
            assert stem_sparsity[spec.name] == plain_sparsity[spec.name]
        # Stem layers get the module-aware stem calibration, not the flat
        # unknown-network default (0.40, 0.45).
        conv1 = stem_sparsity["conv1/7x7_s2"]
        assert (conv1.weight_density, conv1.activation_density) != (0.40, 0.45)
        assert conv1.activation_density > 0.9  # near-dense input layer

    def test_duplicate_requests_are_deduplicated(self):
        """Repeating a name is harmless (as before the collision guard)."""
        from repro.arch.compare import compare_networks

        engine = SimulationEngine(cache_dir=False)
        comparisons = compare_networks(
            ["plain-cnn-8", "plain-cnn-8", "Plain-CNN-8"], ["DCNN", "SCNN"],
            engine=engine,
        )
        assert list(comparisons) == ["PlainCNN-8"]
        # Name and equal Network object are the same request for a paper
        # network (the object path's measured fallback equals the spec's
        # profile there, so the comparisons are equal and deduplicate).
        mixed = compare_networks(
            ["alexnet", get_network("alexnet")], ["DCNN", "SCNN"],
            engine=engine,
        )
        assert list(mixed) == ["AlexNet"]
        # For a synthetic workload the object path falls back to the measured
        # calibration, so the two spellings are *different* evaluations — a
        # silent overwrite would hide that, hence the loud error.
        with pytest.raises(ValueError, match="share the display name"):
            compare_networks(
                ["plain-cnn-8", get_network("plain-cnn-8")], ["DCNN", "SCNN"],
                engine=engine,
            )

    def test_distinct_workloads_sharing_a_display_name_fail_loudly(self):
        """Silent shadowing is an error with an actionable message."""
        from repro.arch.compare import compare_networks

        spec = WorkloadSpec(
            name="alexnet-imposter",
            builder=lambda: plain_cnn(depth=1, channels=2, extent=4,
                                      name="AlexNet"),
            density_profile="dense",
        )
        default_registry().register(spec)
        engine = SimulationEngine(cache_dir=False)
        try:
            with pytest.raises(ValueError, match="share the display name"):
                compare_networks(
                    ["alexnet", "alexnet-imposter"], ["DCNN", "SCNN"],
                    engine=engine,
                )
        finally:
            default_registry().unregister("alexnet-imposter")

    def test_googlenet_and_stem_variant_compare_side_by_side(self):
        """Both GoogLeNet flavours survive one compare_networks call."""
        from repro.arch.compare import compare_networks

        engine = SimulationEngine(cache_dir=False)
        comparisons = compare_networks(
            ["googlenet", "googlenet-stem"], ["DCNN", "SCNN"], engine=engine
        )
        assert set(comparisons) == {"GoogLeNet", "GoogLeNet-stem"}
        # The stem adds work: its DCNN total must exceed the stem-free one.
        assert comparisons["GoogLeNet-stem"].total_cycles("DCNN") > comparisons[
            "GoogLeNet"
        ].total_cycles("DCNN")

    def test_engine_simulation_bitwise_equal_to_serial_reference(self):
        """Name-resolved engine run == the pre-registry serial simulator."""
        engine = SimulationEngine(cache_dir=False)
        reference = simulate_network(alexnet(), seed=0)
        via_registry = engine.run_network("alexnet", seed=0)
        for ours, theirs in zip(via_registry.layers, reference.layers):
            assert ours.scnn.cycles == theirs.scnn.cycles
            assert ours.dcnn.cycles == theirs.dcnn.cycles
            assert ours.oracle_cycles == theirs.oracle_cycles
            for arch in ("SCNN", "DCNN", "DCNN-opt"):
                assert ours.energy[arch].total == theirs.energy[arch].total
        assert via_registry.network_speedup == reference.network_speedup


@pytest.fixture
def runtime_workload():
    """A workload registered mid-session, unregistered on the way out."""
    spec = WorkloadSpec(
        name="runtime-net",
        builder=lambda: plain_cnn(depth=2, channels=4, extent=8,
                                  name="RuntimeNet"),
        density_profile="uniform-50",
        description="tiny runtime-registered chain",
    )
    default_registry().register(spec)
    try:
        yield spec
    finally:
        default_registry().unregister(spec.name)


class TestRuntimeRegistrationEndToEnd:
    def test_engine_and_compare_accept_runtime_workload(self, runtime_workload):
        engine = SimulationEngine(cache_dir=False)
        simulation = engine.run_network("runtime-net")
        assert simulation.network.name == "RuntimeNet"

        from repro.arch.compare import compare_network

        comparison = compare_network(
            "runtime-net", ["DCNN", "SCNN"], engine=engine
        )
        assert comparison.network == "RuntimeNet"
        assert comparison.speedup("SCNN") > 0

    def test_scenario_validation_sees_runtime_workload(self, runtime_workload):
        """The frozen-choices bug: validation must hit the live registry."""
        from repro.service.scenarios import ScenarioError, default_registry as scenarios

        registry = scenarios()
        params = registry.get("network").validate({"network": "runtime-net"})
        assert params["network"] == "runtime-net"
        with pytest.raises(ScenarioError, match="must be one of"):
            registry.get("network").validate({"network": "never-registered"})

    def test_service_compare_scenario_over_http(self, runtime_workload, tmp_path):
        """A runtime-registered network through POST /jobs → GET /results."""
        from repro.service import ServiceClient, create_server

        engine = SimulationEngine(cache_dir=tmp_path / "cache")
        server = create_server(port=0, engine=engine, num_workers=2)
        server.start()
        try:
            client = ServiceClient(server.url)
            payload = client.run(
                "compare",
                {"networks": ["runtime-net"], "architectures": ["DCNN", "SCNN"]},
                timeout=120.0,
            )
            assert "RuntimeNet" in payload["comparisons"]
            network_payload = payload["comparisons"]["RuntimeNet"]
            assert set(network_payload["architectures"]) == {"DCNN", "SCNN"}
        finally:
            server.stop()


class TestScenarioChoicesAreLive:
    def test_choices_reflect_registration_after_registry_build(self):
        """Register *after* the scenario registry exists — must be accepted."""
        from repro.service.scenarios import default_registry as scenarios

        scenario_registry = scenarios()  # frozen-choices bug would snapshot here
        spec = WorkloadSpec(
            name="post-build-net",
            builder=lambda: plain_cnn(depth=1, channels=2, extent=4,
                                      name="PostBuildNet"),
            density_profile="dense",
        )
        default_registry().register(spec)
        try:
            network_scenario = scenario_registry.get("network")
            assert (
                network_scenario.validate({"network": "post-build-net"})["network"]
                == "post-build-net"
            )
            compare_scenario = scenario_registry.get("compare")
            assert compare_scenario.validate({"networks": ["post-build-net"]})[
                "networks"
            ] == ["post-build-net"]
            described = {
                p["name"]: p for p in network_scenario.describe()["parameters"]
            }
            assert "post-build-net" in described["network"]["choices"]
        finally:
            default_registry().unregister("post-build-net")
