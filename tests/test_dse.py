"""Tests for the design-space exploration helpers (repro.timeloop.dse)."""

import pytest

from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network
from repro.scnn.config import SCNN_CONFIG, scnn_with_pe_count
from repro.timeloop.dse import (
    DesignPoint,
    default_candidates,
    evaluate_config,
    pareto_frontier,
    summarize,
    sweep,
)


@pytest.fixture(scope="module")
def small_network():
    return Network(
        "SweepNet",
        (
            ConvLayerSpec("a", 32, 64, 28, 28, 3, 3, padding=1),
            ConvLayerSpec("b", 64, 64, 14, 14, 1, 1),
            ConvLayerSpec("c", 64, 32, 7, 7, 3, 3, padding=1),
        ),
    )


@pytest.fixture(scope="module")
def small_sparsity():
    from repro.nn.densities import LayerSparsity

    return {
        "a": LayerSparsity(0.4, 0.5),
        "b": LayerSparsity(0.35, 0.45),
        "c": LayerSparsity(0.3, 0.4),
    }


class TestEvaluateConfig:
    def test_returns_positive_metrics(self, small_network, small_sparsity):
        point = evaluate_config(SCNN_CONFIG, small_network, sparsity=small_sparsity)
        assert point.cycles > 0
        assert point.energy > 0
        assert point.area_mm2 == pytest.approx(7.9, abs=0.3)
        assert point.energy_delay_product == pytest.approx(point.energy * point.cycles)

    def test_name_comes_from_config(self, small_network, small_sparsity):
        point = evaluate_config(
            scnn_with_pe_count(16), small_network, sparsity=small_sparsity
        )
        assert "16PE" in point.name


class TestSweepAndPareto:
    def test_sweep_evaluates_every_candidate(self, small_network):
        candidates = default_candidates()
        points = sweep(candidates, small_network)
        assert len(points) == len(candidates)
        assert {point.name for point in points} == {c.name for c in candidates}

    def test_default_candidates_cover_paper_studies(self):
        names = [config.name for config in default_candidates()]
        assert any("4PE" in name for name in names)
        assert any("A16" in name for name in names)
        assert any("Kc16" in name for name in names)

    def test_pareto_frontier_nonempty_and_subset(self, small_network, small_sparsity):
        points = sweep(default_candidates(), small_network)
        frontier = pareto_frontier(points)
        assert 0 < len(frontier) <= len(points)
        for point in frontier:
            assert point in points
        # No frontier point is dominated by any other evaluated point.
        for point in frontier:
            assert not any(other.dominates(point) for other in points)

    def test_dominance_relation(self):
        better = DesignPoint(SCNN_CONFIG, cycles=10, energy=10, area_mm2=5)
        worse = DesignPoint(SCNN_CONFIG, cycles=20, energy=12, area_mm2=5)
        equal = DesignPoint(SCNN_CONFIG, cycles=10, energy=10, area_mm2=5)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(equal)

    def test_summarize_normalises_to_first_point(self, small_network, small_sparsity):
        points = sweep([SCNN_CONFIG, scnn_with_pe_count(4)], small_network)
        rows = summarize(points)
        assert rows[0][1:] == (1.0, 1.0, 1.0)
        assert len(rows) == 2
        assert summarize([]) == []


class TestBatchedSweep:
    def test_batched_matches_per_config_oracle(self, small_network):
        candidates = default_candidates()
        batched = sweep(candidates, small_network)
        oracle = sweep(candidates, small_network, batched=False)
        for ours, theirs in zip(batched, oracle):
            assert ours.config == theirs.config
            assert ours.cycles == theirs.cycles
            assert ours.energy == theirs.energy
            assert ours.area_mm2 == theirs.area_mm2

    def test_batched_respects_sparsity_override(self, small_network, small_sparsity):
        from repro.timeloop.dse import evaluate_configs

        points = evaluate_configs(
            [SCNN_CONFIG], small_network, sparsity=small_sparsity
        )
        reference = evaluate_config(
            SCNN_CONFIG, small_network, sparsity=small_sparsity
        )
        assert points[0].cycles == reference.cycles
        assert points[0].energy == reference.energy

    def test_empty_candidate_list(self, small_network):
        assert sweep([], small_network) == []
