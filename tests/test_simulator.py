"""Tests for the layer/network simulation drivers (repro.scnn.simulator)."""

import pytest

from repro.nn.densities import LayerSparsity
from repro.nn.inference import build_network_workloads
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network, alexnet
from repro.scnn.simulator import (
    DEFAULT_OUTPUT_DENSITY,
    simulate_layer,
    simulate_network,
)

from _helpers import make_workload


@pytest.fixture(scope="module")
def tiny_network():
    """A small AlexNet-shaped network so network simulation stays fast."""
    return Network(
        "MiniNet",
        (
            ConvLayerSpec("conv1", 3, 16, 31, 31, 5, 5, stride=2, module="front"),
            ConvLayerSpec("conv2", 16, 32, 14, 14, 3, 3, padding=1, module="front"),
            ConvLayerSpec("conv3", 32, 32, 14, 14, 3, 3, padding=1, module="back"),
            ConvLayerSpec("conv4", 32, 16, 7, 7, 1, 1, module="back"),
        ),
    )


@pytest.fixture(scope="module")
def tiny_sparsity():
    return {
        "conv1": LayerSparsity(0.8, 1.0),
        "conv2": LayerSparsity(0.4, 0.5),
        "conv3": LayerSparsity(0.35, 0.45),
        "conv4": LayerSparsity(0.3, 0.4),
    }


@pytest.fixture(scope="module")
def tiny_simulation(tiny_network, tiny_sparsity):
    workloads = build_network_workloads(tiny_network, tiny_sparsity, seed=5)
    return simulate_network(tiny_network, workloads=workloads)


class TestSimulateLayer:
    def test_contains_all_results(self, small_workload):
        sim = simulate_layer(small_workload)
        assert sim.scnn.cycles > 0
        assert sim.dcnn.cycles > 0
        assert sim.oracle_cycles > 0
        assert set(sim.energy) == {"SCNN", "DCNN", "DCNN-opt"}
        assert sim.output_density == DEFAULT_OUTPUT_DENSITY

    def test_speedup_definitions(self, small_workload):
        sim = simulate_layer(small_workload)
        assert sim.scnn_speedup == pytest.approx(sim.dcnn.cycles / sim.scnn.cycles)
        assert sim.oracle_speedup >= sim.scnn_speedup

    def test_energy_relative_to_dcnn(self, small_workload):
        sim = simulate_layer(small_workload)
        assert sim.energy_relative_to_dcnn("DCNN") == pytest.approx(1.0)
        assert sim.energy_relative_to_dcnn("SCNN") > 0.0

    def test_explicit_output_density(self, small_workload):
        sim = simulate_layer(small_workload, output_density=0.25)
        assert sim.output_density == 0.25

    def test_without_oracle_uses_cycle_model_products(self, small_workload):
        sim = simulate_layer(small_workload, include_oracle=False)
        assert sim.oracle_cycles >= 1


class TestSimulateNetwork:
    def test_one_simulation_per_layer(self, tiny_simulation, tiny_network):
        assert [sim.layer_name for sim in tiny_simulation.layers] == [
            spec.name for spec in tiny_network.layers
        ]

    def test_layer_lookup(self, tiny_simulation):
        assert tiny_simulation.layer("conv2").layer_name == "conv2"
        with pytest.raises(KeyError):
            tiny_simulation.layer("missing")

    def test_totals_are_sums(self, tiny_simulation):
        assert tiny_simulation.total_cycles("SCNN") == sum(
            sim.scnn.cycles for sim in tiny_simulation.layers
        )
        assert tiny_simulation.total_cycles("DCNN") == sum(
            sim.dcnn.cycles for sim in tiny_simulation.layers
        )
        assert tiny_simulation.total_cycles("oracle") == sum(
            sim.oracle_cycles for sim in tiny_simulation.layers
        )
        with pytest.raises(KeyError):
            tiny_simulation.total_cycles("TPU")

    def test_network_speedup_consistent(self, tiny_simulation):
        expected = tiny_simulation.total_cycles("DCNN") / tiny_simulation.total_cycles("SCNN")
        assert tiny_simulation.network_speedup == pytest.approx(expected)
        assert tiny_simulation.oracle_network_speedup >= tiny_simulation.network_speedup

    def test_energy_ratios(self, tiny_simulation):
        assert tiny_simulation.network_energy_ratio("DCNN") == pytest.approx(1.0)
        assert 0.0 < tiny_simulation.network_energy_ratio("SCNN") < 1.5
        assert 0.0 < tiny_simulation.network_energy_ratio("DCNN-opt") <= 1.0

    def test_module_aggregation(self, tiny_simulation):
        assert tiny_simulation.modules() == ["front", "back"]
        speedups = tiny_simulation.module_speedup("front")
        assert speedups["DCNN"] == 1.0
        assert speedups["SCNN"] > 0.0
        assert speedups["SCNN (oracle)"] >= speedups["SCNN"]
        utilization = tiny_simulation.module_utilization("back")
        assert 0.0 < utilization["multiplier_utilization"] <= 1.0
        assert 0.0 <= utilization["idle_fraction"] < 1.0

    def test_output_density_propagates_from_successor(self, tiny_network, tiny_sparsity):
        workloads = build_network_workloads(tiny_network, tiny_sparsity, seed=5)
        simulation = simulate_network(tiny_network, workloads=workloads)
        # conv1's output density is conv2's measured input activation density.
        assert simulation.layers[0].output_density == pytest.approx(
            workloads[1].activation_density
        )
        # The last layer has no successor and falls back to the default.
        assert simulation.layers[-1].output_density == DEFAULT_OUTPUT_DENSITY


class TestAlexNetEndToEnd:
    """Full-size AlexNet is small enough to simulate in a few seconds and
    provides the paper-level integration check."""

    @pytest.fixture(scope="class")
    def alexnet_simulation(self):
        return simulate_network(alexnet(), seed=0)

    def test_speedup_in_paper_regime(self, alexnet_simulation):
        # Paper: 2.37x; the reproduction lands in the same band.
        assert 1.8 < alexnet_simulation.network_speedup < 3.8

    def test_oracle_bounds_scnn(self, alexnet_simulation):
        assert (
            alexnet_simulation.oracle_network_speedup
            > alexnet_simulation.network_speedup
        )

    def test_energy_improvements_in_paper_regime(self, alexnet_simulation):
        scnn_ratio = alexnet_simulation.network_energy_ratio("SCNN")
        opt_ratio = alexnet_simulation.network_energy_ratio("DCNN-opt")
        assert 0.25 < scnn_ratio < 0.7    # paper: ~1/2.3
        assert 0.35 < opt_ratio < 0.75    # paper: ~1/2.0

    def test_dense_first_layer_is_worst_case(self, alexnet_simulation):
        # conv1 has 100% activation density: smallest speedup of the network.
        conv1 = alexnet_simulation.layer("conv1")
        others = [
            sim.scnn_speedup
            for sim in alexnet_simulation.layers
            if sim.layer_name != "conv1"
        ]
        assert conv1.scnn_speedup < min(others)
