"""Tests for the dynamic concurrency checker (`repro.devtools.locks`).

Covers cycle detection on the site-level lock-order graph, re-entrant
RLock handling, ``threading.Condition`` compatibility, the audit-hook
I/O-under-lock detector, and the module-scoped ``threading`` patching
that `track_locks` performs (including restoration on exit).
"""

from __future__ import annotations

import threading
import time

import repro.devtools.locks as locks_mod
from repro.devtools.locks import (
    LockTracker,
    TrackedLock,
    TrackedRLock,
    track_locks,
)


def acquire_in_order(first, second):
    """Take ``first`` then ``second`` on a fresh thread and join it."""

    def body():
        with first:
            with second:
                pass

    thread = threading.Thread(target=body)
    thread.start()
    thread.join()


# -- ordering graph and cycles ----------------------------------------------


def test_opposite_order_acquisitions_report_a_cycle():
    tracker = LockTracker()
    a = TrackedLock(tracker, "a.py:1")
    b = TrackedLock(tracker, "b.py:2")
    acquire_in_order(a, b)
    acquire_in_order(b, a)
    assert tracker.cycles() == [("a.py:1", "b.py:2")]


def test_consistent_order_is_acyclic():
    tracker = LockTracker()
    a = TrackedLock(tracker, "a.py:1")
    b = TrackedLock(tracker, "b.py:2")
    c = TrackedLock(tracker, "c.py:3")
    acquire_in_order(a, b)
    acquire_in_order(b, c)
    acquire_in_order(a, c)
    assert tracker.cycles() == []
    assert tracker.graph() == {
        "a.py:1": ("b.py:2", "c.py:3"),
        "b.py:2": ("c.py:3",),
    }


def test_three_site_rotation_is_one_cycle():
    tracker = LockTracker()
    a = TrackedLock(tracker, "a.py:1")
    b = TrackedLock(tracker, "b.py:2")
    c = TrackedLock(tracker, "c.py:3")
    acquire_in_order(a, b)
    acquire_in_order(b, c)
    acquire_in_order(c, a)
    assert tracker.cycles() == [("a.py:1", "b.py:2", "c.py:3")]


def test_two_instances_from_one_site_nested_is_a_self_edge_cycle():
    tracker = LockTracker()
    first = TrackedLock(tracker, "pool.py:10")
    second = TrackedLock(tracker, "pool.py:10")
    acquire_in_order(first, second)
    assert tracker.cycles() == [("pool.py:10",)]


def test_reentrant_rlock_is_not_a_self_edge():
    tracker = LockTracker()
    rlock = TrackedRLock(tracker, "r.py:1")
    with rlock:
        with rlock:
            pass
    assert tracker.cycles() == []
    assert tracker.graph() == {}


def test_release_pops_per_thread_stack():
    tracker = LockTracker()
    lock = TrackedLock(tracker, "a.py:1")
    assert tracker.held_sites() == ()
    with lock:
        assert tracker.held_sites() == ("a.py:1",)
    assert tracker.held_sites() == ()


def test_nonblocking_failed_acquire_is_not_recorded():
    tracker = LockTracker()
    lock = TrackedLock(tracker, "a.py:1")
    grabbed = threading.Event()
    release = threading.Event()

    def holder():
        with lock:
            grabbed.set()
            release.wait(timeout=5)

    thread = threading.Thread(target=holder)
    thread.start()
    assert grabbed.wait(timeout=5)
    assert lock.acquire(blocking=False) is False
    assert tracker.held_sites() == ()
    release.set()
    thread.join()
    assert tracker.acquisitions == 1


# -- Condition compatibility -------------------------------------------------


def test_condition_over_tracked_lock_wait_notify():
    tracker = LockTracker()
    lock = TrackedLock(tracker, "q.py:1")
    condition = threading.Condition(lock)
    results = []

    def waiter():
        with condition:
            condition.wait(timeout=5)
            results.append("woke")

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.1)
    with condition:
        condition.notify_all()
    thread.join()
    assert results == ["woke"]
    assert tracker.cycles() == []


def test_condition_over_tracked_rlock_wait_notify():
    tracker = LockTracker()
    rlock = TrackedRLock(tracker, "q.py:2")
    condition = threading.Condition(rlock)
    results = []

    def waiter():
        with condition:
            condition.wait(timeout=5)
            results.append("woke")

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.1)
    with condition:
        condition.notify_all()
    thread.join()
    assert results == ["woke"]
    # wait() fully released the lock, reacquired it, and the per-thread
    # stacks settled back to empty.
    assert tracker.held_sites() == ()


# -- I/O-under-lock audit ----------------------------------------------------


def test_io_under_tracked_lock_is_recorded(tmp_path):
    with track_locks(modules=()) as tracker:
        lock = TrackedLock(tracker, "io.py:1")
        with lock:
            (tmp_path / "f.txt").write_text("x")
        violations = list(tracker.io_violations)
    assert violations
    assert violations[0].event == "open"
    assert violations[0].held_sites == ("io.py:1",)
    assert "io.py:1" in violations[0].format()


def test_io_without_held_lock_is_not_recorded(tmp_path):
    with track_locks(modules=()) as tracker:
        lock = TrackedLock(tracker, "io.py:1")
        with lock:
            pass
        (tmp_path / "f.txt").write_text("x")
    assert tracker.io_violations == []


def test_io_outside_tracking_window_is_not_recorded(tmp_path):
    with track_locks(modules=()) as tracker:
        lock = TrackedLock(tracker, "io.py:1")
    with lock:
        (tmp_path / "f.txt").write_text("x")
    assert tracker.io_violations == []


# -- module patching ---------------------------------------------------------


def test_track_locks_patches_and_restores_target_modules():
    import repro.service.jobs as jobs_mod

    before = jobs_mod.threading
    with track_locks() as tracker:
        assert isinstance(jobs_mod.threading, locks_mod._ThreadingProxy)
        lock = jobs_mod.threading.Lock()
        assert isinstance(lock, TrackedLock)
        rlock = jobs_mod.threading.RLock()
        assert isinstance(rlock, TrackedRLock)
        # Everything else delegates to the real module.
        assert jobs_mod.threading.Event is threading.Event
        with lock:
            pass
        assert tracker.acquisitions == 1
    assert jobs_mod.threading is before
    assert not tracker.active


def test_track_locks_sites_point_at_creating_line():
    with track_locks(modules=()) as tracker:
        proxy = locks_mod._ThreadingProxy(tracker)
        lock = proxy.Lock()
    assert lock.site.startswith("test_devtools_locks.py:")


def test_queue_and_pool_run_clean_under_tracking():
    from repro.engine import SimulationEngine

    with track_locks() as tracker:
        from repro.service.jobs import JobQueue
        from repro.service.scenarios import default_registry
        from repro.service.worker import WorkerPool

        queue = JobQueue()
        pool = WorkerPool(
            queue,
            default_registry(),
            SimulationEngine(cache_dir=False),
            num_workers=2,
            poll_interval=0.01,
        )
        pool.start()
        pool.stop()
    assert tracker.acquisitions > 0
    assert tracker.cycles() == []


def test_report_shape():
    tracker = LockTracker()
    a = TrackedLock(tracker, "a.py:1")
    b = TrackedLock(tracker, "b.py:2")
    acquire_in_order(a, b)
    report = tracker.report()
    assert report["acquisitions"] == 2
    assert report["graph"] == {"a.py:1": ["b.py:2"]}
    assert report["cycles"] == []
    assert report["io_violations"] == []
