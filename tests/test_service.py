"""Tests for the simulation service (repro.service).

Three layers of coverage:

* unit tests for the job queue (priorities, cancellation, persistence) and
  the scenario registry (validation, defaults, catalogue);
* end-to-end tests that boot the HTTP server on an ephemeral port, drive it
  through :class:`ServiceClient`, and assert that results delivered over
  the wire are **bitwise-identical** to the serial ``simulate_network`` /
  ``dse.sweep`` reference paths — cold cache and warm;
* service behaviour under concurrency: overlapping jobs, repeat submissions
  served without a worker (coalesced or payload fast path — ``/stats``
  counters must account for every submission), job failure isolation, and
  the ``repro submit`` parameter syntax.

Fault injection (worker death, torn journals, backpressure) lives in
``test_service_faults.py``; cross-mode equivalence under concurrent bursts
in ``test_service_concurrency.py``.
"""

import json
import threading
import time

import pytest

from repro.analysis.serialization import design_points_payload, simulation_payload
from repro.engine import SimulationEngine
from repro.nn.networks import get_network
from repro.scnn.config import SCNN_CONFIG
from repro.scnn.simulator import simulate_network
from repro.service import (
    JobFailedError,
    JobQueue,
    Parameter,
    Scenario,
    ScenarioError,
    ScenarioRegistry,
    ServiceClient,
    ServiceError,
    SimulationService,
    create_server,
    default_registry,
)
from repro.service.cli import parse_params
from repro.service.server import ServiceServer
from repro.timeloop.dse import default_candidates, sweep


# -- job queue ------------------------------------------------------------------


class TestJobQueue:
    def test_fifo_within_equal_priority(self):
        queue = JobQueue()
        first = queue.submit("table2")
        second = queue.submit("table2")
        assert queue.claim(timeout=0).id == first.id
        assert queue.claim(timeout=0).id == second.id
        assert queue.claim(timeout=0) is None

    def test_higher_priority_pops_first(self):
        queue = JobQueue()
        low = queue.submit("table2", priority=0)
        high = queue.submit("table2", priority=5)
        assert queue.claim(timeout=0).id == high.id
        assert queue.claim(timeout=0).id == low.id

    def test_lifecycle_and_counts(self):
        queue = JobQueue()
        job = queue.submit("table2")
        assert job.state == "queued" and queue.depth() == 1
        claimed = queue.claim(timeout=0)
        assert claimed.state == "running" and claimed.started_at is not None
        done = queue.mark_done(job.id, {"answer": 42})
        assert done.state == "done" and done.result == {"answer": 42}
        assert queue.counts()["done"] == 1 and queue.depth() == 0

    def test_cancel_only_affects_queued_jobs(self):
        queue = JobQueue()
        first = queue.submit("table2")
        second = queue.submit("table2")
        claimed = queue.claim(timeout=0)
        assert claimed.id == first.id and claimed.state == "running"
        # Running jobs are not cancellable.
        assert queue.cancel(first.id).state == "running"
        # Queued jobs are, and cancelled jobs are skipped by claim.
        assert queue.cancel(second.id).state == "cancelled"
        assert queue.claim(timeout=0) is None
        # Cancelling a terminal job is a no-op.
        assert queue.cancel(second.id).state == "cancelled"

    def test_unknown_job_raises(self):
        queue = JobQueue()
        with pytest.raises(KeyError):
            queue.get("nope")
        with pytest.raises(KeyError):
            queue.mark_done("nope", None)

    def test_records_round_trip_through_json(self):
        queue = JobQueue()
        job = queue.submit("network", {"network": "alexnet"}, priority=3)
        restored = type(job).from_record(json.loads(json.dumps(job.to_record())))
        assert restored.id == job.id
        assert restored.params == {"network": "alexnet"}
        assert restored.priority == 3

    def test_history_bounded_by_max_history(self, tmp_path):
        queue = JobQueue(journal_dir=tmp_path, max_history=2)
        finished = []
        for index in range(4):
            job = queue.submit("table2")
            queue.claim(timeout=0)
            queue.mark_done(job.id, {"index": index})
            finished.append(job.id)
        # Only the two newest terminal jobs remain, in memory and on disk.
        assert [job.id for job in queue.jobs()] == finished[:1:-1]
        assert sorted(path.stem for path in tmp_path.glob("*.json")) == sorted(
            finished[2:]
        )
        with pytest.raises(KeyError):
            queue.get(finished[0])
        # Pruning only ever touches terminal jobs: a running job survives.
        survivor = queue.submit("table2")
        queue.claim(timeout=0)
        assert queue.get(survivor.id).state == "running"

    def test_claim_skips_heap_entries_of_pruned_jobs(self):
        queue = JobQueue(max_history=1)
        cancelled = queue.submit("table2")
        queue.cancel(cancelled.id)  # heap entry survives the cancellation
        done = queue.submit("table2")
        queue.claim(timeout=0)
        queue.mark_done(done.id, None)  # prunes `cancelled` out of history
        with pytest.raises(KeyError):
            queue.get(cancelled.id)
        # The stale heap entry must be skipped, not crash the claimer.
        fresh = queue.submit("table2")
        assert queue.claim(timeout=0).id == fresh.id

    def test_journal_write_failure_degrades_not_crashes(self, tmp_path):
        queue = JobQueue(journal_dir=tmp_path / "journal")
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory", encoding="utf-8")
        queue.journal_dir = blocked  # every journal write now raises OSError
        job = queue.submit("table2")
        queue.claim(timeout=0)
        assert queue.mark_done(job.id, {"ok": True}).state == "done"
        assert queue.journal_errors >= 2  # submit + claim + done transitions
        assert queue.get(job.id).result == {"ok": True}

    def test_malformed_journal_records_are_skipped(self, tmp_path):
        queue = JobQueue(journal_dir=tmp_path)
        good = queue.submit("table2")
        (tmp_path / "torn.json").write_text("{not json", encoding="utf-8")
        (tmp_path / "list.json").write_text("[]", encoding="utf-8")
        (tmp_path / "schema.json").write_text(
            '{"submitted_at": 1.0, "state": "queued"}', encoding="utf-8"
        )
        restored = JobQueue.load(tmp_path)
        assert [job.id for job in restored.jobs()] == [good.id]

    def test_journal_restores_history_and_requeues_unfinished(self, tmp_path):
        queue = JobQueue(journal_dir=tmp_path)
        finished = queue.submit("table2")
        queue.claim(timeout=0)
        queue.mark_done(finished.id, {"rows": []})
        interrupted = queue.submit("network", {"network": "alexnet"})
        queue.claim(timeout=0)  # running when the "process" dies
        still_queued = queue.submit("dse_sweep", {"network": "alexnet"}, priority=2)

        restored = JobQueue.load(tmp_path)
        assert restored.get(finished.id).state == "done"
        assert restored.get(finished.id).result == {"rows": []}
        # Interrupted running job and the queued job are both claimable again,
        # the higher-priority one first.
        assert restored.get(interrupted.id).state == "queued"
        assert restored.claim(timeout=0).id == still_queued.id
        assert restored.claim(timeout=0).id == interrupted.id


# -- scenario registry ----------------------------------------------------------


class TestScenarios:
    def test_default_registry_covers_the_catalogue(self):
        registry = default_registry()
        assert set(registry.names()) == {
            "layer", "network", "dse_sweep", "fig8", "fig10", "table2",
            "compare",
        }
        catalogue = registry.describe()
        json.dumps(catalogue)  # schema documents must be JSON-serializable
        by_name = {entry["name"]: entry for entry in catalogue}
        network_params = {
            p["name"]: p for p in by_name["network"]["parameters"]
        }
        # Choices are a live view of the workload registry (paper trio,
        # stem variant, synthetic zoo, runtime registrations).
        assert {"alexnet", "googlenet", "vggnet", "googlenet-stem",
                "plain-cnn-8"} <= set(network_params["network"]["choices"])
        assert network_params["seed"]["default"] == 0
        assert network_params["density_profile"]["default"] == ""

    def test_validation_applies_defaults_and_types(self):
        scenario = default_registry().get("network")
        assert scenario.validate({}) == {
            "network": "alexnet", "seed": 0, "density_profile": "",
        }
        assert scenario.validate({"seed": 7})["seed"] == 7
        with pytest.raises(ScenarioError, match="must be an integer"):
            scenario.validate({"seed": "seven"})
        with pytest.raises(ScenarioError, match="must be one of"):
            scenario.validate({"network": "resnet"})
        with pytest.raises(ScenarioError, match="does not accept"):
            scenario.validate({"networks": ["alexnet"]})

    def test_int_parameters_accept_integral_json_floats(self):
        """JSON encoders that float-ize numbers must not break int params."""
        scenario = default_registry().get("network")
        coerced = scenario.validate({"seed": 4.0})["seed"]
        assert coerced == 4 and isinstance(coerced, int)
        with pytest.raises(ScenarioError, match="must be an integer"):
            scenario.validate({"seed": 4.5})
        with pytest.raises(ScenarioError, match="must be an integer"):
            scenario.validate({"seed": True})

    def test_network_choices_match_case_insensitively(self):
        """Display-cased names canonicalise to the registered spelling."""
        scenario = default_registry().get("network")
        assert scenario.validate({"network": "AlexNet"})["network"] == "alexnet"
        fig8 = default_registry().get("fig8")
        assert fig8.validate({"networks": "AlexNet,VGGNET"})["networks"] == [
            "alexnet", "vggnet",
        ]

    def test_density_profile_validated_against_live_profile_registry(self):
        scenario = default_registry().get("compare")
        # Rejected at validation time — a typo never reaches the queue.
        with pytest.raises(ScenarioError, match="must be one of"):
            scenario.validate({"networks": ["alexnet"],
                               "density_profile": "bogus"})
        # Profiles registered after the scenario registry was built are
        # accepted: the choices resolve against the live profile registry.
        from repro.workloads import register_profile, uniform_profile
        from repro.workloads.profiles import unregister_profile

        register_profile(uniform_profile(0.61))
        try:
            params = scenario.validate({"density_profile": "uniform-61"})
            assert params["density_profile"] == "uniform-61"
        finally:
            unregister_profile("uniform-61")

    def test_required_parameter_enforced(self):
        scenario = default_registry().get("layer")
        with pytest.raises(ScenarioError, match="requires parameter 'layer'"):
            scenario.validate({"network": "alexnet"})

    def test_list_parameters_accept_comma_strings(self):
        scenario = default_registry().get("fig8")
        assert scenario.validate({"networks": "alexnet,googlenet"})["networks"] == [
            "alexnet", "googlenet",
        ]
        with pytest.raises(ScenarioError, match="must be one of"):
            scenario.validate({"networks": ["alexnet", "resnet"]})

    def test_compare_scenario_validates_architectures(self):
        scenario = default_registry().get("compare")
        params = scenario.validate({"architectures": "SCNN,SCNN-SparseW"})
        assert params["architectures"] == ["SCNN", "SCNN-SparseW"]
        assert params["networks"] == ["alexnet", "googlenet", "vggnet"]
        # Names are checked against the *live* architecture registry when the
        # scenario runs (so runtime-registered variants are accepted), with
        # the catalogue-listing error surfacing before any simulation work.
        engine = SimulationEngine(cache_dir=False)
        with pytest.raises(ScenarioError, match="unknown architecture 'TPU'"):
            scenario.run(engine, {"architectures": ["TPU"]})

    def test_unknown_scenario_names_the_catalogue(self):
        with pytest.raises(ScenarioError, match="available: .*network"):
            default_registry().get("bogus")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        scenario = Scenario("x", "", lambda engine, params: None)
        registry.register(scenario)
        with pytest.raises(ValueError):
            registry.register(scenario)


# -- submit CLI parameter syntax -------------------------------------------------


class TestParamParsing:
    def test_json_values_with_string_fallback(self):
        params = parse_params(
            ["seed=3", "network=alexnet", "include_baseline=false",
             'networks=["alexnet","vggnet"]']
        )
        assert params == {
            "seed": 3,
            "network": "alexnet",
            "include_baseline": False,
            "networks": ["alexnet", "vggnet"],
        }

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            parse_params(["seed"])

    def test_submit_network_and_profile_shorthand_flags(self):
        from repro.service.cli import build_submit_parser

        args = build_submit_parser().parse_args(
            ["network", "--network", "plain-cnn-8",
             "--density-profile", "uniform-25"]
        )
        assert args.network == "plain-cnn-8"
        assert args.density_profile == "uniform-25"

    def test_submit_shorthand_conflicting_with_param_is_rejected(self, capsys):
        from repro.service.cli import submit_main

        code = submit_main(
            ["network", "--param", "network=alexnet", "--network", "vggnet"]
        )
        assert code == 2
        assert "conflicts with --param" in capsys.readouterr().err

    def test_network_shorthand_maps_to_the_declared_parameter(self):
        from repro.service.cli import network_param_key

        catalogue = {s["name"]: s for s in default_registry().describe()}
        assert network_param_key(catalogue["network"]) == "network"
        assert network_param_key(catalogue["layer"]) == "network"
        for plural in ("compare", "fig8", "fig10"):
            assert network_param_key(catalogue[plural]) == "networks"
        # Unknown scenario / unreachable service: default to the singular.
        assert network_param_key(None) == "network"


# -- end to end over HTTP --------------------------------------------------------


@pytest.fixture()
def service_client(tmp_path):
    """A running server (ephemeral port, tmp disk cache) and its client."""
    engine = SimulationEngine(cache_dir=tmp_path / "cache")
    server = create_server(port=0, engine=engine, num_workers=4)
    server.start()
    try:
        yield ServiceClient(server.url), server
    finally:
        server.stop()


class TestServiceEndToEnd:
    def test_health_scenarios_and_stats_endpoints(self, service_client):
        client, server = service_client
        health = client.health()
        assert health["status"] == "ok" and health["workers"] == 4
        assert {entry["name"] for entry in client.scenarios()} >= {
            "network", "dse_sweep", "fig8",
        }
        stats = client.stats()
        assert stats["queue"]["depth"] == 0
        assert stats["workers"]["num_workers"] == 4
        assert stats["engine"]["hit_rate"] == 0.0

    def test_compare_scenario_end_to_end(self, service_client):
        """The compare scenario round-trips and matches the in-process sweep."""
        from repro.analysis.serialization import comparison_payload
        from repro.arch.compare import compare_network

        client, server = service_client
        payload = client.run(
            "compare",
            {"networks": ["alexnet"], "architectures": ["DCNN", "SCNN"]},
            timeout=300.0,
        )
        local = comparison_payload(
            compare_network(
                "alexnet", ["DCNN", "SCNN"], engine=server.service.engine
            )
        )
        assert payload["comparisons"]["AlexNet"] == local

    def test_concurrent_jobs_bitwise_identical_to_serial_paths(
        self, service_client
    ):
        client, server = service_client
        # Overlapping submissions: two full networks, a DSE sweep, and a
        # repeat of each — all in flight at once across 4 workers.
        submissions = [
            ("network", {"network": "alexnet", "seed": 0}),
            ("network", {"network": "googlenet", "seed": 0}),
            ("dse_sweep", {"network": "alexnet"}),
            ("network", {"network": "alexnet", "seed": 0}),
            ("dse_sweep", {"network": "alexnet"}),
        ]
        job_ids = [
            client.submit(scenario, params) for scenario, params in submissions
        ]
        results = []
        for job_id in job_ids:
            record = client.wait(job_id, timeout=120)
            assert record["state"] == "done", record
            results.append(client.result(job_id))

        # Reference payloads from the serial, in-process paths.
        reference_network = {
            name: simulation_payload(simulate_network(get_network(name), seed=0))
            for name in ("alexnet", "googlenet")
        }
        candidates = [SCNN_CONFIG] + default_candidates()
        reference_sweep = design_points_payload(
            sweep(candidates, get_network("alexnet"))
        )
        reference_sweep["network"] = "alexnet"

        def canonical(payload):
            return json.dumps(payload, sort_keys=True)

        assert canonical(results[0]) == canonical(reference_network["alexnet"])
        assert canonical(results[1]) == canonical(reference_network["googlenet"])
        assert canonical(results[2]) == canonical(reference_sweep)
        # The repeats are byte-for-byte the same payloads (served warm).
        assert canonical(results[3]) == canonical(results[0])
        assert canonical(results[4]) == canonical(results[2])

        # The repeats never cost a worker: they were coalesced onto the
        # in-flight original or answered from the payload fast path.  Every
        # submission is accounted for by exactly one of the three tiers.
        stats = client.stats()
        service = stats["service"]
        assert stats["workers"]["jobs_completed"] == 3
        assert service["coalesced"] + service["fast_path_hits"] == 2
        assert (
            stats["workers"]["jobs_completed"]
            + service["coalesced"]
            + service["fast_path_hits"]
        ) == len(submissions)

    def test_warm_cache_across_service_restarts(self, tmp_path):
        # fast_path=False so the repeat travels queue -> worker -> engine and
        # exercises the *engine's* disk cache (the payload store's own
        # across-restart warmth is covered in test_service_concurrency.py).
        cache_dir = tmp_path / "shared-cache"
        payloads = []
        disk_hits = []
        for _ in range(2):
            engine = SimulationEngine(cache_dir=cache_dir)
            server = create_server(
                port=0, engine=engine, num_workers=2, fast_path=False
            )
            server.start()
            try:
                client = ServiceClient(server.url)
                payloads.append(client.run("network", {"network": "alexnet"}))
                disk_hits.append(client.stats()["engine"]["disk_hits"])
            finally:
                server.stop()
        assert json.dumps(payloads[0], sort_keys=True) == json.dumps(
            payloads[1], sort_keys=True
        )
        assert disk_hits[0] == 0  # cold
        assert disk_hits[1] > 0  # warm: the second service never recomputed

    def test_unknown_scenario_and_bad_params_rejected_at_submit(
        self, service_client
    ):
        client, _ = service_client
        with pytest.raises(ServiceError, match="unknown scenario") as excinfo:
            client.submit("bogus")
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError, match="must be one of"):
            client.submit("network", {"network": "resnet"})
        with pytest.raises(ServiceError, match="requires parameter"):
            client.submit("layer", {"network": "alexnet"})
        # A float-ized integer priority is the integer (the JSON round-trip
        # case); a fractional one is still a 400.
        import json as json_module
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/jobs",
            data=json_module.dumps(
                {"scenario": "table2", "params": {}, "priority": 4.0}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            record = json_module.loads(response.read())
        assert response.status == 202 and record["priority"] == 4
        with pytest.raises(ServiceError, match="priority"):
            client.submit("table2", priority=4.5)
        # Nothing unrunnable ever reached the queue (the accepted
        # float-priority table2 job is runnable and may be in any state).
        assert client.stats()["queue"]["jobs"]["failed"] == 0

    def test_unknown_job_and_endpoint_are_404(self, service_client):
        client, _ = service_client
        for path in ("/jobs/nope", "/results/nope", "/bogus"):
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", path)
            assert excinfo.value.status == 404

    def test_extra_path_segments_are_404_not_prefix_matches(self, service_client):
        client, _ = service_client
        job_id = client.submit("table2")
        client.wait(job_id, timeout=30)
        # Deep paths must not act on their two-segment prefix.
        for method, path in (
            ("GET", f"/jobs/{job_id}/result"),
            ("GET", f"/results/{job_id}/extra"),
            ("DELETE", f"/jobs/{job_id}/anything"),
        ):
            with pytest.raises(ServiceError) as excinfo:
                client._request(method, path)
            assert excinfo.value.status == 404
        # The well-formed requests still work.
        assert client.job(job_id)["state"] == "done"
        assert client.result(job_id)["config"] == "SCNN"

    def test_layer_scenario_validates_layer_name(self, service_client):
        client, _ = service_client
        job_id = client.submit("layer", {"network": "alexnet", "layer": "convX"})
        record = client.wait(job_id, timeout=30)
        assert record["state"] == "failed"
        with pytest.raises(JobFailedError) as excinfo:
            client.result(job_id)
        assert "has no layer" in (excinfo.value.detail or "")


# -- concurrency behaviour with a controllable scenario --------------------------


def _blocking_registry(started: threading.Event, release: threading.Event):
    """A registry with controllable scenarios for queue-behaviour tests."""
    registry = ScenarioRegistry()

    def _block(engine, params):
        started.set()
        assert release.wait(timeout=30)
        return {"blocked": True}

    def _echo(engine, params):
        return {"tag": params["tag"]}

    def _boom(engine, params):
        raise RuntimeError("scenario exploded")

    registry.register(Scenario("block", "hold a worker", _block))
    registry.register(
        Scenario("echo", "return the tag", _echo, (Parameter("tag", "str"),))
    )
    registry.register(Scenario("boom", "always fails", _boom))
    return registry


class TestQueueBehaviourOverHttp:
    @pytest.fixture()
    def controllable(self):
        started, release = threading.Event(), threading.Event()
        registry = _blocking_registry(started, release)
        service = SimulationService(
            engine=SimulationEngine(cache_dir=False),
            registry=registry,
            num_workers=1,
        )
        server = ServiceServer(service, port=0)
        server.start()
        try:
            yield ServiceClient(server.url), started, release
        finally:
            release.set()
            server.stop()

    def test_priority_order_cancellation_and_pending_results(self, controllable):
        client, started, release = controllable
        blocker = client.submit("block")
        assert started.wait(timeout=10)  # the single worker is now held

        low = client.submit("echo", {"tag": "low"}, priority=0)
        high = client.submit("echo", {"tag": "high"}, priority=9)
        doomed = client.submit("echo", {"tag": "never"}, priority=0)

        # While queued/running: /results answers 409, /stats sees the depth.
        with pytest.raises(ServiceError) as excinfo:
            client.result(low)
        assert excinfo.value.status == 409
        stats = client.stats()
        assert stats["queue"]["depth"] == 3
        assert stats["workers"]["busy_workers"] == 1
        assert stats["workers"]["utilization"] == 1.0

        # Cancel one queued job; running jobs are not cancellable.
        assert client.cancel(doomed)["state"] == "cancelled"
        assert client.cancel(blocker)["state"] == "running"

        release.set()
        order = [
            client.wait(job_id, timeout=30) for job_id in (blocker, high, low)
        ]
        assert [record["state"] for record in order] == ["done"] * 3
        # The high-priority job ran before the earlier-submitted low one.
        assert order[1]["started_at"] <= order[2]["started_at"]
        assert client.result(high) == {"tag": "high"}
        with pytest.raises(JobFailedError) as excinfo:
            client.result(doomed)
        assert excinfo.value.state == "cancelled"

    def test_failed_job_keeps_detail_and_spares_the_worker(self, controllable):
        client, _, _ = controllable
        failed = client.submit("boom")
        record = client.wait(failed, timeout=30)
        assert record["state"] == "failed"
        with pytest.raises(JobFailedError) as excinfo:
            client.result(failed)
        assert "scenario exploded" in (excinfo.value.detail or "")
        # The worker survived and still serves jobs.
        assert client.run("echo", {"tag": "alive"}, timeout=30) == {"tag": "alive"}


# -- journalled service restarts -------------------------------------------------


class TestServiceJournal:
    def test_queued_work_survives_a_restart(self, tmp_path):
        journal = tmp_path / "journal"
        first = SimulationService(
            engine=SimulationEngine(cache_dir=False),
            registry=default_registry(),
            num_workers=1,
            journal_dir=journal,
        )
        # Never start workers: the job stays queued when the service "dies".
        job = first.submit("table2")
        assert first.job(job.id).state == "queued"

        second = SimulationService(
            engine=SimulationEngine(cache_dir=False),
            registry=default_registry(),
            num_workers=1,
            journal_dir=journal,
        )
        assert second.job(job.id).state == "queued"
        second.start()
        try:
            deadline = time.monotonic() + 30
            while not second.job(job.id).is_terminal:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            finished = second.job(job.id)
            assert finished.state == "done"
            assert finished.result["rows"]
        finally:
            second.stop()
