"""Unit tests for coordinate arithmetic (repro.tensor.coordinates)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tensor.coordinates import (
    delinearize,
    halo_extent,
    linearize,
    output_coordinate,
    output_extent,
)


class TestLinearize:
    def test_matches_numpy_ravel_order(self):
        dims = (3, 4, 5)
        array = np.arange(np.prod(dims)).reshape(dims)
        for coords, value in np.ndenumerate(array):
            assert linearize(coords, dims) == value

    def test_single_dimension(self):
        assert linearize((3,), (7,)) == 3

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            linearize((1, 2), (3,))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            linearize((3,), (3,))
        with pytest.raises(ValueError):
            linearize((-1,), (3,))

    @given(
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4).flatmap(
            lambda dims: st.tuples(
                st.just(tuple(dims)),
                st.tuples(*[st.integers(min_value=0, max_value=d - 1) for d in dims]),
            )
        )
    )
    def test_roundtrip_with_delinearize(self, dims_and_coords):
        dims, coords = dims_and_coords
        offset = linearize(coords, dims)
        assert delinearize(offset, dims) == coords


class TestDelinearize:
    def test_known_values(self):
        assert delinearize(0, (2, 3)) == (0, 0)
        assert delinearize(5, (2, 3)) == (1, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            delinearize(6, (2, 3))

    def test_every_offset_unique(self):
        dims = (4, 3, 2)
        seen = {delinearize(i, dims) for i in range(24)}
        assert len(seen) == 24


class TestOutputCoordinate:
    def test_unit_stride_no_padding(self):
        # out_x = in_x - r
        assert output_coordinate(5, 7, 2, 3) == (3, 4)

    def test_padding_shifts_origin(self):
        assert output_coordinate(0, 0, 0, 0, pad=1) == (1, 1)

    def test_negative_coordinates_rejected(self):
        assert output_coordinate(0, 0, 1, 0) is None
        assert output_coordinate(0, 0, 0, 2) is None

    def test_stride_skips_non_multiples(self):
        assert output_coordinate(4, 4, 0, 0, stride=2) == (2, 2)
        assert output_coordinate(5, 4, 0, 0, stride=2) is None

    def test_stride_with_padding(self):
        # in_x + pad - r = 5 + 1 - 2 = 4; 4 / 2 = 2
        assert output_coordinate(5, 3, 2, 0, stride=2, pad=1) == (2, 2)

    @given(
        st.integers(0, 30), st.integers(0, 30), st.integers(0, 6), st.integers(0, 6),
        st.integers(1, 4), st.integers(0, 3),
    )
    def test_consistent_with_forward_mapping(self, x, y, r, s, stride, pad):
        coords = output_coordinate(x, y, r, s, stride=stride, pad=pad)
        if coords is not None:
            out_x, out_y = coords
            # The forward convolution relation must hold exactly.
            assert out_x * stride - pad + r == x
            assert out_y * stride - pad + s == y


class TestOutputExtent:
    @pytest.mark.parametrize(
        "input_size,filter_size,stride,pad,expected",
        [
            (227, 11, 4, 0, 55),   # AlexNet conv1
            (27, 5, 1, 2, 27),     # AlexNet conv2
            (224, 3, 1, 1, 224),   # VGG conv1_1
            (28, 1, 1, 0, 28),     # GoogLeNet 1x1
            (224, 7, 2, 3, 112),   # GoogLeNet stem conv1
        ],
    )
    def test_catalogue_extents(self, input_size, filter_size, stride, pad, expected):
        assert output_extent(input_size, filter_size, stride, pad) == expected

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            output_extent(2, 5, 1, 0)


class TestHaloExtent:
    def test_three_by_three_unit_stride(self):
        assert halo_extent(3, 1) == 2

    def test_pointwise_has_no_halo(self):
        assert halo_extent(1, 1) == 0

    def test_stride_shrinks_halo(self):
        assert halo_extent(11, 4) == 2
