"""Concurrency equivalence and queue-invariant tests for the service.

Three concerns:

* **burst equivalence** — 64 concurrent submissions (a shuffled mix of
  duplicates and distinct requests) against ephemeral HTTP servers in both
  worker modes: every duplicate receives the bitwise-identical payload, the
  two modes agree bitwise, and the ``/stats`` counters account for every
  submission (``jobs_completed + coalesced + fast_path_hits`` equals the
  burst size — nothing double-served, nothing lost);
* **payload-store warmth** — a repeat submission against a *restarted*
  service is answered from the on-disk payload store without a worker;
* **property-style queue invariants** — random operation interleavings
  (single-threaded with a reference model, and genuinely multi-threaded)
  never drive a :class:`JobQueue` job through an illegal state transition.
"""

import json
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import SimulationEngine
from repro.service import (
    JOB_STATES,
    JobQueue,
    Parameter,
    Scenario,
    ScenarioRegistry,
    ServiceClient,
    create_server,
)

BURST = 64
DISTINCT_VALUES = list(range(8))


def _compute_registry():
    """A cheap, deterministic scenario (fork-safe: no shared events)."""
    registry = ScenarioRegistry()

    def _compute(engine, params):
        value = params["value"]
        time.sleep(params["delay"])
        return {
            "value": value,
            "squared": value * value,
            "scaled": value * 0.125,
            "label": f"item-{value}",
        }

    registry.register(
        Scenario(
            "compute", "deterministic arithmetic", _compute,
            (
                Parameter("value", "int"),
                Parameter("delay", "float", default=0.02),
            ),
        )
    )
    return registry


def _burst_values(seed=0):
    """64 values over 8 distinct requests, shuffled deterministically."""
    values = [DISTINCT_VALUES[i % len(DISTINCT_VALUES)] for i in range(BURST)]
    random.Random(seed).shuffle(values)
    return values


def _run_burst(mode, tmp_path):
    """Submit the burst concurrently; returns (payload-by-value, stats)."""
    engine = SimulationEngine(cache_dir=tmp_path / f"cache-{mode}")
    server = create_server(
        port=0,
        engine=engine,
        registry=_compute_registry(),
        num_workers=2,
        mode=mode,
    )
    server.start()
    try:
        client = ServiceClient(server.url)

        def submit_and_collect(value):
            job_id = client.submit("compute", {"value": value})
            record = client.wait(job_id, timeout=60)
            assert record["state"] == "done", record
            return value, json.dumps(client.result(job_id), sort_keys=True)

        with ThreadPoolExecutor(max_workers=16) as executor:
            outcomes = list(executor.map(submit_and_collect, _burst_values()))
        stats = client.stats()
    finally:
        server.stop()

    by_value = {}
    for value, payload in outcomes:
        by_value.setdefault(value, set()).add(payload)
    return by_value, stats


class TestConcurrentBurstAcrossModes:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_burst_counters_account_for_every_submission(self, mode, tmp_path):
        by_value, stats = _run_burst(mode, tmp_path)

        # Duplicates are bitwise-identical within the mode.
        assert set(by_value) == set(DISTINCT_VALUES)
        for value, payloads in by_value.items():
            assert len(payloads) == 1, f"value {value} got divergent payloads"

        # Every submission is served by exactly one tier: a worker run, a
        # coalesced fan-out, or the payload fast path.
        service = stats["service"]
        assert service["mode"] == mode
        assert (
            stats["workers"]["jobs_completed"]
            + service["coalesced"]
            + service["fast_path_hits"]
        ) == BURST
        # With 8 distinct requests and 64 submissions, most of the burst
        # must have been deduplicated — and nothing recomputes needlessly:
        # each distinct request runs at most once per *tier transition*
        # (a duplicate can slip past the fast path only while the payload
        # store is still cold for its key).
        assert service["coalesced"] + service["fast_path_hits"] >= BURST // 2
        assert stats["workers"]["jobs_failed"] == 0
        assert service["coalesced_in_flight"] == 0  # every group settled

    def test_thread_and_process_modes_agree_bitwise(self, tmp_path):
        thread_payloads, _ = _run_burst("thread", tmp_path)
        process_payloads, _ = _run_burst("process", tmp_path)
        assert thread_payloads == process_payloads


class TestPayloadStoreWarmth:
    def test_fast_path_survives_a_restart_via_the_disk_store(self, tmp_path):
        cache_dir = tmp_path / "cache"
        for boot in range(2):
            server = create_server(
                port=0,
                engine=SimulationEngine(cache_dir=cache_dir),
                registry=_compute_registry(),
                num_workers=1,
            )
            server.start()
            try:
                client = ServiceClient(server.url)
                job_id = client.submit("compute", {"value": 3})
                record = client.wait(job_id, timeout=30)
                assert record["state"] == "done"
                payload = client.result(job_id)
                stats = client.stats()
                if boot == 0:
                    first_payload = payload
                    assert stats["workers"]["jobs_completed"] == 1
                else:
                    # The restarted service answered from the on-disk
                    # payload store: born done, no worker involved.
                    assert payload == first_payload
                    assert record["started_at"] is None
                    assert stats["service"]["fast_path_hits"] == 1
                    assert stats["workers"]["jobs_completed"] == 0
            finally:
                server.stop()


# -- property-style queue invariants ---------------------------------------------

_LEGAL_TRANSITIONS = {
    # queued -> done/failed without running = a coalesced follower settled
    # by its leader's fan-out; running -> queued = a worker-death requeue.
    "queued": {"queued", "running", "cancelled", "done", "failed"},
    "running": {"running", "done", "failed", "queued"},
    "done": {"done"},
    "failed": {"failed"},
    "cancelled": {"cancelled"},
}


class _QueueModel:
    """Reference model: drives a JobQueue and checks every visible state."""

    def __init__(self, rng):
        self.rng = rng
        self.queue = JobQueue(max_history=None)
        self.last_state = {}  # job id -> last observed state
        self.attempts = {}  # job id -> last observed attempts

    def observe(self, job):
        """Assert ``job``'s state is reachable from its last observed one."""
        previous = self.last_state.get(job.id, "queued")
        assert job.state in _LEGAL_TRANSITIONS[previous], (
            f"illegal transition {previous} -> {job.state} for {job.id}"
        )
        assert job.state in JOB_STATES
        previous_attempts = self.attempts.get(job.id, 0)
        assert job.attempts >= previous_attempts, "attempts went backwards"
        if job.is_terminal:
            assert job.finished_at is not None
        self.last_state[job.id] = job.state
        self.attempts[job.id] = job.attempts

    def known_ids(self):
        return list(self.last_state)

    def step(self):
        operations = [
            self.op_submit,
            self.op_submit_held,
            self.op_claim,
            self.op_mark_done,
            self.op_mark_failed,
            self.op_cancel,
            self.op_requeue,
            self.op_enqueue,
            self.op_check_counts,
        ]
        self.rng.choice(operations)()

    def op_submit(self):
        job = self.queue.submit("s", {"n": self.rng.randrange(100)},
                                priority=self.rng.randrange(3))
        self.observe(job)

    def op_submit_held(self):
        job = self.queue.submit("s", {}, hold=True)
        self.observe(job)

    def op_claim(self):
        job = self.queue.claim(timeout=0)
        if job is not None:
            assert self.last_state.get(job.id) == "queued", (
                "claimed a job that was not queued"
            )
            assert job.state == "running"
            self.observe(job)

    def _random_id(self):
        ids = self.known_ids()
        return self.rng.choice(ids) if ids else None

    def op_mark_done(self):
        job_id = self._random_id()
        if job_id is not None:
            self.observe(self.queue.mark_done(job_id, {"ok": True}))

    def op_mark_failed(self):
        job_id = self._random_id()
        if job_id is not None:
            self.observe(self.queue.mark_failed(job_id, "boom"))

    def op_cancel(self):
        job_id = self._random_id()
        if job_id is not None:
            self.observe(self.queue.cancel(job_id))

    def op_requeue(self):
        job_id = self._random_id()
        if job_id is not None:
            self.observe(self.queue.requeue(job_id))

    def op_enqueue(self):
        job_id = self._random_id()
        if job_id is not None:
            self.observe(self.queue.enqueue(job_id))

    def op_check_counts(self):
        counts = self.queue.counts()
        assert sum(counts.values()) == len(self.known_ids())
        assert self.queue.depth() <= counts["queued"]


class TestJobQueueProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_interleavings_respect_the_state_machine(self, seed):
        model = _QueueModel(random.Random(seed))
        for _ in range(400):
            model.step()
        # Terminal jobs stay terminal under one more sweep of every mutator.
        for job_id, state in list(model.last_state.items()):
            if state in ("done", "failed", "cancelled"):
                model.queue.mark_done(job_id, {"late": True})
                model.queue.mark_failed(job_id, "late")
                model.queue.requeue(job_id)
                model.queue.cancel(job_id)
                assert model.queue.get(job_id).state == state

    def test_threaded_interleaving_settles_every_job_exactly_once(self):
        """Submitters, claimers and cancellers race; no job is lost or torn."""
        queue = JobQueue(max_history=None)
        total = 120
        submitted = []
        submitted_lock = threading.Lock()
        stop_claiming = threading.Event()

        def submitter(offset):
            rng = random.Random(offset)
            for i in range(total // 4):
                job = queue.submit("s", {"i": i}, priority=rng.randrange(3))
                with submitted_lock:
                    submitted.append(job.id)

        def claimer():
            rng = random.Random()
            while not stop_claiming.is_set():
                job = queue.claim(timeout=0.01)
                if job is None:
                    continue
                if rng.random() < 0.2:
                    queue.requeue(job.id)  # a "worker death": try again later
                elif rng.random() < 0.5:
                    queue.mark_failed(job.id, "boom")
                else:
                    queue.mark_done(job.id, {"ok": True})

        def canceller():
            rng = random.Random(99)
            for _ in range(total):
                with submitted_lock:
                    job_id = rng.choice(submitted) if submitted else None
                if job_id is not None:
                    queue.cancel(job_id)
                time.sleep(0.001)

        submitters = [threading.Thread(target=submitter, args=(k,)) for k in range(4)]
        claimers = [threading.Thread(target=claimer) for _ in range(3)]
        extra = threading.Thread(target=canceller)
        for thread in submitters + claimers + [extra]:
            thread.start()
        for thread in submitters + [extra]:
            thread.join(timeout=30)
        # Drain: claimers keep settling until nothing is left in flight.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            counts = queue.counts()
            if counts["queued"] == 0 and counts["running"] == 0:
                break
            time.sleep(0.02)
        stop_claiming.set()
        for thread in claimers:
            thread.join(timeout=30)

        counts = queue.counts()
        assert counts["queued"] == 0 and counts["running"] == 0
        assert sum(counts.values()) == total == len(submitted)
        for job_id in submitted:
            job = queue.get(job_id)
            assert job.is_terminal
            if job.state == "done":
                assert job.result == {"ok": True}
                assert job.error is None
        assert queue.depth() == 0
