"""Tests for the dense DCNN baseline and the SCNN(oracle) bound."""

import numpy as np
import pytest

from repro.nn.layers import ConvLayerSpec
from repro.scnn.config import DCNN_CONFIG, SCNN_CONFIG
from repro.scnn.dcnn import simulate_dcnn_layer
from repro.scnn.oracle import nonzero_multiplies, oracle_cycles

from _helpers import make_workload


class TestDcnnBaseline:
    def test_cycles_independent_of_sparsity(self, small_spec):
        # The dense baseline performs every multiply regardless of operand values.
        result = simulate_dcnn_layer(small_spec)
        assert result.multiplies == small_spec.multiplies
        assert result.cycles > 0

    def test_cycles_close_to_peak_throughput_on_large_layer(self):
        spec = ConvLayerSpec("vgg_like", 128, 256, 56, 56, 3, 3, padding=1)
        result = simulate_dcnn_layer(spec)
        ideal = spec.multiplies / DCNN_CONFIG.total_multipliers
        assert result.cycles == pytest.approx(ideal, rel=0.05)
        assert result.multiplier_utilization > 0.9

    def test_small_plane_loses_utilization(self):
        spec = ConvLayerSpec("late_1x1", 832, 128, 7, 7, 1, 1)
        result = simulate_dcnn_layer(spec)
        # 49 of 64 PEs have work, so utilization cannot exceed 49/64.
        assert result.multiplier_utilization <= 49 / 64 + 1e-9
        assert result.idle_fraction > 0.2

    def test_grouped_layer_counts_grouped_macs(self, grouped_spec):
        result = simulate_dcnn_layer(grouped_spec)
        assert result.multiplies == grouped_spec.multiplies

    def test_busy_cycles_bounded_by_layer_cycles(self, small_spec):
        result = simulate_dcnn_layer(small_spec)
        assert (result.busy_cycles_per_pe <= result.cycles).all()

    def test_config_name_recorded(self, small_spec):
        assert simulate_dcnn_layer(small_spec).config_name == "DCNN"


class TestOracle:
    def test_nonzero_multiplies_dense_case_unpadded(self):
        spec = ConvLayerSpec("nopad", 4, 8, 12, 12, 3, 3)
        weights = np.ones(spec.weight_shape)
        activations = np.ones(spec.input_shape)
        assert nonzero_multiplies(spec, weights, activations) == spec.multiplies

    def test_nonzero_multiplies_dense_case_padded(self, small_spec):
        weights = np.ones(small_spec.weight_shape)
        activations = np.ones(small_spec.input_shape)
        # Padding positions never hold real activations, so the oracle count is
        # strictly below the dense MAC count (which charges for them) but close.
        count = nonzero_multiplies(small_spec, weights, activations)
        assert 0.8 * small_spec.multiplies < count < small_spec.multiplies

    def test_zero_weights_produce_zero_work(self, small_spec):
        weights = np.zeros(small_spec.weight_shape)
        activations = np.ones(small_spec.input_shape)
        assert nonzero_multiplies(small_spec, weights, activations) == 0

    def test_scales_with_density(self, small_spec):
        dense = make_workload(small_spec, 1.0, 1.0)
        sparse = make_workload(small_spec, 0.3, 0.4)
        dense_count = nonzero_multiplies(small_spec, dense.weights, dense.activations)
        sparse_count = nonzero_multiplies(small_spec, sparse.weights, sparse.activations)
        assert sparse_count == pytest.approx(dense_count * 0.12, rel=0.25)

    def test_oracle_cycles_formula(self, small_spec):
        workload = make_workload(small_spec)
        products = nonzero_multiplies(small_spec, workload.weights, workload.activations)
        cycles = oracle_cycles(small_spec, workload.weights, workload.activations)
        assert cycles == max(1, -(-products // SCNN_CONFIG.total_multipliers))

    def test_oracle_cycles_accepts_precomputed_products(self, small_spec):
        workload = make_workload(small_spec)
        assert oracle_cycles(
            small_spec, workload.weights, workload.activations, products=2048
        ) == 2

    def test_oracle_never_slower_than_cycle_model(self, small_workload):
        from repro.scnn.cycles import simulate_layer_cycles

        result = simulate_layer_cycles(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        oracle = oracle_cycles(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        assert oracle <= result.cycles
