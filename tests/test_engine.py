"""Tests for the batched simulation engine (repro.engine).

Three properties matter:

* caching is correct — hits return exactly what a fresh computation would,
  misses recompute, and any input change produces a different key;
* the parallel path is bitwise-identical to the serial path;
* results through the engine equal the plain ``simulate_network`` /
  ``dse.sweep`` reference implementations.
"""

import numpy as np
import pytest

from repro.engine import (
    ResultCache,
    SimulationEngine,
    WorkloadHandle,
    fingerprint,
    resolve_workers,
)
from repro.nn.densities import LayerSparsity, network_sparsity
from repro.nn.inference import build_network_workloads
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network
from repro.scnn.config import SCNN_CONFIG, scnn_with_pe_count
from repro.scnn.simulator import simulate_network
from repro.timeloop.dse import default_candidates, sweep

from _helpers import make_workload


@pytest.fixture(scope="module")
def tiny_network() -> Network:
    return Network(
        "EngineNet",
        (
            ConvLayerSpec("e1", 3, 8, 14, 14, 3, 3, padding=1),
            ConvLayerSpec("e2", 8, 16, 14, 14, 3, 3, padding=1),
            ConvLayerSpec("e3", 16, 8, 7, 7, 1, 1),
        ),
    )


@pytest.fixture(scope="module")
def reference_simulation(tiny_network):
    return simulate_network(tiny_network, seed=0)


def assert_simulations_identical(left, right):
    assert len(left.layers) == len(right.layers)
    for a, b in zip(left.layers, right.layers):
        assert a.layer_name == b.layer_name
        assert a.scnn.cycles == b.scnn.cycles
        assert a.scnn.products == b.scnn.products
        assert np.array_equal(a.scnn.busy_cycles_per_pe, b.scnn.busy_cycles_per_pe)
        assert a.dcnn.cycles == b.dcnn.cycles
        assert a.oracle_cycles == b.oracle_cycles
        assert a.output_density == b.output_density
        assert set(a.energy) == set(b.energy)
        for name in a.energy:
            assert a.energy[name].total == b.energy[name].total


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = fingerprint("unit", value=1)
        assert cache.get(key) is None
        cache.put(key, {"cycles": 42})
        assert cache.get(key) == {"cycles": 42}
        assert cache.hits == 1 and cache.misses == 1
        assert key in cache and len(cache) == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = fingerprint("unit", value=2)
        cache.put(key, "payload")
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()  # bad entry deleted, next put recreates it

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        for value in range(3):
            cache.put(fingerprint("unit", value=value), value)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_lru_eviction_respects_the_bound(self, tmp_path):
        import os

        cache = ResultCache(tmp_path, max_entries=2)
        keys = [fingerprint("unit", value=value) for value in range(3)]
        for age, (key, value) in enumerate(zip(keys[:2], range(2))):
            cache.put(key, value)
            # Order the entries' mtimes explicitly: the filesystem clock may
            # not tick between two immediate writes.
            os.utime(cache._path(key), (age, age))
        assert cache.get(keys[0]) is not None  # touches entry 0: now newest
        cache.put(keys[2], 2)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(keys[1]) is None  # the untouched entry was evicted
        assert cache.get(keys[0]) == 0
        assert cache.get(keys[2]) == 2

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for value in range(5):
            cache.put(fingerprint("unit", value=value), value)
        assert len(cache) == 5
        assert cache.evictions == 0

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)


class TestFingerprint:
    def test_any_input_change_changes_the_key(self, tiny_network):
        sparsity = network_sparsity(tiny_network)
        base = fingerprint("net", network=tiny_network, seed=0, sparsity=sparsity,
                           config=SCNN_CONFIG)
        assert base == fingerprint("net", network=tiny_network, seed=0,
                                   sparsity=sparsity, config=SCNN_CONFIG)
        assert base != fingerprint("net", network=tiny_network, seed=1,
                                   sparsity=sparsity, config=SCNN_CONFIG)
        assert base != fingerprint("net", network=tiny_network, seed=0,
                                   sparsity=sparsity, config=scnn_with_pe_count(16))
        assert base != fingerprint("other", network=tiny_network, seed=0,
                                   sparsity=sparsity, config=SCNN_CONFIG)

    def test_tensor_content_addresses_raw_workloads(self, small_spec):
        workload = make_workload(small_spec)
        same = make_workload(small_spec)
        different = make_workload(small_spec, seed=7)
        assert fingerprint("wl", workload=workload) == fingerprint("wl", workload=same)
        assert fingerprint("wl", workload=workload) != fingerprint(
            "wl", workload=different
        )

    def test_handle_materialization_does_not_change_the_key(self, tiny_network):
        sparsity = network_sparsity(tiny_network)
        spec = tiny_network.layers[0]
        handle = WorkloadHandle.build("EngineNet", 0, 0, spec, sparsity[spec.name])
        slim = WorkloadHandle(
            network_name="EngineNet", seed=0, index=0, spec=spec,
            target=sparsity[spec.name],
            weight_density=handle.weight_density,
            activation_density=handle.activation_density,
        )
        assert fingerprint("wl", workload=handle) == fingerprint("wl", workload=slim)


class TestWorkloadHandle:
    def test_regenerates_exact_tensors(self, tiny_network):
        workloads = build_network_workloads(tiny_network, seed=0)
        sparsity = network_sparsity(tiny_network)
        for index, (spec, workload) in enumerate(
            zip(tiny_network.layers, workloads)
        ):
            handle = WorkloadHandle(
                network_name=tiny_network.name, seed=0, index=index, spec=spec,
                target=sparsity[spec.name],
                weight_density=workload.weight_density,
                activation_density=workload.activation_density,
            )
            assert np.array_equal(handle.weights, workload.weights)
            assert np.array_equal(handle.activations, workload.activations)
            assert handle.nonzero_multiplies == workload.nonzero_multiplies

    def test_pickle_drops_tensors_and_survives_round_trip(self, tiny_network):
        import pickle

        sparsity = network_sparsity(tiny_network)
        spec = tiny_network.layers[0]
        handle = WorkloadHandle.build(tiny_network.name, 0, 0, spec, sparsity[spec.name])
        assert handle._materialized is not None
        restored = pickle.loads(pickle.dumps(handle))
        assert restored._materialized is None
        assert np.array_equal(restored.weights, handle.weights)
        assert len(pickle.dumps(handle)) < 2000  # recipe, not tensors


class TestEngineNetworkSimulation:
    def test_serial_engine_matches_simulate_network(
        self, tiny_network, reference_simulation
    ):
        engine = SimulationEngine(cache_dir=False)
        assert_simulations_identical(
            engine.run_network(tiny_network, seed=0), reference_simulation
        )

    def test_parallel_identical_to_serial(self, tiny_network, reference_simulation):
        engine = SimulationEngine(cache_dir=False)
        parallel = engine.run_network(tiny_network, seed=0, parallel=2)
        assert_simulations_identical(parallel, reference_simulation)

    def test_memory_cache_returns_same_object(self, tiny_network):
        engine = SimulationEngine(cache_dir=False)
        first = engine.run_network(tiny_network, seed=0)
        second = engine.run_network(tiny_network, seed=0)
        assert second is first
        assert engine.memory_hits == 1

    def test_disk_cache_hit_across_engines(
        self, tiny_network, reference_simulation, tmp_path
    ):
        writer = SimulationEngine(cache_dir=tmp_path)
        writer.run_network(tiny_network, seed=0)
        reader = SimulationEngine(cache_dir=tmp_path)
        restored = reader.run_network(tiny_network, seed=0)
        assert reader.disk_cache.hits == 1
        assert_simulations_identical(restored, reference_simulation)
        # The restored simulation's workloads rematerialise real tensors.
        assert restored.layers[0].workload.weights.shape == (8, 3, 3, 3)

    def test_seed_change_is_a_miss(self, tiny_network, tmp_path):
        engine = SimulationEngine(cache_dir=tmp_path)
        engine.run_network(tiny_network, seed=0)
        engine.run_network(tiny_network, seed=1)
        assert len(engine.disk_cache) == 2

    def test_clear_cache(self, tiny_network, tmp_path):
        engine = SimulationEngine(cache_dir=tmp_path)
        engine.run_network(tiny_network, seed=0)
        engine.clear_cache()
        assert len(engine.disk_cache) == 0
        assert engine.stats()["memory_entries"] == 0

    def test_memory_memo_table_lru_bound(self, tiny_network):
        engine = SimulationEngine(cache_dir=False, memory_max_entries=2)
        for seed in range(3):
            engine.run_network(tiny_network, seed=seed)
        stats = engine.stats()
        assert stats["memory_entries"] == 2
        assert stats["memory_evictions"] == 1
        # The oldest entry (seed 0) was evicted; seed 2 is still memoised.
        warm = engine.run_network(tiny_network, seed=2)
        assert engine.run_network(tiny_network, seed=2) is warm
        with pytest.raises(ValueError):
            SimulationEngine(cache_dir=False, memory_max_entries=0)

    def test_stats_reports_hit_rate(self, tiny_network, tmp_path):
        engine = SimulationEngine(cache_dir=tmp_path)
        assert engine.stats()["hit_rate"] == 0.0
        engine.run_network(tiny_network, seed=0)
        engine.run_network(tiny_network, seed=0)  # memo-table hit
        warm = SimulationEngine(cache_dir=tmp_path)
        warm.run_network(tiny_network, seed=0)  # disk hit
        stats = engine.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        warm_stats = warm.stats()
        assert warm_stats["disk_hits"] == 1
        assert warm_stats["hits"] == 1 and warm_stats["misses"] == 0
        assert warm_stats["hit_rate"] == 1.0


class TestEngineRunGrid:
    @pytest.fixture(scope="class")
    def workloads(self, tiny_network):
        return build_network_workloads(tiny_network, seed=0)

    def test_grid_covers_every_cell(self, workloads):
        engine = SimulationEngine(cache_dir=False)
        configs = [SCNN_CONFIG, scnn_with_pe_count(16)]
        run = engine.run(workloads, configs)
        assert len(run.results) == len(workloads)
        assert all(len(row) == len(configs) for row in run.results)
        assert run.total_cycles("SCNN") > 0
        with pytest.raises(KeyError) as excinfo:
            run.column("nonexistent")
        # The error names every configuration the run did evaluate.
        assert "'SCNN'" in str(excinfo.value)
        assert "'SCNN-16PE'" in str(excinfo.value)
        with pytest.raises(KeyError):
            run.total_cycles("also-nonexistent")

    def test_parallel_grid_identical_to_serial(self, workloads):
        configs = [SCNN_CONFIG, scnn_with_pe_count(16)]
        serial = SimulationEngine(cache_dir=False).run(workloads, configs)
        parallel = SimulationEngine(cache_dir=False).run(
            workloads, configs, parallel=2
        )
        for row_s, row_p in zip(serial.results, parallel.results):
            for cell_s, cell_p in zip(row_s, row_p):
                assert cell_s.cycles == cell_p.cycles
                assert cell_s.products == cell_p.products

    def test_cells_individually_cached(self, workloads, tmp_path):
        engine = SimulationEngine(cache_dir=tmp_path)
        engine.run(workloads[:2], [SCNN_CONFIG])
        assert len(engine.disk_cache) == 2
        fresh = SimulationEngine(cache_dir=tmp_path)
        fresh.run(workloads[:2], [SCNN_CONFIG])
        assert fresh.disk_cache.hits == 2 and fresh.disk_cache.misses == 0


class TestEngineSweep:
    def test_matches_serial_dse_sweep(self, tiny_network):
        candidates = default_candidates()
        reference = sweep(candidates, tiny_network)
        engine_points = SimulationEngine(cache_dir=False).sweep(
            candidates, tiny_network, parallel=2
        )
        assert [p.name for p in engine_points] == [p.name for p in reference]
        for ours, theirs in zip(engine_points, reference):
            assert ours.cycles == theirs.cycles
            assert ours.energy == theirs.energy
            assert ours.area_mm2 == theirs.area_mm2

    def test_dse_sweep_parallel_flag_routes_through_engine(self, tiny_network):
        candidates = default_candidates()[:3]
        assert [p.cycles for p in sweep(candidates, tiny_network, parallel=2)] == [
            p.cycles for p in sweep(candidates, tiny_network)
        ]

    def test_sweep_cached(self, tiny_network, tmp_path):
        candidates = default_candidates()[:2]
        engine = SimulationEngine(cache_dir=tmp_path)
        engine.sweep(candidates, tiny_network)
        fresh = SimulationEngine(cache_dir=tmp_path)
        fresh.sweep(candidates, tiny_network)
        assert fresh.disk_cache.hits == 2


class TestResolveWorkers:
    def test_serial_sentinels(self):
        assert resolve_workers(None, 10) == 0
        assert resolve_workers(0, 10) == 0
        assert resolve_workers(1, 10) == 0
        assert resolve_workers(4, 0) == 0

    def test_bounded_by_tasks_and_cpus(self):
        import os

        assert resolve_workers(8, 3) == 3
        assert resolve_workers(-1, 2) == min(os.cpu_count() or 1, 2)


class TestEngineGridPaths:
    def test_sweep_batched_matches_pool_path(self, tiny_network):
        candidates = default_candidates()
        batched = SimulationEngine(cache_dir=False).sweep(candidates, tiny_network)
        pooled = SimulationEngine(cache_dir=False).sweep(
            candidates, tiny_network, parallel=2, batched=False
        )
        for ours, theirs in zip(batched, pooled):
            assert ours.cycles == theirs.cycles
            assert ours.energy == theirs.energy
            assert ours.area_mm2 == theirs.area_mm2

    def test_evaluate_grid_cached_across_engines(self, tiny_network, tmp_path):
        engine = SimulationEngine(cache_dir=tmp_path)
        specs = list(tiny_network.layers)
        first = engine.evaluate_grid(
            specs, [SCNN_CONFIG], weight_density=0.4, activation_density=0.5
        )
        fresh = SimulationEngine(cache_dir=tmp_path)
        second = fresh.evaluate_grid(
            specs, [SCNN_CONFIG], weight_density=0.4, activation_density=0.5
        )
        assert fresh.disk_cache.hits == 1
        assert (first.cycles == second.cycles).all()
        assert (first.energy == second.energy).all()

    def test_run_architectures_dense_fast_path_matches_adapters(self, tiny_network):
        sparsity = network_sparsity(tiny_network)
        workloads = [
            WorkloadHandle.build(
                tiny_network.name, 0, index, spec, sparsity[spec.name]
            )
            for index, spec in enumerate(tiny_network.layers)
        ]
        architectures = ["DCNN", "DCNN-opt", "SCNN"]
        fast = SimulationEngine(cache_dir=False).run_architectures(
            workloads, architectures
        )
        slow = SimulationEngine(cache_dir=False).run_architectures(
            workloads, architectures, batched=False
        )
        for i in range(len(workloads)):
            for j in range(len(architectures)):
                assert fast.results[i][j] == slow.results[i][j]
