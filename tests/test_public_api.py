"""The public API surface advertised in ``repro.__all__`` must exist and work."""

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, *_ = repro.__version__.split(".")
        assert major.isdigit()

    def test_subpackage_alls_resolve(self):
        import repro.dataflow
        import repro.nn
        import repro.scnn
        import repro.tensor
        import repro.timeloop

        for module in (repro.nn, repro.scnn, repro.tensor, repro.dataflow, repro.timeloop):
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_quickstart_snippet_from_readme(self):
        """The README quickstart must keep working verbatim."""
        from repro import get_network, simulate_network

        network = get_network("alexnet")
        result = simulate_network(network, seed=0)
        assert result.network_speedup > 1.0
        assert 0.0 < result.network_energy_ratio("SCNN") < 1.0

    def test_configs_exported(self):
        assert repro.SCNN_CONFIG.name == "SCNN"
        assert repro.DCNN_CONFIG.name == "DCNN"
        assert repro.DCNN_OPT_CONFIG.name == "DCNN-opt"

    def test_docstring_mentions_paper(self):
        assert "SCNN" in repro.__doc__
        assert "ISCA" in repro.__doc__

    def test_available_networks_exported(self):
        assert {"alexnet", "googlenet", "vggnet"} <= set(repro.available_networks())

    def test_workload_registry_exported(self):
        assert {"alexnet", "plain-cnn-8"} <= set(repro.available_workloads())
        assert repro.get_workload("alexnet").density_profile == "measured"
        assert "measured" in repro.available_profiles()
        assert repro.get_profile("dense").name == "dense"
        assert isinstance(repro.get_workload("vggnet"), repro.WorkloadSpec)
