"""Tests for synthetic weight generation and magnitude pruning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.layers import ConvLayerSpec
from repro.nn.pruning import (
    generate_dense_weights,
    generate_pruned_weights,
    measured_density,
    prune_to_density,
)


@pytest.fixture
def spec():
    return ConvLayerSpec("test", 8, 16, 14, 14, 3, 3, padding=1)


class TestGenerateDenseWeights:
    def test_shape_matches_spec(self, spec, rng):
        weights = generate_dense_weights(spec, rng)
        assert weights.shape == spec.weight_shape

    def test_scale_follows_fan_in(self, rng):
        wide = ConvLayerSpec("wide", 512, 16, 14, 14, 3, 3, padding=1)
        narrow = ConvLayerSpec("narrow", 8, 16, 14, 14, 3, 3, padding=1)
        wide_weights = generate_dense_weights(wide, rng)
        narrow_weights = generate_dense_weights(narrow, rng)
        assert wide_weights.std() < narrow_weights.std()

    def test_deterministic_with_seeded_rng(self, spec):
        first = generate_dense_weights(spec, np.random.default_rng(5))
        second = generate_dense_weights(spec, np.random.default_rng(5))
        np.testing.assert_array_equal(first, second)


class TestPruneToDensity:
    def test_hits_target_density_exactly(self, spec, rng):
        weights = generate_dense_weights(spec, rng)
        for density in (0.1, 0.25, 0.5, 0.8):
            pruned = prune_to_density(weights, density, rng)
            expected = int(round(weights.size * density))
            assert np.count_nonzero(pruned) == expected

    def test_keeps_largest_magnitudes(self, rng):
        weights = np.array([0.1, -5.0, 0.2, 3.0, -0.05, 1.0])
        pruned = prune_to_density(weights, 0.5, rng)
        np.testing.assert_array_equal(
            pruned != 0, np.array([False, True, False, True, False, True])
        )

    def test_kept_values_unchanged(self, spec, rng):
        weights = generate_dense_weights(spec, rng)
        pruned = prune_to_density(weights, 0.3, rng)
        mask = pruned != 0
        np.testing.assert_array_equal(pruned[mask], weights[mask])

    def test_density_one_keeps_everything(self, spec, rng):
        weights = generate_dense_weights(spec, rng)
        np.testing.assert_array_equal(prune_to_density(weights, 1.0, rng), weights)

    def test_ties_still_hit_target(self, rng):
        weights = np.ones(100)
        pruned = prune_to_density(weights, 0.37, rng)
        assert np.count_nonzero(pruned) == 37

    def test_original_not_mutated(self, spec, rng):
        weights = generate_dense_weights(spec, rng)
        copy = weights.copy()
        prune_to_density(weights, 0.2, rng)
        np.testing.assert_array_equal(weights, copy)

    def test_invalid_density_rejected(self, spec, rng):
        weights = generate_dense_weights(spec, rng)
        with pytest.raises(ValueError):
            prune_to_density(weights, 0.0, rng)
        with pytest.raises(ValueError):
            prune_to_density(weights, 1.5, rng)

    def test_tiny_density_keeps_at_least_one(self, rng):
        weights = rng.normal(size=10)
        pruned = prune_to_density(weights, 0.001, rng)
        assert np.count_nonzero(pruned) == 1


class TestZeroDensityAndDegenerateShapes:
    """Edge cases: layers with no non-zeros and degenerate tile shapes."""

    def test_all_zero_tensor_prunes_to_all_zero(self, rng):
        weights = np.zeros(64)
        pruned = prune_to_density(weights, 0.25, rng)
        assert pruned.shape == weights.shape
        assert np.count_nonzero(pruned) == 0
        assert measured_density(pruned) == 0.0

    def test_empty_tensor_round_trips(self, rng):
        weights = np.zeros((0,))
        pruned = prune_to_density(weights, 0.5, rng)
        assert pruned.size == 0
        assert measured_density(pruned) == 0.0

    def test_one_by_one_filter_layer(self, rng):
        """A 1x1x1 filter is the degenerate tile shape: one weight total."""
        tiny = ConvLayerSpec("tiny", 1, 1, 1, 1, 1, 1)
        weights = generate_dense_weights(tiny, rng)
        assert weights.shape == (1, 1, 1, 1)
        pruned = prune_to_density(weights, 0.5, rng)
        # The keep-at-least-one guard applies: the single weight survives.
        assert np.count_nonzero(pruned) == 1

    def test_single_element_keeps_value(self, rng):
        weights = np.array([[3.25]])
        pruned = prune_to_density(weights, 0.01, rng)
        np.testing.assert_array_equal(pruned, weights)

    def test_zero_density_rejected_with_message(self, rng):
        with pytest.raises(ValueError, match="density must be in"):
            prune_to_density(np.ones(4), 0.0, rng)
        with pytest.raises(ValueError, match="density must be in"):
            prune_to_density(np.ones(4), -0.1, rng)


class TestGeneratePrunedWeights:
    def test_density_and_shape(self, spec, rng):
        weights = generate_pruned_weights(spec, 0.35, rng)
        assert weights.shape == spec.weight_shape
        assert measured_density(weights) == pytest.approx(0.35, abs=0.01)


class TestMeasuredDensity:
    def test_known_values(self):
        assert measured_density(np.array([0.0, 1.0, 0.0, 2.0])) == 0.5
        assert measured_density(np.zeros(4)) == 0.0
        assert measured_density(np.array([])) == 0.0


@given(
    st.integers(min_value=2, max_value=400),
    st.floats(min_value=0.01, max_value=1.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_pruning_density_property(size, density, seed):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=size)
    pruned = prune_to_density(weights, density, rng)
    expected = max(1, int(round(size * density))) if density < 1.0 else size
    assert np.count_nonzero(pruned) == min(expected, size)
    # Pruned positions were not larger in magnitude than any kept position.
    kept = np.abs(pruned[pruned != 0])
    dropped = np.abs(weights[pruned == 0])
    if kept.size and dropped.size:
        assert dropped.max() <= kept.min() + 1e-9
