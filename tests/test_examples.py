"""Smoke tests: every example script must run end to end.

The examples double as executable documentation; these tests import each one
and call its ``main()`` (except the full paper reproduction, which is covered
piecewise by the experiment tests and the benchmark harness).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart",
            "sparse_layer_anatomy",
            "end_to_end_inference",
            "design_space_exploration",
            "pruning_sensitivity",
            "reproduce_paper",
            "service_client",
            "compare_architectures",
            "workload_zoo",
        } <= names

    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "Network speedup over DCNN" in output
        assert "conv5" in output

    def test_sparse_layer_anatomy(self, capsys):
        load_example("sparse_layer_anatomy").main()
        output = capsys.readouterr().out
        assert "Compressed-sparse storage" in output
        assert "max |simulated - reference|" in output

    def test_end_to_end_inference(self, capsys):
        load_example("end_to_end_inference").main()
        output = capsys.readouterr().out
        assert "TinyNet" in output
        assert "matched the dense reference" in output

    def test_pruning_sensitivity(self, capsys):
        load_example("pruning_sensitivity").main()
        output = capsys.readouterr().out
        assert "Weights kept" in output
        assert "100%" in output

    def test_design_space_exploration(self, capsys):
        load_example("design_space_exploration").main()
        output = capsys.readouterr().out
        assert "PE granularity" in output
        assert "Accumulator banking" in output

    def test_service_client(self, capsys):
        load_example("service_client").main()
        output = capsys.readouterr().out
        assert "Figure 8 via the service" in output
        assert "DSE sweep via the service" in output
        assert "cache hit-rate" in output

    def test_compare_architectures(self, capsys):
        load_example("compare_architectures").main()
        output = capsys.readouterr().out
        assert "Architecture registry catalogue" in output
        assert "SCNN-SparseW" in output
        assert "SCNN-A64" in output
        assert "one registration" in output

    def test_workload_zoo(self, capsys):
        from repro.workloads import default_registry
        from repro.workloads.profiles import unregister_profile

        try:
            load_example("workload_zoo").main()
        finally:
            default_registry().unregister("deep-thin-12")
            unregister_profile("uniform-33")
        output = capsys.readouterr().out
        assert "Registered 'deep-thin-12'" in output
        assert "Cross-architecture comparison" in output
        assert "density as a swept axis" in output

    def test_reproduce_paper_lists_every_experiment(self):
        module = load_example("reproduce_paper")
        titles = [title for title, _ in module.EXPERIMENTS]
        assert len(titles) == 12
        assert any("Figure 8" in title for title in titles)
        assert any("Table III" in title for title in titles)
        assert any("Cross-architecture comparison" in title for title in titles)
