"""Fixture tests for the AST lint engine and every rule in the catalogue.

Each rule gets at least one true-positive (the banned pattern is found)
and one true-negative (the sanctioned spelling of the same pattern is
not), exercised through real files on disk so path-scoped rules see the
package layout they key on.  The suite ends with the self-check that the
shipped `src/` tree is clean at head — the same gate CI runs.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    ALL_RULES,
    SYNTAX_ERROR_RULE,
    default_config,
    get_rules,
    lint_paths,
)
from repro.devtools.lint.cli import lint_main
from repro.devtools.lint.config import path_in_packages

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def write_module(root: Path, relative: str, body: str) -> Path:
    """Write ``body`` (dedented) at ``root/relative`` and return the path."""
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return path


def findings_for(path: Path, rule_id: str):
    """Run one rule over one file and return its findings."""
    report = lint_paths([str(path)], rules=get_rules([rule_id]))
    return report.findings


# -- engine plumbing ---------------------------------------------------------


def test_rule_ids_unique_and_catalogue_nonempty():
    ids = [rule.id for rule in ALL_RULES]
    assert len(ids) == len(set(ids))
    assert len(ids) == 7


def test_get_rules_unknown_id_lists_catalogue():
    with pytest.raises(KeyError, match="no-such-rule"):
        get_rules(["no-such-rule"])


def test_syntax_error_reported_and_not_suppressible(tmp_path):
    path = write_module(
        tmp_path,
        "broken.py",
        """\
        # lint-ok: all
        def f(:
        """,
    )
    report = lint_paths([str(path)])
    assert [f.rule for f in report.findings] == [SYNTAX_ERROR_RULE]


def test_inline_suppression_same_line_and_line_above(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def bad_same_line(x=[]):  # lint-ok: no-mutable-default
            return x


        # lint-ok: no-mutable-default
        def bad_line_above(x={}):
            return x


        def still_bad(x=[]):
            return x
        """,
    )
    report = lint_paths([str(path)], rules=get_rules(["no-mutable-default"]))
    assert len(report.findings) == 1
    assert report.findings[0].line == 10
    assert len(report.suppressed) == 2


def test_suppression_wildcard_all(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def f(x=[]):  # lint-ok: all
            return x
        """,
    )
    report = lint_paths([str(path)], rules=get_rules(["no-mutable-default"]))
    assert report.clean
    assert len(report.suppressed) == 1


def test_baseline_round_trip(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def f(x=[]):
            return x
        """,
    )
    baseline = tmp_path / "baseline.json"
    code = lint_main(
        [str(path), "--rule", "no-mutable-default", "--write-baseline", str(baseline)]
    )
    assert code == 0
    assert json.loads(baseline.read_text())["findings"]
    report = lint_paths(
        [str(path)],
        rules=get_rules(["no-mutable-default"]),
        baseline=str(baseline),
    )
    assert report.clean
    assert len(report.baselined) == 1  # absorbed, but counted


def test_path_in_packages_matches_directory_runs():
    assert path_in_packages("src/repro/service/jobs.py", ("repro/service",))
    assert path_in_packages("tmp/x/repro/service/jobs.py", ("repro/service",))
    assert not path_in_packages("repro/service_extra/jobs.py", ("repro/service",))
    assert not path_in_packages("repro/obs/metrics.py", ("repro/service",))


# -- stdlib-only -------------------------------------------------------------


def test_stdlib_only_flags_third_party_in_service(tmp_path):
    path = write_module(
        tmp_path,
        "repro/service/helper.py",
        """\
        '''doc'''
        import numpy
        """,
    )
    findings = findings_for(path, "stdlib-only")
    assert len(findings) == 1
    assert "numpy" in findings[0].message


def test_stdlib_only_allows_stdlib_and_first_party_in_service(tmp_path):
    path = write_module(
        tmp_path,
        "repro/service/helper.py",
        """\
        '''doc'''
        import json
        import threading
        from repro.engine import SimulationEngine
        """,
    )
    assert findings_for(path, "stdlib-only") == []


def test_stdlib_only_allows_numpy_outside_protected_packages(tmp_path):
    path = write_module(
        tmp_path,
        "repro/scnn/helper.py",
        """\
        '''doc'''
        import numpy as np
        from scipy.special import gammaln
        """,
    )
    assert findings_for(path, "stdlib-only") == []


def test_stdlib_only_flags_unknown_third_party_anywhere(tmp_path):
    path = write_module(
        tmp_path,
        "repro/scnn/helper.py",
        """\
        '''doc'''
        import requests
        """,
    )
    findings = findings_for(path, "stdlib-only")
    assert len(findings) == 1


# -- no-wall-clock-arithmetic ------------------------------------------------


def test_wall_clock_subtraction_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        import time

        def f():
            started = time.time()
            return time.time() - started
        """,
    )
    findings = findings_for(path, "no-wall-clock-arithmetic")
    assert findings, "direct wall-clock subtraction must be flagged"


def test_wall_clock_comparison_of_tainted_name_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        import time

        def f(deadline):
            now = time.time()
            if now > deadline:
                return True
            return False
        """,
    )
    assert findings_for(path, "no-wall-clock-arithmetic")


def test_monotonic_arithmetic_is_sanctioned(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        import time

        def f():
            started = time.monotonic()
            return time.monotonic() - started
        """,
    )
    assert findings_for(path, "no-wall-clock-arithmetic") == []


def test_wall_clock_display_suffix_allowlisted(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        import time

        def f():
            created_at = time.time()
            return {"created_at": created_at}
        """,
    )
    assert findings_for(path, "no-wall-clock-arithmetic") == []


def test_wall_clock_taint_does_not_leak_across_scopes(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        import time

        def outer():
            def inner():
                stamp = time.time()
                return stamp
            stamp = 1.0
            return stamp - 0.5
        """,
    )
    assert findings_for(path, "no-wall-clock-arithmetic") == []


# -- no-lock-held-io ---------------------------------------------------------


def test_open_inside_lock_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        class C:
            def f(self):
                with self._lock:
                    with open("state.json", "w") as fh:
                        fh.write("{}")
        """,
    )
    findings = findings_for(path, "no-lock-held-io")
    assert findings and findings[0].rule == "no-lock-held-io"


def test_os_replace_and_json_dump_inside_condition_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        import json
        import os

        class C:
            def f(self, payload):
                with self._available:
                    json.dump(payload, None)
                    os.replace("a", "b")
        """,
    )
    assert len(findings_for(path, "no-lock-held-io")) == 2


def test_io_outside_lock_and_snapshot_pattern_sanctioned(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        import json

        class C:
            def f(self):
                with self._lock:
                    snapshot = dict(self._state)
                with open("state.json", "w") as fh:
                    json.dump(snapshot, fh)
        """,
    )
    assert findings_for(path, "no-lock-held-io") == []


def test_io_in_nested_function_under_lock_not_lexically_flagged(tmp_path):
    # The rule is lexical by design: the nested def is not *executed*
    # under the lock — the dynamic checker covers the call-through case.
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        class C:
            def f(self):
                with self._lock:
                    def writer():
                        return open("x")
                    self._writer = writer
        """,
    )
    assert findings_for(path, "no-lock-held-io") == []


# -- no-import-time-registry-freeze ------------------------------------------


def test_registry_call_in_default_argument_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        from repro.workloads import available_networks

        def f(networks=tuple(available_networks())):
            return networks
        """,
    )
    assert findings_for(path, "no-import-time-registry-freeze")


def test_registry_call_in_choices_keyword_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        from repro.workloads import available_networks

        def build(parser):
            parser.add_argument("--network", choices=tuple(available_networks()))
        """,
    )
    assert findings_for(path, "no-import-time-registry-freeze")


def test_registry_call_at_module_scope_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        from repro.workloads import available_networks

        KNOWN = tuple(available_networks())
        """,
    )
    assert findings_for(path, "no-import-time-registry-freeze")


def test_registry_resolved_at_call_time_sanctioned(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        from repro.workloads import available_networks

        def validate(name):
            if name not in available_networks():
                raise KeyError(name)
        """,
    )
    assert findings_for(path, "no-import-time-registry-freeze") == []


# -- no-silent-except --------------------------------------------------------


def test_except_pass_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def f(path):
            try:
                return open(path).read()
            except OSError:
                pass
        """,
    )
    findings = findings_for(path, "no-silent-except")
    assert findings and "OSError" in findings[0].message


def test_except_continue_flagged(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def f(paths):
            out = []
            for path in paths:
                try:
                    out.append(open(path).read())
                except OSError:
                    continue
            return out
        """,
    )
    assert findings_for(path, "no-silent-except")


def test_except_with_log_or_raise_or_fallback_sanctioned(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def f(path, log, counter):
            try:
                value = open(path).read()
            except OSError as error:
                log.warning("read_failed", error=str(error))
                value = None
            try:
                return int(value)
            except ValueError:
                counter.inc()
                raise
        """,
    )
    assert findings_for(path, "no-silent-except") == []


def test_except_with_recovery_call_sanctioned(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def f(self, tail):
            try:
                self._send_json(200, {"id": tail})
            except KeyError:
                self._send_error_json(404, "unknown job")
        """,
    )
    assert findings_for(path, "no-silent-except") == []


# -- no-mutable-default ------------------------------------------------------


def test_mutable_defaults_flagged_including_kwonly_and_calls(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def f(x=[], *, y={}):
            return x, y


        def g(z=dict()):
            return z
        """,
    )
    assert len(findings_for(path, "no-mutable-default")) == 3


def test_immutable_defaults_sanctioned(tmp_path):
    path = write_module(
        tmp_path,
        "mod.py",
        """\
        def f(x=(), y=None, z="s", n=0, fr=frozenset()):
            return x, y, z, n, fr
        """,
    )
    assert findings_for(path, "no-mutable-default") == []


# -- docstring-coverage ------------------------------------------------------


def test_docstring_coverage_flags_gated_package_only(tmp_path):
    body = """\
    class Widget:
        def run(self):
            return 1
    """
    gated = write_module(tmp_path, "repro/service/widget.py", body)
    ungated = write_module(tmp_path, "repro/experiments/widget.py", body)
    gated_findings = findings_for(gated, "docstring-coverage")
    # module + class + method all lack docstrings
    assert len(gated_findings) == 3
    assert findings_for(ungated, "docstring-coverage") == []


def test_docstring_coverage_exempts_private_and_properties(tmp_path):
    path = write_module(
        tmp_path,
        "repro/service/widget.py",
        """\
        '''doc'''


        class Widget:
            '''doc'''

            def _internal(self):
                return 1

            @property
            def size(self):
                return 2

            def run(self):
                '''doc'''
                return 3
        """,
    )
    assert findings_for(path, "docstring-coverage") == []


# -- CLI surface -------------------------------------------------------------


def test_cli_exit_codes_and_json_format(tmp_path, capsys):
    dirty = write_module(
        tmp_path,
        "dirty.py",
        """\
        def f(x=[]):
            return x
        """,
    )
    clean = write_module(
        tmp_path,
        "clean.py",
        """\
        def f(x=()):
            return x
        """,
    )
    assert lint_main([str(clean), "--rule", "no-mutable-default"]) == 0
    assert lint_main([str(dirty), "--rule", "no-mutable-default"]) == 1
    assert lint_main([str(dirty), "--rule", "not-a-rule"]) == 2
    capsys.readouterr()
    assert lint_main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"]
    assert payload["counts_by_rule"]["no-mutable-default"] == 1


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out


def test_module_entry_point_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert "no-silent-except" in result.stdout


# -- the self-check: src/ is clean at head -----------------------------------


def test_shipped_source_tree_is_clean():
    report = lint_paths([str(SRC)])
    formatted = "\n".join(f.format() for f in report.findings)
    assert report.clean, f"repro lint src found:\n{formatted}"
    assert report.files_checked > 90
    # The invariant rules carry no suppressions at all in the shipped
    # tree: every suppression today is a justified no-silent-except.
    invariant = {"stdlib-only", "no-wall-clock-arithmetic", "no-lock-held-io"}
    assert not [s for s in report.suppressed if s.rule in invariant]


def test_default_config_matches_documented_gates():
    config = default_config()
    assert "repro/service" in config.stdlib_only_packages
    assert "repro/obs" in config.stdlib_only_packages
    assert "repro/devtools" in config.stdlib_only_packages
    assert "numpy" in config.third_party_allowlist
