"""Importable test helpers.

Plain functions shared between test modules live here rather than in
``conftest.py``: pytest inserts *both* ``tests/`` and ``benchmarks/`` on
``sys.path`` (rootdir-relative), so ``from conftest import ...`` resolves to
whichever conftest was imported first and is not a stable import target.
``tests/_helpers.py`` is unambiguous.
"""

from __future__ import annotations

import numpy as np

from repro.nn.densities import LayerSparsity
from repro.nn.inference import LayerWorkload, generate_activations
from repro.nn.layers import ConvLayerSpec
from repro.nn.pruning import generate_pruned_weights


def make_workload(
    spec: ConvLayerSpec,
    weight_density: float = 0.4,
    activation_density: float = 0.5,
    seed: int = 0,
) -> LayerWorkload:
    """Build a deterministic workload for an arbitrary spec."""
    rng = np.random.default_rng(seed)
    weights = generate_pruned_weights(spec, weight_density, rng)
    activations = generate_activations(spec, activation_density, rng)
    return LayerWorkload(
        spec=spec,
        weights=weights,
        activations=activations,
        target=LayerSparsity(weight_density, activation_density),
    )
