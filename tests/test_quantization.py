"""Tests for the fixed-point quantization substrate (repro.nn.quantization)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.layers import ConvLayerSpec
from repro.nn.quantization import (
    ACCUMULATOR_FORMAT,
    ACTIVATION_FORMAT,
    WEIGHT_FORMAT,
    FixedPointFormat,
    accumulator_headroom,
    quantization_error,
    quantize,
    quantize_workload,
)

from _helpers import make_workload


class TestFixedPointFormat:
    def test_paper_widths(self):
        assert WEIGHT_FORMAT.total_bits == 16
        assert ACTIVATION_FORMAT.total_bits == 16
        assert ACCUMULATOR_FORMAT.total_bits == 24

    def test_scale_and_range(self):
        fmt = FixedPointFormat(total_bits=8, fraction_bits=4)
        assert fmt.scale == pytest.approx(1 / 16)
        assert fmt.max_value == pytest.approx(127 / 16)
        assert fmt.min_value == pytest.approx(-8.0)

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1, fraction_bits=0)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=8, fraction_bits=8)


class TestQuantize:
    def test_zero_stays_zero(self):
        data = np.array([0.0, 0.5, -0.25, 0.0])
        quantized = quantize(data, WEIGHT_FORMAT)
        assert quantized[0] == 0.0
        assert quantized[3] == 0.0

    def test_sparsity_pattern_preserved(self, small_workload):
        quantized_w, quantized_a = quantize_workload(
            small_workload.weights, small_workload.activations
        )
        np.testing.assert_array_equal(
            quantized_w != 0, small_workload.weights != 0
        )
        np.testing.assert_array_equal(
            quantized_a != 0, small_workload.activations != 0
        )

    def test_saturation(self):
        fmt = FixedPointFormat(total_bits=8, fraction_bits=4)
        data = np.array([100.0, -100.0])
        quantized = quantize(data, fmt)
        assert quantized[0] == pytest.approx(fmt.max_value)
        assert quantized[1] == pytest.approx(fmt.min_value)

    def test_error_bounded_by_half_lsb(self, small_workload):
        error = quantization_error(small_workload.weights, WEIGHT_FORMAT)
        assert error <= WEIGHT_FORMAT.scale / 2 + 1e-12

    def test_error_of_empty_tensor(self):
        assert quantization_error(np.array([]), WEIGHT_FORMAT) == 0.0

    def test_quantized_conv_close_to_float(self, small_workload):
        from repro.nn.reference import conv2d_layer

        spec = small_workload.spec
        quantized_w, quantized_a = quantize_workload(
            small_workload.weights, small_workload.activations
        )
        exact = conv2d_layer(small_workload.activations, small_workload.weights, spec)
        quantized = conv2d_layer(quantized_a, quantized_w, spec)
        scale = np.abs(exact).max()
        assert np.abs(quantized - exact).max() / scale < 0.02


class TestAccumulatorHeadroom:
    def test_catalogue_workload_has_headroom(self, small_workload):
        report = accumulator_headroom(
            small_workload.spec, small_workload.weights, small_workload.activations
        )
        assert not report.overflows
        assert report.headroom_bits > 0
        assert report.worst_case_sum < report.accumulator_limit

    def test_pathological_workload_overflows(self):
        spec = ConvLayerSpec("deep", 512, 8, 8, 8, 3, 3, padding=1)
        weights = np.full(spec.weight_shape, 1.9)
        activations = np.full(spec.input_shape, 7.9)
        report = accumulator_headroom(spec, weights, activations)
        assert report.overflows
        assert report.headroom_bits < 0

    def test_zero_workload(self):
        spec = ConvLayerSpec("z", 4, 4, 6, 6, 3, 3, padding=1)
        report = accumulator_headroom(
            spec, np.zeros(spec.weight_shape), np.zeros(spec.input_shape)
        )
        assert not report.overflows
        assert report.worst_case_sum == 0.0

    def test_zero_density_layer_has_infinite_headroom(self):
        """A fully pruned (zero-density) layer can never overflow."""
        spec = ConvLayerSpec("pruned-out", 8, 8, 6, 6, 3, 3, padding=1)
        report = accumulator_headroom(
            spec, np.zeros(spec.weight_shape), np.ones(spec.input_shape)
        )
        assert not report.overflows
        assert report.worst_case_sum == 0.0
        assert report.headroom_bits == float("inf")

    def test_degenerate_one_by_one_layer(self):
        """The 1x1x1 tile shape: reduction depth 1, single weight/activation."""
        spec = ConvLayerSpec("tiny", 1, 1, 1, 1, 1, 1)
        report = accumulator_headroom(
            spec, np.full(spec.weight_shape, 0.5), np.full(spec.input_shape, 0.5)
        )
        assert not report.overflows
        assert report.worst_case_sum == pytest.approx(0.25)

    def test_empty_operand_arrays(self):
        """Zero-sized operands report zero worst case rather than raising."""
        spec = ConvLayerSpec("z", 4, 4, 6, 6, 3, 3, padding=1)
        report = accumulator_headroom(
            spec, np.zeros((0,)), np.zeros((0,))
        )
        assert not report.overflows
        assert report.worst_case_sum == 0.0


class TestQuantizeEdgeCases:
    def test_empty_tensor_quantizes_to_empty(self):
        quantized = quantize(np.zeros((0,)), WEIGHT_FORMAT)
        assert quantized.size == 0
        assert quantization_error(np.zeros((0,)), WEIGHT_FORMAT) == 0.0

    def test_all_zero_tensor_unchanged(self):
        data = np.zeros((3, 3))
        quantized = quantize(data, ACTIVATION_FORMAT)
        np.testing.assert_array_equal(quantized, data)
        assert quantization_error(data, ACTIVATION_FORMAT) == 0.0

    def test_zero_density_workload_pattern_preserved(self):
        """Quantizing a fully-pruned workload keeps every zero exactly zero."""
        spec = ConvLayerSpec("pruned-out", 4, 4, 6, 6, 3, 3, padding=1)
        quantized_w, quantized_a = quantize_workload(
            np.zeros(spec.weight_shape), np.zeros(spec.input_shape)
        )
        assert np.count_nonzero(quantized_w) == 0
        assert np.count_nonzero(quantized_a) == 0


@given(
    st.lists(
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False), min_size=1, max_size=64
    )
)
@settings(max_examples=100, deadline=None)
def test_quantization_idempotent(values):
    data = np.array(values)
    once = quantize(data, WEIGHT_FORMAT)
    twice = quantize(once, WEIGHT_FORMAT)
    np.testing.assert_array_equal(once, twice)


@given(
    st.lists(
        st.floats(min_value=-1.9, max_value=1.9, allow_nan=False), min_size=1, max_size=64
    )
)
@settings(max_examples=100, deadline=None)
def test_quantization_error_bound_property(values):
    data = np.array(values)
    assert quantization_error(data, WEIGHT_FORMAT) <= WEIGHT_FORMAT.scale / 2 + 1e-12
