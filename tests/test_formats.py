"""Tests for the layer-level compressed containers (repro.tensor.formats)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor.formats import (
    ActivationTileSet,
    CompressedActivations,
    CompressedWeights,
    partition_plane,
)


def sparse_tensor(shape, density, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape) * (rng.random(shape) < density)


class TestPartitionPlane:
    def test_even_partition(self):
        tiles = partition_plane(16, 16, 4, 4)
        assert len(tiles) == 16
        assert all(tile.width == 4 and tile.height == 4 for tile in tiles)

    def test_uneven_partition_covers_plane_exactly(self):
        tiles = partition_plane(14, 14, 8, 8)
        covered = np.zeros((14, 14), dtype=int)
        for tile in tiles:
            covered[tile.y_lo : tile.y_hi, tile.x_lo : tile.x_hi] += 1
        np.testing.assert_array_equal(covered, np.ones((14, 14), dtype=int))

    def test_leading_tiles_take_remainder(self):
        tiles = partition_plane(10, 10, 3, 3)
        widths = sorted({tile.width for tile in tiles}, reverse=True)
        assert widths == [4, 3]

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            partition_plane(8, 8, 0, 2)

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_partition_is_exact_cover(self, height, width, rows, cols):
        rows = min(rows, height)
        cols = min(cols, width)
        tiles = partition_plane(height, width, rows, cols)
        assert len(tiles) == rows * cols
        assert sum(tile.size for tile in tiles) == height * width
        # Sizes differ by at most one in each dimension.
        widths = {tile.width for tile in tiles}
        heights = {tile.height for tile in tiles}
        assert max(widths) - min(widths) <= 1
        assert max(heights) - min(heights) <= 1


class TestCompressedWeights:
    def test_roundtrip(self):
        weights = sparse_tensor((16, 8, 3, 3), 0.4, seed=1)
        compressed = CompressedWeights(weights, group_size=8)
        np.testing.assert_allclose(compressed.decode(), weights)

    def test_group_count_rounds_up(self):
        weights = sparse_tensor((20, 4, 3, 3), 0.5, seed=2)
        compressed = CompressedWeights(weights, group_size=8)
        assert compressed.num_groups == 3
        assert compressed.group_channels(2) == (16, 17, 18, 19)

    def test_nonzero_counts_match_dense(self):
        weights = sparse_tensor((16, 6, 3, 3), 0.3, seed=3)
        compressed = CompressedWeights(weights, group_size=4)
        counts = compressed.nonzero_counts()
        assert counts.shape == (4, 6)
        for group in range(4):
            for c in range(6):
                expected = np.count_nonzero(weights[group * 4 : (group + 1) * 4, c])
                assert counts[group, c] == expected
        assert counts.sum() == np.count_nonzero(weights)

    def test_density_and_storage(self):
        weights = sparse_tensor((8, 8, 3, 3), 0.25, seed=4)
        compressed = CompressedWeights(weights, group_size=8)
        assert compressed.density == pytest.approx(
            np.count_nonzero(weights) / weights.size
        )
        assert compressed.storage_bits() < compressed.dense_storage_bits()

    def test_block_lookup(self):
        weights = sparse_tensor((8, 4, 3, 3), 0.5, seed=5)
        compressed = CompressedWeights(weights, group_size=4)
        block = compressed.block(1, 2)
        assert block.group == 1
        assert block.input_channel == 2
        assert block.output_channels == (4, 5, 6, 7)
        np.testing.assert_allclose(block.block.decode(), weights[4:8, 2])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            CompressedWeights(np.zeros((4, 4, 3)), group_size=4)
        with pytest.raises(ValueError):
            CompressedWeights(np.zeros((4, 4, 3, 3)), group_size=0)


class TestActivationTileSet:
    def test_roundtrip(self):
        activations = sparse_tensor((6, 14, 14), 0.5, seed=6)
        tiles = ActivationTileSet(activations, 4, 4)
        np.testing.assert_allclose(tiles.decode(), activations)

    def test_nonzero_counts_sum_to_total(self):
        activations = sparse_tensor((5, 13, 17), 0.35, seed=7)
        tiles = ActivationTileSet(activations, 3, 3)
        counts = tiles.nonzero_counts()
        assert counts.shape == (9, 5)
        assert counts.sum() == np.count_nonzero(activations)

    def test_tile_extents_accessible(self):
        activations = sparse_tensor((2, 8, 8), 1.0, seed=8)
        tiles = ActivationTileSet(activations, 2, 2)
        assert tiles.num_tiles == 4
        extent = tiles.tile_extent(3)
        assert (extent.row, extent.col) == (1, 1)

    def test_block_matches_dense_slice(self):
        activations = sparse_tensor((3, 10, 10), 0.4, seed=9)
        tiles = ActivationTileSet(activations, 2, 2)
        extent = tiles.tile_extent(2)
        block = tiles.block(2, 1)
        np.testing.assert_allclose(
            block.decode(),
            activations[1, extent.y_lo : extent.y_hi, extent.x_lo : extent.x_hi],
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            ActivationTileSet(np.zeros((4, 4)), 2, 2)


class TestCompressedActivations:
    def test_roundtrip_and_density(self):
        activations = sparse_tensor((4, 9, 9), 0.3, seed=10)
        compressed = CompressedActivations(activations)
        np.testing.assert_allclose(compressed.decode(), activations)
        assert compressed.density == pytest.approx(
            np.count_nonzero(activations) / activations.size
        )

    def test_storage_shrinks_with_sparsity(self):
        dense = CompressedActivations(sparse_tensor((4, 12, 12), 1.0, seed=11))
        sparse = CompressedActivations(sparse_tensor((4, 12, 12), 0.2, seed=11))
        assert sparse.storage_bits() < dense.storage_bits()

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            CompressedActivations(np.zeros((3, 3)))


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_weights_roundtrip_property(num_k, num_c, density, seed):
    weights = sparse_tensor((num_k, num_c, 3, 3), density, seed=seed)
    compressed = CompressedWeights(weights, group_size=4)
    np.testing.assert_allclose(compressed.decode(), weights)
    assert compressed.nonzero_counts().sum() == np.count_nonzero(weights)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_activation_tiles_roundtrip_property(channels, height, width, rows, cols, density):
    rows = min(rows, height)
    cols = min(cols, width)
    activations = sparse_tensor((channels, height, width), density, seed=13)
    tiles = ActivationTileSet(activations, rows, cols)
    np.testing.assert_allclose(tiles.decode(), activations)
    assert tiles.nonzero_counts().sum() == np.count_nonzero(activations)
