"""Tests for the experiment drivers (one per paper table/figure).

The per-layer evaluation experiments (Figures 8-10) are exercised on AlexNet
only — it is the smallest catalogue network — so the whole test suite stays
fast; the full three-network runs are exercised by the benchmark harness.
"""

import pytest

from repro.experiments import (
    fig1_density,
    fig7_sensitivity,
    fig8_performance,
    fig9_utilization,
    fig10_energy,
    sec6c_granularity,
    sec6d_tiling,
    table1_networks,
    table2_design_params,
    table3_area,
    table4_configs,
)


class TestTableExperiments:
    def test_table1_rows(self):
        rows = {row.name: row for row in table1_networks.run()}
        assert set(rows) == {"AlexNet", "GoogLeNet", "VGGNet"}
        assert rows["VGGNet"].total_multiplies_billions > rows["AlexNet"].total_multiplies_billions

    def test_table1_output_mentions_paper_values(self):
        text = table1_networks.main()
        assert "15.3" in text  # paper's VGG multiply count is shown side-by-side

    def test_table2_matches_paper(self):
        for name, (modelled, paper) in table2_design_params.run().items():
            if isinstance(paper, (int, float)) and not isinstance(paper, bool):
                assert modelled == pytest.approx(paper, rel=0.6), name
            else:
                assert str(modelled) == str(paper), name

    def test_table3_pe_total(self):
        breakdown = table3_area.run()
        assert breakdown["PE total"] == pytest.approx(0.123, abs=0.003)
        assert breakdown["Accelerator total (64 PEs)"] == pytest.approx(7.9, abs=0.2)

    def test_table4_configurations(self):
        rows = {row.name: row for row in table4_configs.run()}
        assert rows["SCNN"].area_mm2 > rows["DCNN"].area_mm2
        assert rows["DCNN"].sram_bytes > rows["SCNN"].sram_bytes

    def test_main_functions_return_text(self):
        for module in (table2_design_params, table3_area, table4_configs):
            assert isinstance(module.main(), str)


class TestFigure1:
    def test_measured_densities_near_calibration(self):
        reports = fig1_density.run(networks=("alexnet",))
        report = reports["AlexNet"]
        assert len(report.rows) == 5
        assert report.rows[0].activation_density == pytest.approx(1.0, abs=0.01)
        assert report.average_work_reduction > 2.0

    def test_calibration_mode(self):
        reports = fig1_density.run(networks=("alexnet",), measured=False)
        assert reports["AlexNet"].rows[1].weight_density == pytest.approx(0.38)


class TestFigure7:
    @pytest.fixture(scope="class")
    def points(self):
        return fig7_sensitivity.run(densities=(0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0))

    def test_scnn_slower_than_dcnn_when_dense(self, points):
        dense = [p for p in points if p.density == 1.0][0]
        assert 1.1 < dense.latency_ratio < 1.6  # paper: 1/0.79 ~ 1.27

    def test_scnn_much_faster_when_sparse(self, points):
        sparse = [p for p in points if p.density == 0.1][0]
        assert sparse.scnn_speedup > 12.0  # paper: ~24x

    def test_performance_crossover_near_paper(self, points):
        crossover = fig7_sensitivity.performance_crossover(points)
        assert 0.7 <= crossover <= 0.9  # paper: ~0.85

    def test_energy_crossovers(self, points):
        vs_dcnn = fig7_sensitivity.energy_crossover(points, "DCNN")
        vs_opt = fig7_sensitivity.energy_crossover(points, "DCNN-opt")
        assert 0.7 <= vs_dcnn <= 0.9     # paper: ~0.83
        assert 0.5 <= vs_opt <= 0.7      # paper: ~0.60
        assert vs_opt < vs_dcnn

    def test_dcnn_opt_never_above_dcnn(self, points):
        for point in points:
            assert point.energy["DCNN-opt"] <= point.energy["DCNN"] * (1 + 1e-9)

    def test_latency_monotone_in_density(self, points):
        ordered = sorted(points, key=lambda p: p.density)
        ratios = [p.latency_ratio for p in ordered]
        assert ratios == sorted(ratios)


class TestFigures8To10OnAlexNet:
    @pytest.fixture(scope="class")
    def speedups(self):
        return fig8_performance.run(networks=("alexnet",))

    def test_network_speedup_band(self, speedups):
        report = speedups["AlexNet"]
        assert 1.8 < report.network_speedup < 3.8  # paper: 2.37x
        assert report.oracle_speedup > report.network_speedup
        assert report.paper_speedup == 2.37

    def test_per_layer_rows_include_all(self, speedups):
        labels = [row.label for row in speedups["AlexNet"].rows]
        assert labels == ["conv1", "conv2", "conv3", "conv4", "conv5", "all"]

    def test_oracle_never_below_scnn(self, speedups):
        for row in speedups["AlexNet"].rows:
            assert row.oracle >= row.scnn * 0.999

    def test_utilization_report(self):
        reports = fig9_utilization.run(networks=("alexnet",))
        report = reports["AlexNet"]
        assert len(report.rows) == 5
        for row in report.rows:
            assert 0.0 < row.multiplier_utilization <= 1.0
            assert 0.0 <= row.idle_fraction < 1.0
        assert 0.0 < report.average_utilization <= 1.0

    def test_energy_report(self):
        reports = fig10_energy.run(networks=("alexnet",))
        report = reports["AlexNet"]
        assert report.rows[-1].label == "all"
        assert 0.25 < report.network_scnn < 0.75
        assert 0.35 < report.network_dcnn_opt < 0.75
        improvements = fig10_energy.average_improvements(reports)
        assert improvements["SCNN"] > 1.3
        assert improvements["DCNN-opt"] > 1.3


class TestSectionVIC:
    def test_more_pes_faster_on_googlenet(self):
        """Paper: on GoogLeNet the 64-PE configuration is ~11% faster than the
        4-PE one and utilises the multipliers better (59% vs 35%)."""
        points = sec6c_granularity.run(pe_counts=(64, 4), network_name="googlenet")
        by_count = {point.num_pes: point for point in points}
        assert by_count[64].total_cycles < by_count[4].total_cycles
        assert (
            by_count[64].average_utilization > by_count[4].average_utilization
        )
        assert 1.0 < sec6c_granularity.speedup_64_vs_4(points) < 2.0

    def test_missing_pe_count_rejected(self):
        points = sec6c_granularity.run(pe_counts=(64,), network_name="alexnet")
        with pytest.raises(KeyError):
            sec6c_granularity.speedup_64_vs_4(points)


class TestSectionVID:
    def test_alexnet_never_spills(self):
        rows = sec6d_tiling.run(networks=("alexnet",))
        assert len(rows) == 5
        assert all(row.fits_on_chip for row in rows)
        stats = sec6d_tiling.summary(rows)
        assert stats["spilled_layers"] == 0.0
        assert stats["mean_penalty"] == 0.0


class TestFigure7BatchedEquivalence:
    def test_batched_sweep_matches_oracle_loop(self):
        densities = (0.1, 0.55, 1.0)
        batched = fig7_sensitivity.run(densities)
        oracle = fig7_sensitivity.run(densities, batched=False)
        for ours, theirs in zip(batched, oracle):
            assert ours.density == theirs.density
            assert ours.scnn_cycles == theirs.scnn_cycles
            assert ours.dcnn_cycles == theirs.dcnn_cycles
            assert ours.energy == theirs.energy


class TestTable4DensityGrid:
    def test_covers_every_table4_config_and_density(self):
        densities = (0.25, 1.0)
        grid = table4_configs.density_grid(densities, network_name="alexnet")
        names = [config.name for config in grid.configs]
        assert names == [row.name for row in table4_configs.run()]
        assert grid.cycles.shape == (len(names), len(grid.specs), len(densities))
        assert (grid.cycles > 0).all()
        assert (grid.energy > 0).all()
