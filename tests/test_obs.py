"""Unit tests for the observability substrate (:mod:`repro.obs`).

Covers the four pillars in isolation from the service:

* **registry semantics** — idempotent family declaration, kind/label
  conflicts, counter monotonicity, exact counting under thread contention,
  histogram bucket placement;
* **exposition** — Prometheus text rendering round-trips through the
  bundled parser, label values escape correctly, zero-child families still
  advertise their HELP/TYPE header;
* **cross-process movement** — snapshot → deltas → JSON → merge reproduces
  the child registry's increments exactly (the forked-worker path);
* **tracing and logging** — spans record against the context-installed
  trace id (and only then), the store's memory is bounded, and log events
  are one JSON object per line with automatic trace correlation.

Every test runs against the process-global registry via the ``obs_reset``
fixture, mirroring how instrumented modules use it.
"""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Span, TraceStore, Tracer


@pytest.fixture(autouse=True)
def obs_reset():
    """Zero the process-global registry/traces around every test."""
    obs.reset(enabled=True)
    yield
    obs.reset(enabled=False)
    obs.configure_logging("warning")


class TestRegistrySemantics:
    def test_family_declaration_is_idempotent(self):
        first = obs.counter("t_requests_total", "requests", ("tier",))
        second = obs.counter("t_requests_total", "different help", ("tier",))
        assert first is second

    def test_kind_conflict_raises(self):
        obs.counter("t_conflict_total")
        with pytest.raises(ValueError):
            obs.gauge("t_conflict_total")

    def test_label_conflict_raises(self):
        obs.counter("t_labelled_total", "", ("tier",))
        with pytest.raises(ValueError):
            obs.counter("t_labelled_total", "", ("tier", "outcome"))

    def test_counter_rejects_decrease(self):
        family = obs.counter("t_monotonic_total")
        family.inc()
        with pytest.raises(ValueError):
            family.inc(-1)

    def test_wrong_label_set_raises(self):
        family = obs.counter("t_strict_total", "", ("tier",))
        with pytest.raises(ValueError):
            family.inc(outcome="hit")

    def test_disabled_registry_records_nothing(self):
        obs.disable()
        counter = obs.counter("t_silent_total")
        histogram = obs.histogram("t_silent_seconds")
        counter.inc()
        histogram.observe(1.0)
        assert counter.value() == 0.0
        assert histogram.child().count == 0

    def test_reset_keeps_family_handles_valid(self):
        family = obs.counter("t_survivor_total")
        family.inc()
        obs.reset(enabled=True)
        family.inc()
        assert family.value() == 1.0
        assert obs.registry().get("t_survivor_total") is family

    def test_concurrent_increments_count_exactly(self):
        family = obs.counter("t_contended_total", "", ("worker",))
        threads, per_thread = 8, 5000

        def hammer(index):
            for _ in range(per_thread):
                family.inc(worker=str(index % 2))

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = family.value(worker="0") + family.value(worker="1")
        assert total == threads * per_thread

    def test_histogram_buckets_are_inclusive_upper_bounds(self):
        family = obs.histogram("t_latency_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.1, 0.5, 1.0, 5.0, 100.0):
            family.observe(value)
        child = family.child()
        # le="0.1" gets the exact boundary hit; 100.0 lands in +Inf.
        assert child.counts == [1, 2, 1, 1]
        assert child.count == 5
        assert child.sum == pytest.approx(106.6)

    def test_gauge_callback_is_read_at_collection(self):
        depth = {"value": 3}
        family = obs.gauge("t_depth", callback=lambda: depth["value"])
        depth["value"] = 7
        samples = dict(family.samples())
        assert samples[()].value == 7.0

    def test_gauge_callback_failure_does_not_break_collection(self):
        def boom():
            raise RuntimeError("composition root is gone")

        family = obs.gauge("t_flaky", callback=boom)
        assert family.samples() == []
        assert "t_flaky" in obs.render_prometheus(obs.registry())

    def test_callback_rejected_on_labelled_gauge(self):
        family = obs.gauge("t_labelled_depth", "", ("tier",))
        with pytest.raises(ValueError):
            family.set_callback(lambda: 1.0)


class TestExposition:
    def test_render_parse_round_trip(self):
        obs.counter("t_jobs_total", "jobs by outcome", ("outcome",)).inc(
            3, outcome="done"
        )
        obs.gauge("t_queue_depth", "queued jobs").set(4)
        obs.histogram("t_wait_seconds", "wait", buckets=(0.5, 2.0)).observe(1.0)

        text = obs.render_prometheus(obs.registry())
        parsed = obs.parse_prometheus_text(text)

        assert parsed["t_jobs_total"]["type"] == "counter"
        assert ("t_jobs_total", {"outcome": "done"}, 3.0) in parsed[
            "t_jobs_total"
        ]["samples"]
        assert ("t_queue_depth", {}, 4.0) in parsed["t_queue_depth"]["samples"]
        hist = parsed["t_wait_seconds"]["samples"]
        assert ("t_wait_seconds_bucket", {"le": "0.5"}, 0.0) in hist
        assert ("t_wait_seconds_bucket", {"le": "2"}, 1.0) in hist
        assert ("t_wait_seconds_bucket", {"le": "+Inf"}, 1.0) in hist
        assert ("t_wait_seconds_count", {}, 1.0) in hist

    def test_label_values_escape_and_round_trip(self):
        tricky = 'quote " slash \\ newline \n end'
        obs.counter("t_escape_total", "", ("path",)).inc(path=tricky)
        parsed = obs.parse_prometheus_text(
            obs.render_prometheus(obs.registry())
        )
        ((_, labels, value),) = parsed["t_escape_total"]["samples"]
        assert labels == {"path": tricky}
        assert value == 1.0

    def test_zero_child_family_still_renders_header(self):
        obs.counter("t_never_fired_total", "declared but never incremented")
        text = obs.render_prometheus(obs.registry())
        assert "# HELP t_never_fired_total declared but never" in text
        assert "# TYPE t_never_fired_total counter" in text

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            obs.parse_prometheus_text("this is not exposition format")


class TestCrossProcessDeltas:
    def test_deltas_survive_json_and_merge_exactly(self):
        child_registry = MetricsRegistry(enabled=True)
        baseline = child_registry.snapshot()
        child_registry.counter("t_child_total", "from the child", ("tier",)).inc(
            5, tier="disk"
        )
        child_registry.histogram(
            "t_child_seconds", buckets=(0.1, 1.0)
        ).observe(0.05)

        shipped = json.loads(json.dumps(child_registry.deltas_since(baseline)))
        obs.registry().merge_deltas(shipped)

        assert obs.registry().get("t_child_total").value(tier="disk") == 5.0
        merged = obs.registry().get("t_child_seconds").child()
        assert merged.count == 1
        assert merged.counts[0] == 1

    def test_fork_inherited_values_cancel_in_the_delta(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("t_inherited_total").inc(40)
        baseline = registry.snapshot()  # the fork point
        registry.counter("t_inherited_total").inc(2)
        deltas = registry.deltas_since(baseline)
        assert len(deltas) == 1
        assert deltas[0]["value"] == 2.0

    def test_gauges_are_excluded_from_deltas(self):
        registry = MetricsRegistry(enabled=True)
        baseline = registry.snapshot()
        registry.gauge("t_point_in_time").set(9)
        assert registry.deltas_since(baseline) == []


class TestTracing:
    def test_span_records_against_current_trace(self):
        trace_id = obs.new_trace_id()
        token = obs.set_current_trace(trace_id)
        try:
            with obs.span("unit.work", item=3) as span:
                span.annotate(outcome="hit")
        finally:
            obs.reset_current_trace(token)
        (span,) = obs.trace_store().spans_for(trace_id)
        assert span.name == "unit.work"
        assert span.attrs == {"item": 3, "outcome": "hit"}
        assert span.end >= span.start

    def test_span_without_trace_context_is_null(self):
        assert obs.span("orphan") is obs.NULL_SPAN
        assert len(obs.trace_store()) == 0

    def test_span_when_disabled_is_null(self):
        obs.disable()
        token = obs.set_current_trace(obs.new_trace_id())
        try:
            assert obs.span("dark") is obs.NULL_SPAN
        finally:
            obs.reset_current_trace(token)

    def test_span_records_error_attribute_on_exception(self):
        trace_id = obs.new_trace_id()
        token = obs.set_current_trace(trace_id)
        try:
            with pytest.raises(RuntimeError):
                with obs.span("unit.explodes"):
                    raise RuntimeError("boom")
        finally:
            obs.reset_current_trace(token)
        (span,) = obs.trace_store().spans_for(trace_id)
        assert span.attrs["error"] == "RuntimeError"

    def test_span_dict_round_trip(self):
        span = Span(
            trace_id="abc", name="n", start=1.0, end=2.5, attrs={"k": "v"}
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_store_evicts_oldest_trace_wholesale(self):
        store = TraceStore(max_traces=2)
        for trace in ("a", "b", "c"):
            store.add(Span(trace_id=trace, name="s", start=0.0, end=1.0))
        assert store.spans_for("a") == []
        assert len(store.spans_for("b")) == 1
        assert len(store.spans_for("c")) == 1

    def test_drain_removes_the_trace(self):
        tracer = Tracer(enabled=True)
        tracer.record(Span(trace_id="x", name="s", start=0.0, end=1.0))
        assert len(tracer.store.drain("x")) == 1
        assert tracer.store.spans_for("x") == []


class TestStructuredLogging:
    def test_events_are_one_json_object_per_line(self):
        stream = io.StringIO()
        obs.configure_logging("info", stream=stream)
        log = obs.get_logger("repro.test")
        log.info("thing_happened", key="abc", count=2)
        log.warning("thing_failed", path="/tmp/x")

        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["event"] == "thing_happened"
        assert first["logger"] == "repro.test"
        assert first["level"] == "info"
        assert first["count"] == 2
        assert second["event"] == "thing_failed"

    def test_below_threshold_events_are_dropped(self):
        stream = io.StringIO()
        obs.configure_logging("warning", stream=stream)
        obs.get_logger("repro.test").info("too_quiet")
        assert stream.getvalue() == ""

    def test_events_carry_the_current_trace_id(self):
        stream = io.StringIO()
        obs.configure_logging("info", stream=stream)
        trace_id = obs.new_trace_id()
        token = obs.set_current_trace(trace_id)
        try:
            obs.get_logger("repro.test").info("traced")
        finally:
            obs.reset_current_trace(token)
        record = json.loads(stream.getvalue())
        assert record["trace_id"] == trace_id

    def test_emission_failure_never_propagates(self):
        class Broken(io.StringIO):
            def write(self, *_):
                raise OSError("stream is gone")

        obs.configure_logging("info", stream=Broken())
        obs.get_logger("repro.test").info("does_not_raise")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obs.configure_logging("loud")


class TestEngineInstrumentation:
    def test_engine_run_records_counters_and_spans(self, tmp_path):
        from repro.engine import SimulationEngine

        engine = SimulationEngine(cache_dir=tmp_path / "cache")
        trace_id = obs.new_trace_id()
        token = obs.set_current_trace(trace_id)
        try:
            engine.run_network("alexnet")
        finally:
            obs.reset_current_trace(token)

        runs = obs.registry().get("repro_engine_runs_total")
        assert runs.value(method="run_network") == 1.0
        names = {s.name for s in obs.trace_store().spans_for(trace_id)}
        assert "engine.run_network" in names

        requests = obs.registry().get("repro_engine_cache_requests_total")
        recorded = sum(value for _, value in (
            ((), child.value) for _, child in requests.samples()
        ))
        assert recorded >= 1.0

    def test_instrumentation_is_inert_when_disabled(self, tmp_path):
        from repro.engine import SimulationEngine

        obs.reset(enabled=False)
        engine = SimulationEngine(cache_dir=tmp_path / "cache")
        engine.run_network("alexnet")
        runs = obs.registry().get("repro_engine_runs_total")
        assert runs.value(method="run_network") == 0.0
        assert len(obs.trace_store()) == 0
