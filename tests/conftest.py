"""Shared fixtures for the test suite.

All fixtures use fixed seeds so test failures are reproducible, and all layer
shapes are kept small enough that the element-exact functional simulator runs
in well under a second per layer.

Concurrency safety nets (see docs/static_analysis.md):

* background-thread exceptions are captured via ``threading.excepthook``
  and fail the test that spawned them — a worker thread dying silently is
  a bug, not background noise;
* ``faulthandler`` is enabled so a hung or crashed run dumps every
  thread's stack;
* ``pytest --track-locks`` patches the service/engine/obs lock sites with
  :mod:`repro.devtools.locks` tracked wrappers and fails the session if
  the observed lock-order graph contains a cycle (a potential deadlock),
  turning the 64-way burst tests into a deadlock detector.
"""

from __future__ import annotations

import faulthandler
import threading
import traceback
from typing import List

import numpy as np
import pytest

from repro.nn.inference import LayerWorkload
from repro.nn.layers import ConvLayerSpec

from _helpers import make_workload

faulthandler.enable()

# -- background-thread exception capture ------------------------------------

_THREAD_FAILURES: List[str] = []
_ORIGINAL_EXCEPTHOOK = threading.excepthook


def _capturing_excepthook(args: threading.ExceptHookArgs) -> None:
    """Record the failure for the owning test, then chain to the original."""
    if args.exc_type is not SystemExit:
        detail = "".join(
            traceback.format_exception(
                args.exc_type, args.exc_value, args.exc_traceback
            )
        )
        thread_name = args.thread.name if args.thread is not None else "?"
        _THREAD_FAILURES.append(f"thread {thread_name!r} died:\n{detail}")
    _ORIGINAL_EXCEPTHOOK(args)


threading.excepthook = _capturing_excepthook


@pytest.fixture(autouse=True)
def _fail_on_background_thread_exceptions():
    """Fail any test during which a background thread raised."""
    before = len(_THREAD_FAILURES)
    yield
    new = _THREAD_FAILURES[before:]
    if new:
        pytest.fail(
            "background thread(s) raised during this test:\n" + "\n".join(new),
            pytrace=False,
        )


# -- opt-in lock-order tracking (pytest --track-locks) ----------------------


def pytest_addoption(parser: pytest.Parser) -> None:
    """Register the ``--track-locks`` opt-in flag."""
    parser.addoption(
        "--track-locks",
        action="store_true",
        default=False,
        help=(
            "patch service/engine/obs lock sites with tracked wrappers; "
            "fail the session on lock-order cycles (potential deadlocks)"
        ),
    )


@pytest.fixture(scope="session", autouse=True)
def _lock_order_tracking(request: pytest.FixtureRequest):
    """When ``--track-locks`` is given, track every lock created during the
    session and fail at teardown if the acquisition graph has a cycle."""
    if not request.config.getoption("--track-locks"):
        yield None
        return
    from repro.devtools.locks import track_locks

    with track_locks() as tracker:
        yield tracker
    cycles = tracker.cycles()
    for violation in tracker.io_violations:
        # Reported, not fatal: the journal write under the queue lock is
        # an accepted design decision (see docs/static_analysis.md).
        print(f"[track-locks] io-under-lock: {violation.format()}")
    if cycles:
        rendered = "; ".join(" <-> ".join(cycle) for cycle in cycles)
        pytest.fail(
            f"lock-order cycle(s) observed (potential deadlock): {rendered}",
            pytrace=False,
        )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_spec() -> ConvLayerSpec:
    """A small 3x3 same-padded layer, the most common shape in the catalogues."""
    return ConvLayerSpec(
        "small_3x3", in_channels=8, out_channels=16,
        input_height=14, input_width=14,
        filter_height=3, filter_width=3, padding=1,
    )


@pytest.fixture
def strided_spec() -> ConvLayerSpec:
    """A strided, unpadded layer (AlexNet-conv1 style, scaled down)."""
    return ConvLayerSpec(
        "strided_5x5", in_channels=3, out_channels=8,
        input_height=23, input_width=23,
        filter_height=5, filter_width=5, stride=2, padding=0,
    )


@pytest.fixture
def grouped_spec() -> ConvLayerSpec:
    """A grouped convolution (AlexNet conv2 style, scaled down)."""
    return ConvLayerSpec(
        "grouped_3x3", in_channels=8, out_channels=16,
        input_height=13, input_width=13,
        filter_height=3, filter_width=3, padding=1, groups=2,
    )


@pytest.fixture
def pointwise_spec() -> ConvLayerSpec:
    """A 1x1 layer on a small plane (GoogLeNet late-inception style)."""
    return ConvLayerSpec(
        "pointwise", in_channels=24, out_channels=16,
        input_height=7, input_width=7,
        filter_height=1, filter_width=1,
    )


@pytest.fixture
def small_workload(small_spec) -> LayerWorkload:
    return make_workload(small_spec)


@pytest.fixture
def strided_workload(strided_spec) -> LayerWorkload:
    return make_workload(strided_spec, weight_density=0.6, activation_density=0.8)


@pytest.fixture
def grouped_workload(grouped_spec) -> LayerWorkload:
    return make_workload(grouped_spec, weight_density=0.45, activation_density=0.5)


@pytest.fixture
def pointwise_workload(pointwise_spec) -> LayerWorkload:
    return make_workload(pointwise_spec, weight_density=0.3, activation_density=0.35)
