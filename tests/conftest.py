"""Shared fixtures for the test suite.

All fixtures use fixed seeds so test failures are reproducible, and all layer
shapes are kept small enough that the element-exact functional simulator runs
in well under a second per layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.inference import LayerWorkload
from repro.nn.layers import ConvLayerSpec

from _helpers import make_workload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_spec() -> ConvLayerSpec:
    """A small 3x3 same-padded layer, the most common shape in the catalogues."""
    return ConvLayerSpec(
        "small_3x3", in_channels=8, out_channels=16,
        input_height=14, input_width=14,
        filter_height=3, filter_width=3, padding=1,
    )


@pytest.fixture
def strided_spec() -> ConvLayerSpec:
    """A strided, unpadded layer (AlexNet-conv1 style, scaled down)."""
    return ConvLayerSpec(
        "strided_5x5", in_channels=3, out_channels=8,
        input_height=23, input_width=23,
        filter_height=5, filter_width=5, stride=2, padding=0,
    )


@pytest.fixture
def grouped_spec() -> ConvLayerSpec:
    """A grouped convolution (AlexNet conv2 style, scaled down)."""
    return ConvLayerSpec(
        "grouped_3x3", in_channels=8, out_channels=16,
        input_height=13, input_width=13,
        filter_height=3, filter_width=3, padding=1, groups=2,
    )


@pytest.fixture
def pointwise_spec() -> ConvLayerSpec:
    """A 1x1 layer on a small plane (GoogLeNet late-inception style)."""
    return ConvLayerSpec(
        "pointwise", in_channels=24, out_channels=16,
        input_height=7, input_width=7,
        filter_height=1, filter_width=1,
    )


@pytest.fixture
def small_workload(small_spec) -> LayerWorkload:
    return make_workload(small_spec)


@pytest.fixture
def strided_workload(strided_spec) -> LayerWorkload:
    return make_workload(strided_spec, weight_density=0.6, activation_density=0.8)


@pytest.fixture
def grouped_workload(grouped_spec) -> LayerWorkload:
    return make_workload(grouped_spec, weight_density=0.45, activation_density=0.5)


@pytest.fixture
def pointwise_workload(pointwise_spec) -> LayerWorkload:
    return make_workload(pointwise_spec, weight_density=0.3, activation_density=0.35)
