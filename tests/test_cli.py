"""Tests for the command-line interface (repro.experiments.cli)."""

import pytest

from repro.experiments import cli


class TestParser:
    def test_list_flag(self):
        args = cli.build_parser().parse_args(["--list"])
        assert args.list
        assert args.experiments == []

    def test_experiment_arguments(self):
        args = cli.build_parser().parse_args(["table1", "fig7"])
        assert args.experiments == ["table1", "fig7"]


class TestListing:
    def test_every_experiment_listed(self):
        text = cli.list_experiments()
        for key in cli.EXPERIMENTS:
            assert key in text
        assert "all" in text

    def test_experiment_registry_covers_paper_evaluation(self):
        assert set(cli.EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "fig1", "fig7", "fig8", "fig9", "fig10",
            "sec6c", "sec6d",
        }


class TestRunExperiments:
    def test_runs_named_experiments(self, capsys):
        executed = cli.run_experiments(["table2", "table3"])
        assert executed == ["table2", "table3"]
        output = capsys.readouterr().out
        assert "Table II" in output
        assert "Table III" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            cli.run_experiments(["fig99"])


class TestMain:
    def test_list_exit_code(self, capsys):
        assert cli.main(["--list"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_single_experiment_exit_code(self, capsys):
        assert cli.main(["table4"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_unknown_experiment_exit_code(self, capsys):
        assert cli.main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
